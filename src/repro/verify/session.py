"""The :class:`Session`: one verification target, one strategy, many runs.

A session binds an annotated network to a :class:`~repro.verify.strategies
.Strategy` and owns the solver resources the strategy needs — most
importantly the :class:`~repro.smt.incremental.IncrementalSolver` whose
lifetime, under the legacy ``check_modular`` API, was implicitly tied to the
process.  Owning the solver at session granularity is what enables
cross-run reuse policies the process-global solver cannot express, e.g. the
``persistent`` backend's learned-clause carry-over across SAT scopes *and*
across whole runs (a PR 2 follow-up).

Sessions stream: :meth:`Session.stream` is a generator of per-condition
:class:`~repro.core.results.ConditionResult` events, yielded batch by batch
(per node, or per symmetry class) as the engine discharges them — live even
for parallel runs, where each worker batch is yielded the moment it
completes.  The harness uses this for progress output; a fail-fast consumer
can simply stop iterating at the first failing event (in-flight parallel
dispatch is cancelled and the session solver recovered), or ask the engine
to do it with ``Modular(stop_on_failure=True)``.  Exhausting the stream
finalizes :attr:`Session.report`; :meth:`Session.run` is the drain-and-
return convenience used by non-streaming callers.

The legacy ``check_modular``/``check_monolithic``/``check_strawperson``
functions are deprecation shims over this class and produce identical
verdicts (their engines *are* these engines).
"""

from __future__ import annotations

import random
import time as _time
from typing import Any, Iterator, Mapping, Sequence

from repro.core.annotations import AnnotatedNetwork
from repro.core.conditions import CONDITION_KINDS
from repro.core.fingerprint import (
    dependency_fingerprints,
    network_fingerprint,
    node_condition_fingerprints,
    strategy_signature,
)
from repro.core.results import ConditionResult, NodeReport, merge_reports
from repro.core.symmetry import partition_nodes
from repro.errors import VerificationError
from repro.routing.algebra import Network
from repro.smt.incremental import (
    IncrementalSolver,
    add_cache_statistics,
    process_cache_statistics,
    subtract_cache_statistics,
)
from repro.verify.store import DeltaStore, default_store_path
from repro.verify.strategies import Modular, Strategy, Strawperson

#: Lint modes accepted by :meth:`Session.stream`/:meth:`Session.run`:
#: ``"warn"`` runs the static-analysis passes before dispatch and attaches
#: their diagnostics to the finalized report; ``"strict"`` additionally
#: raises :class:`~repro.errors.AnalysisError` — before any solver work —
#: when lint finds error- or warning-severity diagnostics.
LINT_MODES = ("warn", "strict")


class Session:
    """A verification session: a target network under one strategy.

    ``target`` is an :class:`~repro.core.annotations.AnnotatedNetwork` (or,
    for the strawperson strategy with explicit interfaces, a bare
    :class:`~repro.routing.algebra.Network`).  ``strategy`` defaults to
    :class:`~repro.verify.strategies.Modular` with its defaults.

    The session is a context manager; entering it is optional for one-shot
    use, but closing (or exiting the ``with`` block) releases the
    session-owned solver, so long-lived processes should prefer::

        with Session(annotated, Modular(symmetry="classes")) as session:
            report = session.run()

    Runs may be repeated: each :meth:`run`/:meth:`stream` cycle is one full
    verification pass, and with ``backend="persistent"`` the session-owned
    solver retains encoded structure *and* carried learned clauses between
    them (``report.backend_cache["learned_carried"]`` measures the latter).
    """

    def __init__(
        self,
        target: AnnotatedNetwork | Network,
        strategy: Strategy | None = None,
        *,
        solver: IncrementalSolver | None = None,
    ) -> None:
        self.target = target
        self.strategy = strategy if strategy is not None else Modular()
        if not isinstance(self.strategy, Strategy):
            raise TypeError(
                f"strategy must be a repro.verify Strategy, got {type(self.strategy).__name__}"
            )
        #: Completed run count (a finalized report increments it).
        self.runs = 0
        self._report: Any | None = None
        if solver is not None and not self.strategy.uses_session_solver:
            # Facade-only engines never touch the session solver; accepting
            # one they ignore would be a silent no-op.
            raise VerificationError(
                f"the {self.strategy.name!r} strategy does not use a session solver"
            )
        self._solver = solver
        self._owns_solver = False
        self._closed = False
        self._active_stream: Iterator[ConditionResult] | None = None

    # -- resources ---------------------------------------------------------------

    @property
    def annotated(self) -> AnnotatedNetwork:
        """The annotated target; raises for strategies that need annotations."""
        if not isinstance(self.target, AnnotatedNetwork):
            raise VerificationError(
                f"the {self.strategy.name!r} strategy needs an AnnotatedNetwork target, "
                f"got {type(self.target).__name__}"
            )
        return self.target

    @property
    def network(self) -> Network:
        """The underlying network, whatever the target type."""
        if isinstance(self.target, AnnotatedNetwork):
            return self.target.network
        return self.target

    def solver_for(self, strategy: Modular) -> IncrementalSolver | None:
        """The solver this run's batches are pinned to, if any.

        ``persistent`` backends get a session-owned solver (created once,
        reused across runs, learned clauses carried across its scopes)
        unless the caller supplied one — which must then have
        ``persist_learned`` enabled, or the advertised carry-over would
        silently not happen.  ``incremental`` backends use the shared
        per-process solver exactly like the legacy checker when no solver
        was supplied, and pin batches to a supplied one.  ``fresh`` uses no
        incremental solver at all, so supplying one is an error rather
        than a silent no-op.
        """
        if self._closed:
            raise VerificationError("session is closed")
        if strategy.backend == "fresh":
            if self._solver is not None:
                raise VerificationError(
                    'backend="fresh" builds one SAT instance per condition and '
                    "cannot use the supplied session solver"
                )
            return None
        if self._solver is not None and strategy.parallel > 1:
            raise VerificationError(
                "parallel runs execute batches in worker processes and cannot "
                "use the supplied session solver; drop the solver or run with "
                "parallel=1"
            )
        if self._solver is None:
            if strategy.backend == "persistent":
                self._solver = IncrementalSolver(persist_learned=True)
                self._owns_solver = True
                return self._solver
            return None
        if strategy.backend == "persistent" and not self._solver.persist_learned:
            raise VerificationError(
                'backend="persistent" needs a solver constructed with '
                "persist_learned=True; the supplied solver would silently drop "
                "learned clauses at every scope rotation"
            )
        return self._solver

    def close(self) -> None:
        """Release session-owned resources (idempotent)."""
        if self._active_stream is not None:
            self._active_stream.close()
            self._active_stream = None
        if self._owns_solver:
            self._solver = None
            self._owns_solver = False
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- running -----------------------------------------------------------------

    def stream(
        self, nodes: Sequence[str] | None = None, *, lint: str | None = None
    ) -> Iterator[ConditionResult]:
        """One verification run as a stream of per-condition events.

        Events arrive in discharge order (per node, or per symmetry class);
        parallel runs yield each batch's events the moment its worker
        finishes, so progress is live even while the pool is still working.
        Exhausting the iterator finalizes :attr:`report`.  Abandoning the
        iterator early (e.g. on the first failure) leaves :attr:`report` at
        the previous run's value, stops any in-flight parallel dispatch, and
        restores the session-owned solver to a clean scope so the next run
        on this session starts sound.

        ``lint`` (one of :data:`LINT_MODES`) runs the pre-solve static
        analysis passes *eagerly*, before this call returns and before any
        condition is dispatched: ``"strict"`` raises
        :class:`~repro.errors.AnalysisError` when the target has error- or
        warning-severity diagnostics (failing fast, with zero solver work);
        ``"warn"`` lets the run proceed and attaches the diagnostics to the
        finalized report (``report.diagnostics``).

        At most one stream is live per session: starting a new run
        deterministically cancels an abandoned in-flight one (its iterator
        is closed and raises ``StopIteration`` thereafter) — interleaving
        two runs on the shared solver state would corrupt both runs' scope
        rotation and cache-delta accounting, and waiting for garbage
        collection to release an abandoned run would make session reuse
        timing-dependent.
        """
        if self._closed:
            raise VerificationError("session is closed")
        lint_report = None
        if lint is not None:
            if lint not in LINT_MODES:
                raise VerificationError(
                    f"unknown lint mode {lint!r}; choose one of {LINT_MODES}"
                )
            from repro.analysis import lint_network

            # Eager on purpose: strict mode must fail fast at call time, and
            # warn mode's diagnostics must exist even if the stream is later
            # abandoned mid-run.  Lint never touches the solver.
            lint_report = lint_network(self.annotated)
            if lint == "strict":
                lint_report.raise_for_findings(context=f"session target {self.target!r}")
        if self._active_stream is not None:
            self._active_stream.close()
            self._active_stream = None
        inner = self.strategy.events(self, nodes)

        def guarded() -> Iterator[ConditionResult]:
            try:
                yield from inner
                if lint_report is not None and hasattr(self._report, "diagnostics"):
                    self._report.diagnostics = list(lint_report.diagnostics)
            finally:
                if self._active_stream is generator:
                    self._active_stream = None

        generator = guarded()
        self._active_stream = generator
        return generator

    def run(self, nodes: Sequence[str] | None = None, *, lint: str | None = None) -> Any:
        """Run to completion and return the finalized report.

        ``lint="warn"`` attaches static-analysis diagnostics to the report;
        ``lint="strict"`` raises :class:`~repro.errors.AnalysisError` before
        any solver work when lint is not clean (see :meth:`stream`).
        """
        for _ in self.stream(nodes, lint=lint):
            pass
        return self.report

    @property
    def report(self) -> Any:
        """The report of the last *completed* run."""
        if self._report is None:
            raise VerificationError("no completed run in this session yet")
        return self._report

    def _finalize(self, report: Any) -> None:
        self._report = report
        self.runs += 1


def verify(
    target: AnnotatedNetwork | Network,
    strategy: Strategy | None = None,
    nodes: Sequence[str] | None = None,
    *,
    lint: str | None = None,
) -> Any:
    """One-shot convenience: run ``strategy`` over ``target`` in a fresh session.

    The unified replacement for the legacy ``check_*`` family::

        verify(annotated)                            # modular, defaults
        verify(annotated, Modular(symmetry="classes"))
        verify(annotated, Monolithic(timeout=60))
        verify(network, Strawperson(interfaces=stable))
        verify(annotated, lint="strict")             # lint before solving
    """
    with Session(target, strategy) as session:
        return session.run(nodes=nodes, lint=lint)


# ---------------------------------------------------------------------------
# The modular engine
# ---------------------------------------------------------------------------


def _selected_nodes(
    annotated: AnnotatedNetwork, nodes: Sequence[str] | None
) -> tuple[str, ...]:
    selected = tuple(nodes) if nodes is not None else annotated.nodes
    for node in selected:
        if node not in annotated.nodes:
            raise VerificationError(f"unknown node {node!r}")
    return selected


def _batch_failed(batch_reports: Sequence[Any]) -> bool:
    """Whether any condition in a completed batch failed."""
    return any(
        not result.holds for report in batch_reports for result in report.results
    )


def _consume_batches(
    batches: Iterator[Any], strategy: Modular
) -> Iterator[ConditionResult]:
    """Yield a parallel batch stream's events live; return the aggregates.

    The single consumption protocol for both parallel paths (per-node and
    per-class): events are yielded the moment a batch arrives, worker cache
    deltas are summed, and with ``strategy.stop_on_failure`` the stream is
    stopped after the first failing batch.  Closing ``batches`` in all exit
    paths is what stops dispatch and reaps the pool.  The ``yield from``
    return value is ``(reports, cache_delta, stopped_early)`` with reports
    flattened in submission order.
    """
    totals: dict[str, int] = {}
    indexed: dict[int, list[Any]] = {}
    stopped_early = False
    try:
        for index, batch_reports, delta in batches:
            indexed[index] = batch_reports
            totals = add_cache_statistics(totals, delta)
            for report in batch_reports:
                yield from report.results
            if strategy.stop_on_failure and _batch_failed(batch_reports):
                stopped_early = True
                break
    finally:
        # Stops dispatch and reaps the pool whether the stream was
        # exhausted, stopped on failure, or abandoned.
        batches.close()
    reports = [report for index in sorted(indexed) for report in indexed[index]]
    return reports, (totals if strategy.incremental else None), stopped_early


def _delta_kinds(strategy: Modular) -> tuple[str, ...]:
    """The requested condition kinds, in canonical discharge order."""
    return tuple(kind for kind in CONDITION_KINDS if kind in strategy.conditions)


def _open_delta_store(session: Session, strategy: Modular) -> DeltaStore:
    """Load (fail-soft) the store for this session's (network, strategy) pair."""
    network = network_fingerprint(session.annotated)
    signature = strategy_signature(strategy.delay, strategy.conditions)
    path = strategy.store or default_store_path(network, signature)
    return DeltaStore.open(path, network=network, strategy=signature)


def _reused_report(
    node: str, kinds: Sequence[str], propagated_from: str | None = None
) -> NodeReport:
    """A node report whose verdicts all come from the delta store.

    Reused verdicts are always passes (the store never records failures) and
    cost no solver time; the kinds arrive in canonical discharge order so
    ``condition_verdicts`` of a warm run is byte-identical to a cold one.
    """
    results = [
        ConditionResult(
            node=node,
            condition=kind,
            holds=True,
            duration=0.0,
            propagated_from=propagated_from,
            reused=True,
        )
        for kind in kinds
    ]
    return NodeReport(node=node, results=results, duration=0.0)


def _store_reuses(
    store: DeltaStore,
    annotated: AnnotatedNetwork,
    strategy: Modular,
    node: str,
    dependency: str,
    kinds: Sequence[str],
) -> bool:
    """Whether the store can supply all of ``node``'s verdicts.

    Fast path: the node's recorded dependency fingerprint matches, deciding
    reuse without building any condition.  Slow path: the invalidation key
    changed, but every requested condition's exact content hash is still
    recorded as proved — a reverted config edit, or a node isomorphic to one
    proved under another name — in which case the node entry is refreshed so
    the next run takes the fast path again.  A slow-path hit is reuse at its
    soundest: the content hash *is* the query.
    """
    if store.reusable(node, dependency, kinds):
        return True
    fingerprints = node_condition_fingerprints(
        annotated, node, delay=strategy.delay, conditions=kinds
    )
    if store.has_conditions(fingerprints, kinds):
        store.record(node, dependency, fingerprints)
        return True
    return False


def _record_delta_run(
    store: DeltaStore,
    annotated: AnnotatedNetwork,
    strategy: Modular,
    reports: Sequence[NodeReport],
    dependencies: Mapping[str, str],
    kinds: Sequence[str],
) -> None:
    """Record this run's fully-passing freshly-checked nodes into the store.

    A node is recorded only when every requested kind received a passing
    verdict *this run* (discharged, or propagated from its class
    representative): fail-fast truncation, early stop and failures all leave
    the node unrecorded, so a warm run can never reuse an unproved verdict.
    Nodes that were themselves reused keep their existing entries.
    """
    for report in reports:
        if any(result.reused for result in report.results):
            continue
        observed = {result.condition for result in report.results if result.holds}
        if not report.passed or not all(kind in observed for kind in kinds):
            continue
        fingerprints = node_condition_fingerprints(
            annotated, report.node, delay=strategy.delay, conditions=kinds
        )
        store.record(report.node, dependencies[report.node], fingerprints)


def modular_events(
    session: Session, strategy: Modular, nodes: Sequence[str] | None
) -> Iterator[ConditionResult]:
    """Algorithm 1 (``CheckMod``) as a streaming engine.

    Node/class scheduling, symmetry partitioning, parallel dispatch, report
    ordering and cache-statistics collection are identical to the legacy
    ``check_modular`` — the shim delegates here, and the byte-identical-
    verdicts test in ``tests/verify/test_session.py`` holds both to it.
    Batches are yielded as they complete — parallel batches arrive in
    completion order, the moment each worker finishes — and each batch
    opens a fresh SAT scope on its backend.  Final reports are re-sorted to
    the deterministic node selection order regardless of completion order,
    and per-worker cache deltas are summed into ``backend_cache``.

    With ``strategy.stop_on_failure`` the engine stops scheduling work after
    the first batch that reports a failing condition: queued parallel items
    are never dispatched, the pool is drained and terminated cleanly, and
    the finalized report records ``stopped_early`` plus how many conditions
    got no verdict (``conditions_skipped`` — never-scheduled nodes, plus
    in-flight batches discarded with the stopped pool).

    With ``strategy.delta == "reuse"`` the engine first loads the fingerprint
    store and computes every selected node's dependency fingerprint; nodes
    (or, under symmetry, whole classes, keyed by their representative) whose
    fingerprints match recorded passing verdicts are emitted up front as
    zero-cost ``reused`` events, and only the changed remainder reaches the
    scheduling machinery above.  On normal completion the store is
    re-recorded with this run's fully-passing nodes and atomically saved;
    an abandoned stream leaves the store file untouched.
    """
    from repro.core.checker import check_class, check_node

    annotated = session.annotated
    selected = _selected_nodes(annotated, nodes)
    solver = session.solver_for(strategy)
    options = strategy.engine_options()

    started = _time.perf_counter()
    class_count: int | None = None
    cache_before: dict[str, int] | None = None
    cache_delta: dict[str, int] | None = None
    scheduler_stats = None
    stopped_early = False
    reports = []

    store: DeltaStore | None = None
    dependencies: dict[str, str] = {}
    kinds = _delta_kinds(strategy)
    if strategy.delta == "reuse":
        # Store load and fingerprinting are part of the run (inside the wall
        # clock): the warm-run speedup reported by the benchmarks is net of
        # the delta layer's own overhead.
        store = _open_delta_store(session, strategy)
        dependencies = dependency_fingerprints(
            annotated, selected, delay=strategy.delay, conditions=strategy.conditions
        )

    def snapshot() -> dict[str, int]:
        # Session-owned solvers carry their own counters; otherwise the
        # shared per-process solver's are the ones the run mutates.
        return solver.cache_statistics() if solver is not None else process_cache_statistics()

    def checked(check: Any, *arguments: Any) -> Any:
        """Run one batch; pin the session solver and keep it recoverable.

        The checker only restores backends it acquired itself, so a crash
        in a batch pinned to the session-owned solver must be recovered
        here — otherwise the poisoned trail would leak into later batches
        and runs of this session.
        """
        if solver is None:
            return check(*arguments, **options)
        solver.new_scope()
        try:
            return check(*arguments, solver=solver, **options)
        except BaseException:
            solver.recover()
            raise

    try:
        if strategy.symmetry == "off":
            recheck = list(selected)
            if store is not None:
                recheck = []
                for node in selected:
                    if _store_reuses(store, annotated, strategy, node, dependencies[node], kinds):
                        report = _reused_report(node, kinds)
                        reports.append(report)
                        yield from report.results
                    else:
                        recheck.append(node)
            if strategy.parallel > 1:
                if recheck:
                    from repro.core.parallel import iter_node_batches

                    fresh, cache_delta, stopped_early = yield from _consume_batches(
                        iter_node_batches(
                            annotated, recheck, jobs=strategy.parallel, **options
                        ),
                        strategy,
                    )
                    reports.extend(fresh)
                elif strategy.incremental:
                    # Nothing to dispatch: no workers ran, so the summed
                    # worker cache delta is (exactly) zero, not unknown.
                    cache_delta = {}
            else:
                if strategy.incremental:
                    cache_before = snapshot()
                for node in recheck:
                    report = checked(check_node, annotated, node)
                    reports.append(report)
                    yield from report.results
                    if strategy.stop_on_failure and _batch_failed([report]):
                        stopped_early = True
                        break
        else:
            classes = partition_nodes(
                annotated, selected, delay=strategy.delay, conditions=strategy.conditions
            )
            class_count = len(classes)
            if strategy.symmetry == "spot-check":
                # Spot-member selection stays ahead of the delta filter so the
                # rng stream — and hence which members a cold and a warm run
                # re-verify — is identical whatever the store contains.
                rng = random.Random(strategy.spot_check_seed)
                for symmetry_class in classes:
                    if len(symmetry_class) > 1:
                        symmetry_class.spot_member = rng.choice(symmetry_class.members[1:])
            if store is not None:
                # A class is reusable iff its representative's fingerprints
                # are: class membership is keyed on term-identical canonical
                # conditions, so the representative's dependency fingerprint
                # *is* every member's.
                recheck_classes = []
                for symmetry_class in classes:
                    representative = symmetry_class.representative
                    if _store_reuses(
                        store, annotated, strategy, representative,
                        dependencies[representative], kinds,
                    ):
                        for member in symmetry_class.members:
                            report = _reused_report(
                                member,
                                kinds,
                                propagated_from=(
                                    None if member == representative else representative
                                ),
                            )
                            reports.append(report)
                            yield from report.results
                    else:
                        recheck_classes.append(symmetry_class)
                classes = recheck_classes
            if strategy.parallel > 1:
                if classes:
                    from repro.core.parallel import SchedulerStats, iter_class_batches

                    scheduler_stats = SchedulerStats()
                    fresh, cache_delta, stopped_early = yield from _consume_batches(
                        iter_class_batches(
                            annotated,
                            classes,
                            jobs=strategy.parallel,
                            stats=scheduler_stats,
                            **options,
                        ),
                        strategy,
                    )
                    reports.extend(fresh)
                elif strategy.incremental:
                    cache_delta = {}
            else:
                if strategy.incremental:
                    cache_before = snapshot()
                for symmetry_class in classes:
                    class_reports = checked(check_class, annotated, symmetry_class)
                    reports.extend(class_reports)
                    for report in class_reports:
                        yield from report.results
                    if strategy.stop_on_failure and _batch_failed(class_reports):
                        stopped_early = True
                        break
        # Classes (and the delta layer's reused-first emission) interleave the
        # node order; restore the selection order so reports (and
        # counterexample enumeration) are reproducible.
        order = {node: index for index, node in enumerate(selected)}
        reports.sort(key=lambda report: order[report.node])
    except GeneratorExit:
        # The consumer abandoned the stream mid-run.  A completed batch
        # leaves its SAT scope open on the pinned solver (the next batch
        # would have rotated it); without recovery the abandoned scope —
        # and, after a mid-batch close, possibly a dangling assertion
        # frame — would leak into the next run on this session.
        if solver is not None:
            solver.recover()
        raise

    if cache_before is not None:
        cache_delta = subtract_cache_statistics(snapshot(), cache_before)
    if store is not None:
        # Only on normal completion: an abandoned stream never reaches here,
        # so a half-observed run can't overwrite a good store.
        _record_delta_run(store, annotated, strategy, reports, dependencies, kinds)
        store.save()
    checked_nodes = {report.node for report in reports}
    conditions_skipped = (
        len(strategy.conditions) * sum(1 for node in selected if node not in checked_nodes)
        if stopped_early
        else 0
    )
    session._finalize(
        merge_reports(
            reports,
            wall_time=_time.perf_counter() - started,
            parallelism=max(1, strategy.parallel),
            symmetry=strategy.symmetry,
            symmetry_classes=class_count,
            backend_cache=cache_delta,
            stopped_early=stopped_early,
            conditions_skipped=conditions_skipped,
            delta=strategy.delta,
            scheduler=(
                scheduler_stats.as_dict() if scheduler_stats is not None else None
            ),
        )
    )


# ---------------------------------------------------------------------------
# The strawperson engine
# ---------------------------------------------------------------------------


def strawperson_events(
    session: Session, strategy: Strawperson, nodes: Sequence[str] | None
) -> Iterator[ConditionResult]:
    """The §2.2 procedure as a streaming engine (one event per node)."""
    from repro.core.strawperson import erased_interfaces, run_strawperson

    if nodes is not None:
        raise VerificationError("the strawperson engine always checks the whole network")
    if strategy.interfaces is not None:
        interfaces = strategy.interfaces
    else:
        interfaces = erased_interfaces(session.annotated)
    report = run_strawperson(session.network, interfaces)
    for node, passed in report.node_results.items():
        yield ConditionResult(
            node=node, condition="stable (strawperson)", holds=passed, duration=0.0
        )
    session._finalize(report)
