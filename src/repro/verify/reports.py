"""The unified :class:`Report` protocol over every engine's report type.

The three engines keep their detailed report dataclasses
(:class:`~repro.core.results.ModularReport`,
:class:`~repro.core.results.MonolithicReport`,
:class:`~repro.core.strawperson.StrawpersonReport`) — they carry genuinely
different data — but all three satisfy one structural protocol, so the
harness, tables and CLI can consume any engine's output without
special-casing its shape:

* ``verdict`` — ``"pass"``, ``"fail"`` or ``"timeout"``;
* ``wall_time`` — total wall-clock seconds of the run;
* ``backend_cache`` — incremental-backend cache counters, or ``None`` for
  engines/runs that collect none;
* ``to_json()`` — a JSON-serialisable dict (used for ``BENCH_*.json``
  trajectories and the harness' machine-readable output).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

#: The verdict vocabulary shared by every report type.
VERDICTS = ("pass", "fail", "timeout")


@runtime_checkable
class Report(Protocol):
    """Structural interface satisfied by every engine's report."""

    @property
    def verdict(self) -> str: ...

    @property
    def wall_time(self) -> float: ...

    @property
    def backend_cache(self) -> dict[str, int] | None: ...

    def to_json(self) -> dict[str, object]: ...


def is_report(value: object) -> bool:
    """Whether ``value`` satisfies the :class:`Report` protocol."""
    return isinstance(value, Report)
