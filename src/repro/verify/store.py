"""The delta-verification store: fingerprints and verdicts between runs.

``Modular(delta="reuse")`` makes :class:`repro.verify.Session` consult a
small on-disk store before discharging anything: a node whose *dependency
fingerprint* (see :mod:`repro.core.fingerprint`) is unchanged since the last
recorded run gets its cached verdicts back as ``reused`` events, and only
changed/new nodes are handed to the SMT backend.  This module owns that
store's format and lifecycle.

**Format.**  One JSON document per (network topology, strategy signature)
pair, with two tables:

* ``conditions`` — the fingerprint-keyed verdict map the ISSUE of record
  asks for: canonical condition content hash → verdict + metadata.  Only
  *passing* verdicts are recorded; a failing condition is always
  re-discharged so its counterexample is fresh and its verdict can never go
  stale.
* ``nodes`` — the invalidation index: node name → dependency fingerprint +
  its per-kind condition fingerprints.  Reuse requires the dependency
  fingerprint to match *and* every requested kind to resolve to a passing
  entry in ``conditions``.

Because both fingerprints are computed from canonicalized (node-identity-
erased) term structure, a stale entry can never produce a wrong verdict: any
semantic change to the inputs of a node's conditions changes its dependency
fingerprint, and an entry that no longer matches is simply not reused.
Entries for nodes whose fingerprint changed are *kept* until the node next
passes — if the operator reverts the config edit, the old entry matches
again and is legitimately reusable.

**Robustness.**  Loading is fail-soft by design: a truncated/corrupt file, a
format-version mismatch, a different network topology or a different
strategy signature each degrade to an empty store (i.e. a full run) with a
:class:`RuntimeWarning` naming the reason — never a crash, never a stale
verdict.  Saving is atomic (write-to-temp + ``os.replace``) so a crashed or
interrupted run cannot truncate a previously good store.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from typing import Mapping, Sequence

#: Format version; bump on any incompatible schema change.  Loaders treat a
#: mismatch as "no store" (full run), never attempt migration in place.
#: Version 2: fingerprints moved to the destination-canonicalized ``fp2``
#: encoding (see :mod:`repro.core.fingerprint`), so ``fp1`` stores must not
#: be reused against them.
STORE_VERSION = 2

#: Directory the session drops stores into when no explicit path is given.
DEFAULT_STORE_DIR = ".timepiece-delta"


def default_store_path(network_fingerprint: str, strategy_signature: str) -> str:
    """The conventional store location for a (network, strategy) pair."""
    return os.path.join(
        DEFAULT_STORE_DIR,
        f"{network_fingerprint[:16]}-{strategy_signature[:8]}.json",
    )


def _warn(path: str, reason: str) -> None:
    warnings.warn(
        f"delta store {path!r} ignored ({reason}); running a full verification",
        RuntimeWarning,
        stacklevel=4,
    )


@dataclass
class DeltaStore:
    """In-memory image of one store file, plus its identity header."""

    path: str
    network: str
    strategy: str
    #: Canonical condition fingerprint → metadata.  Presence means "proved".
    conditions: dict[str, dict] = field(default_factory=dict)
    #: Node name → {"dependency": fp, "conditions": {kind: condition fp}}.
    nodes: dict[str, dict] = field(default_factory=dict)
    #: Whether anything changed since load (saving is skipped otherwise).
    dirty: bool = False

    # -- loading -----------------------------------------------------------------

    @classmethod
    def open(cls, path: str, network: str, strategy: str) -> "DeltaStore":
        """Load the store at ``path``, degrading to empty on any problem.

        Every failure mode — missing file (a cold start, not warned about),
        unreadable file, malformed JSON, wrong schema version, different
        network topology, different strategy signature — yields an empty
        store so the session falls back to a full run; all but the cold
        start emit a :class:`RuntimeWarning` naming the reason.
        """
        store = cls(path=path, network=network, strategy=strategy)
        if not os.path.exists(path):
            return store
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as error:
            _warn(path, f"unreadable or corrupt: {error}")
            return store
        if not isinstance(document, dict):
            _warn(path, "malformed document (not a JSON object)")
            return store
        if document.get("version") != STORE_VERSION:
            _warn(
                path,
                f"format version {document.get('version')!r} != {STORE_VERSION}",
            )
            return store
        if document.get("network") != network:
            _warn(path, "recorded for a different network topology")
            return store
        if document.get("strategy") != strategy:
            _warn(path, "recorded under a different strategy signature")
            return store
        conditions = document.get("conditions")
        nodes = document.get("nodes")
        if not isinstance(conditions, dict) or not isinstance(nodes, dict):
            _warn(path, "malformed condition/node tables")
            return store
        for name, entry in nodes.items():
            if (
                not isinstance(entry, dict)
                or not isinstance(entry.get("dependency"), str)
                or not isinstance(entry.get("conditions"), dict)
            ):
                _warn(path, f"malformed node entry {name!r}")
                return store
        store.conditions = conditions
        store.nodes = nodes
        return store

    # -- queries -----------------------------------------------------------------

    def reusable(self, node: str, dependency: str, kinds: Sequence[str]) -> bool:
        """Whether ``node``'s verdicts can be reused under ``dependency``.

        Requires a recorded entry whose dependency fingerprint matches and
        whose condition fingerprints for *every* requested kind resolve to
        recorded (passing) verdicts.
        """
        entry = self.nodes.get(node)
        if entry is None or entry.get("dependency") != dependency:
            return False
        recorded = entry.get("conditions", {})
        return self.has_conditions(recorded, kinds)

    def has_conditions(
        self, condition_fingerprints: Mapping[str, str], kinds: Sequence[str]
    ) -> bool:
        """Whether every requested kind's exact condition is recorded as proved.

        The slow-path reuse check: condition fingerprints are content hashes
        of the (canonicalized) query itself, so a hit here is reusable even
        when the node's dependency entry points elsewhere — e.g. after a
        config edit was reverted, the old conditions are still in the table.
        """
        for kind in kinds:
            fingerprint = condition_fingerprints.get(kind)
            if fingerprint is None or fingerprint not in self.conditions:
                return False
        return True

    # -- updates -----------------------------------------------------------------

    def record(
        self, node: str, dependency: str, condition_fingerprints: Mapping[str, str]
    ) -> None:
        """Record one fully-passing node: its dependency key and verdicts.

        Callers only record nodes whose every requested condition passed —
        the store never holds failing verdicts (they must be re-discharged
        for fresh counterexamples).
        """
        entry = {"dependency": dependency, "conditions": dict(condition_fingerprints)}
        if self.nodes.get(node) != entry:
            self.nodes[node] = entry
            self.dirty = True
        for kind, fingerprint in condition_fingerprints.items():
            metadata = {"kind": kind, "holds": True, "node": node}
            existing = self.conditions.get(fingerprint)
            if existing is None:
                self.conditions[fingerprint] = metadata
                self.dirty = True

    def save(self) -> None:
        """Atomically persist the store (no-op when nothing changed).

        Writes the full document to a sibling temp file and ``os.replace``s
        it over the target, so readers only ever observe a complete store —
        an interrupted save leaves the previous version intact.
        """
        if not self.dirty:
            return
        document = {
            "version": STORE_VERSION,
            "network": self.network,
            "strategy": self.strategy,
            "conditions": self.conditions,
            "nodes": self.nodes,
        }
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        descriptor, temporary = tempfile.mkstemp(
            prefix=os.path.basename(self.path) + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=1, sort_keys=True)
            os.replace(temporary, self.path)
        except BaseException:
            try:
                os.unlink(temporary)
            except OSError:
                pass
            raise
        self.dirty = False
