"""``repro.verify`` — the unified verification API.

One entry point for every engine the paper compares:

* **Strategy objects** (:class:`Modular`, :class:`Monolithic`,
  :class:`Strawperson`) are frozen, self-validating dataclasses holding
  every knob of an engine, registered by name so new engines plug in
  without new call sites.
* A :class:`Session` binds a target network to a strategy, owns the
  incremental solver's lifecycle across runs (``backend="persistent"``
  carries learned clauses across SAT scopes *and* runs) and streams
  per-condition :class:`~repro.core.results.ConditionResult` events before
  finalizing a report.
* Every report satisfies the common :class:`Report` protocol (``verdict``,
  ``wall_time``, ``backend_cache``, ``to_json()``).

Quickstart::

    from repro.verify import Modular, Session, verify

    report = verify(annotated)                       # modular, defaults
    report = verify(annotated, Modular(symmetry="classes"))

    with Session(annotated, Modular(backend="persistent")) as session:
        for event in session.stream():               # streaming progress
            print(event.node, event.condition, event.holds)
        report = session.report

The legacy ``repro.core.check_modular``/``check_monolithic``/
``check_strawperson`` functions and ``repro.harness.SweepSettings`` are
deprecated shims over this API and produce identical verdicts.
"""

from repro.verify.reports import Report, VERDICTS, is_report
from repro.verify.session import LINT_MODES, Session, verify
from repro.verify.store import DEFAULT_STORE_DIR, DeltaStore, STORE_VERSION, default_store_path
from repro.verify.strategies import (
    BACKENDS,
    DELTA_MODES,
    Modular,
    Monolithic,
    STRATEGY_REGISTRY,
    Strategy,
    Strawperson,
    available_strategies,
    register_strategy,
    strategy,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_STORE_DIR",
    "DELTA_MODES",
    "DeltaStore",
    "LINT_MODES",
    "Modular",
    "Monolithic",
    "Report",
    "STORE_VERSION",
    "STRATEGY_REGISTRY",
    "Session",
    "Strategy",
    "Strawperson",
    "VERDICTS",
    "available_strategies",
    "is_report",
    "register_strategy",
    "strategy",
    "verify",
]
