"""Strategy objects: the *what and how* of a verification run.

A strategy is a frozen, self-validating dataclass bundling every knob of one
verification engine — the paper's comparison harness runs the same annotated
network under several of them (modular vs monolithic vs the §2.2
strawperson).  Strategies replace the kwarg forests of the legacy
``check_modular``/``check_monolithic``/``check_strawperson`` entry points:
a knob that exists on the strategy *provably* reaches the engine, because
the engine receives the whole object (see the regression test in
``tests/verify/test_strategies.py``).

Strategies are registered by name in :data:`STRATEGY_REGISTRY`, so the CLI
and harness can construct them from plain strings (``strategy("modular",
symmetry="classes")``) and new engines — e.g. a symmetry-aware monolithic
encoding — plug in by registering a class, without touching any call site.

Each strategy implements :meth:`Strategy.events`, the engine entry point
used by :class:`repro.verify.Session`: a generator that yields
:class:`~repro.core.results.ConditionResult` events as verdicts arrive and
installs the finalized report on the session when exhausted.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, ClassVar, Iterator, Mapping

from repro.core.conditions import CONDITION_KINDS
from repro.core.results import ConditionResult
from repro.core.symmetry import SYMMETRY_MODES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.verify.session import Session

#: Modular-engine backends: ``incremental`` shares the per-process solver
#: (encoding caches persist across runs in the process), ``persistent`` gives
#: the session its own solver that additionally carries learned clauses
#: across SAT scopes and runs, ``fresh`` builds one SAT instance per
#: condition (the ablation baseline).
BACKENDS = ("incremental", "persistent", "fresh")

#: Delta re-verification modes: ``off`` re-discharges everything (the
#: historical behaviour), ``reuse`` consults the on-disk fingerprint store
#: (:mod:`repro.verify.store`) and only discharges conditions whose inputs
#: changed since the last recorded run, emitting cached verdicts as
#: ``reused`` events for the rest.
DELTA_MODES = ("off", "reuse")


class Strategy:
    """Base class of all verification strategies.

    Subclasses are frozen dataclasses; their fields are the engine's
    complete configuration.  ``name`` is the registry key used by
    :func:`strategy` and the CLI.
    """

    name: ClassVar[str] = ""
    #: Whether the engine runs on the session's incremental solver; the
    #: session rejects a supplied solver for strategies that never touch it
    #: (a silent no-op otherwise).  Engines that pin batches to the session
    #: solver — like :class:`Modular` — set this.
    uses_session_solver: ClassVar[bool] = False

    def events(self, session: "Session", nodes: Any | None = None) -> Iterator[ConditionResult]:
        """Run the engine, yielding per-condition events; finalize the report.

        Implementations must call ``session._finalize(report)`` after the
        last event so :attr:`Session.report` reflects this run.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line rendering of the strategy and all its knobs.

        The CLI prints this with ``--progress`` so a run's full
        configuration is visible alongside its streamed verdicts.
        """
        parameters = ", ".join(
            f"{field.name}={getattr(self, field.name)!r}" for field in fields(self)  # type: ignore[arg-type]
        )
        return f"{self.name}({parameters})"


#: Registry of strategy classes by name.  New engines register here and are
#: immediately constructible from the CLI and harness without new call sites.
STRATEGY_REGISTRY: dict[str, type[Strategy]] = {}


def register_strategy(cls: type[Strategy]) -> type[Strategy]:
    """Class decorator: register a strategy under its ``name``."""
    if not cls.name:
        raise ValueError(f"strategy class {cls.__name__} must set a registry name")
    if cls.name in STRATEGY_REGISTRY:
        raise ValueError(
            f"strategy {cls.name!r} is already registered "
            f"(by {STRATEGY_REGISTRY[cls.name].__name__})"
        )
    STRATEGY_REGISTRY[cls.name] = cls
    return cls


def strategy(name: str, **parameters: Any) -> Strategy:
    """Construct a registered strategy by name (the argv → strategy path)."""
    try:
        cls = STRATEGY_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose one of {sorted(STRATEGY_REGISTRY)}"
        ) from None
    return cls(**parameters)


def available_strategies() -> tuple[str, ...]:
    """The registered strategy names, sorted."""
    return tuple(sorted(STRATEGY_REGISTRY))


@register_strategy
@dataclass(frozen=True)
class Modular(Strategy):
    """The paper's modular checking procedure (Algorithm 1), fully knobbed.

    ``symmetry`` selects the PR 2 reduction mode (one of
    :data:`~repro.core.symmetry.SYMMETRY_MODES`); ``backend`` the SMT
    backend (:data:`BACKENDS`); ``parallel`` the worker-process count;
    ``spot_check_seed`` seeds the deterministic choice of re-verified class
    members in ``spot-check`` mode.  ``delay`` and ``conditions`` mirror the
    per-node knobs of :func:`repro.core.check_node`.

    Two fail-fast granularities: ``fail_fast`` (per batch) skips a node's
    remaining conditions after its first failure, mirroring Algorithm 1;
    ``stop_on_failure`` (run level) additionally stops scheduling *further*
    nodes/classes once any completed batch reports a failing condition —
    parallel runs stop dispatching queued work items and terminate the pool,
    and the report records ``stopped_early``/``conditions_skipped``.

    ``delta="reuse"`` (CLI ``--delta reuse``) turns the run change-aware: a
    fingerprint store persisted between runs (``store``, defaulting to a
    conventional path) supplies cached verdicts for nodes whose condition
    inputs are unchanged, so a config edit re-checks only the edited node's
    neighbourhood and a no-op re-run reuses everything.
    """

    name: ClassVar[str] = "modular"
    uses_session_solver: ClassVar[bool] = True

    symmetry: str = "off"
    backend: str = "incremental"
    parallel: int = 1
    fail_fast: bool = True
    stop_on_failure: bool = False
    spot_check_seed: int = 0
    delay: int = 0
    conditions: tuple[str, ...] = CONDITION_KINDS
    #: Delta re-verification mode (:data:`DELTA_MODES`).  With ``"reuse"``
    #: the session loads the fingerprint store before the run, emits cached
    #: verdicts (``ConditionResult.reused``) for unchanged nodes/classes,
    #: discharges only the changed remainder, and atomically re-records the
    #: store afterwards.
    delta: str = "off"
    #: Store file path for ``delta="reuse"``; ``None`` derives the
    #: conventional per-(network, strategy) path under
    #: :data:`repro.verify.store.DEFAULT_STORE_DIR`.
    store: str | None = None

    def __post_init__(self) -> None:
        if self.symmetry not in SYMMETRY_MODES:
            raise ValueError(
                f"unknown symmetry mode {self.symmetry!r}; choose one of {SYMMETRY_MODES}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; choose one of {BACKENDS}")
        if self.delta not in DELTA_MODES:
            raise ValueError(f"unknown delta mode {self.delta!r}; choose one of {DELTA_MODES}")
        if self.store is not None and self.delta == "off":
            # A store that is never read or written would be a silent no-op.
            raise ValueError('store requires delta="reuse"')
        if self.store is not None and not isinstance(self.store, str):
            raise ValueError(f"store must be a path string or None, got {self.store!r}")
        if self.parallel < 1:
            raise ValueError(f"parallel must be a positive worker count, got {self.parallel}")
        for flag in ("fail_fast", "stop_on_failure"):
            value = getattr(self, flag)
            if not isinstance(value, bool):
                # A truthy non-bool (e.g. the string "false" from a config
                # file) would silently flip the engine's fail-fast behavior.
                raise ValueError(f"{flag} must be a bool, got {value!r}")
        if self.backend == "persistent" and self.parallel > 1:
            # Worker processes own their solvers, so a session-owned
            # persistent solver cannot serve a parallel run; rejecting the
            # combination beats silently degrading to per-worker solvers.
            raise ValueError(
                'backend="persistent" requires parallel=1 (parallel workers use '
                "their own per-process solvers and cannot share a session-owned one)"
            )
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay}")
        object.__setattr__(self, "conditions", tuple(self.conditions))
        unknown = set(self.conditions) - set(CONDITION_KINDS)
        if unknown:
            raise ValueError(
                f"unknown condition kinds {sorted(unknown)}; choose among {CONDITION_KINDS}"
            )

    @property
    def incremental(self) -> bool:
        """Whether the engine uses an incremental backend (either flavour)."""
        return self.backend != "fresh"

    def engine_options(self) -> dict[str, Any]:
        """The per-batch kwargs handed to ``check_node``/``check_class``.

        Every :class:`Modular` field must either appear here or steer the
        engine loop itself (``symmetry``, ``backend``, ``parallel``,
        ``stop_on_failure``, ``spot_check_seed``, ``delta``, ``store``); the
        strategy regression test enforces that no field is silently dropped.
        """
        return {
            "delay": self.delay,
            "conditions": self.conditions,
            "fail_fast": self.fail_fast,
            "incremental": self.incremental,
        }

    def events(self, session: "Session", nodes: Any | None = None) -> Iterator[ConditionResult]:
        from repro.verify.session import modular_events

        return modular_events(session, self, nodes)


@register_strategy
@dataclass(frozen=True)
class Monolithic(Strategy):
    """The Minesweeper-style monolithic baseline (the paper's ``Ms``).

    ``timeout`` is the wall-clock budget in seconds (``None`` = unbounded);
    the paper's evaluation used 2-hour timeouts.
    """

    name: ClassVar[str] = "monolithic"

    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"timeout must be a positive number of seconds or None, got {self.timeout}"
            )

    def events(self, session: "Session", nodes: Any | None = None) -> Iterator[ConditionResult]:
        from repro.core.monolithic import run_monolithic
        from repro.errors import VerificationError

        if nodes is not None:
            raise VerificationError("the monolithic engine always checks the whole network")
        started = _time.perf_counter()
        report = run_monolithic(session.annotated, timeout=self.timeout)
        yield ConditionResult(
            node="*",
            # A timed-out run is not a counterexample; streaming consumers
            # branching on ``holds`` need the distinction the report makes.
            condition="monolithic (timeout)" if report.timed_out else "monolithic",
            holds=report.passed,
            duration=_time.perf_counter() - started,
        )
        session._finalize(report)


@register_strategy
@dataclass(frozen=True)
class Strawperson(Strategy):
    """The naïve (unsound) §2.2 stable-state procedure.

    ``interfaces`` maps nodes to *stable* (time-free) route predicates.
    When omitted, the session erases the annotated network's temporal
    interfaces at the stable time ``t ≥ τ_max`` — the same erasure the
    monolithic baseline applies to properties.
    """

    name: ClassVar[str] = "strawperson"

    interfaces: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.interfaces is not None and not isinstance(self.interfaces, Mapping):
            raise ValueError("interfaces must be a mapping from node name to stable predicate")

    def events(self, session: "Session", nodes: Any | None = None) -> Iterator[ConditionResult]:
        from repro.verify.session import strawperson_events

        return strawperson_events(session, self, nodes)
