"""Exception hierarchy shared by every subsystem of the reproduction.

Keeping all exception types in one module makes it easy for callers to catch
"anything this library raised" (:class:`ReproError`) while still allowing the
individual subsystems to signal precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SortError(ReproError):
    """An SMT term was built from arguments of the wrong sort."""


class TermError(ReproError):
    """An SMT term was constructed with malformed arguments."""


class SolverError(ReproError):
    """The SMT or SAT solver was used incorrectly (e.g. model before check)."""


class SymbolicError(ReproError):
    """A symbolic value (the Zen-like layer) was used incorrectly."""


class RoutingError(ReproError):
    """A routing algebra, topology or simulation was constructed incorrectly."""


class VerificationError(ReproError):
    """The Timepiece verification engine was driven incorrectly."""


class ConfigSyntaxError(ReproError):
    """The policy-DSL frontend rejected a configuration file."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ConfigSemanticError(ReproError):
    """The policy-DSL frontend rejected a well-formed but meaningless config."""


class AnalysisError(ReproError):
    """The static analysis (lint) layer rejected annotations or configuration.

    Raised by ``Session.run(lint="strict")`` and the strict paths of
    :mod:`repro.analysis` when lint finds error- or warning-severity
    diagnostics.  Carries the offending diagnostics so callers can render
    them without re-running the passes.  Distinct from
    :class:`ConfigSyntaxError`/:class:`ConfigSemanticError`: those reject
    configurations the compiler cannot consume at all, while analysis
    findings concern configurations and annotations that are *consumable*
    but provably wrong or suspicious.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class BenchmarkError(ReproError):
    """A benchmark network or experiment harness was misconfigured."""
