"""Process-pool execution of per-node and per-class checks.

Node checks share no state, so they parallelise trivially.  Annotated
networks hold closures (transfer functions, interfaces) that are not
picklable in general, so instead of shipping the network to worker processes
we rely on ``fork``: the annotated network (and, with symmetry reduction,
the precomputed symmetry classes) is stashed in a module-level slot before
the pool is created, every forked worker inherits it, and only an index or
node name travels over the queue.  The returned :class:`NodeReport` objects
contain plain data and pickle fine.

Each forked worker keeps its own per-process incremental SMT solver
(:func:`repro.smt.process_solver`), so the batches a worker checks share
encoded structure and learned clauses exactly as in sequential mode.  With
symmetry reduction, work is partitioned by *equivalence class* rather than
by node: one work item is one whole class, so a worker encodes one
structural shape, discharges it once, and propagates verdicts to the class
members without its caches ever being evicted by unrelated structure —
batch-aware partitioning in the sense of batch-parallel data structures.
Class work items are dispatched with ``chunksize=1`` in class order, which
both balances the (very uneven) class sizes and keeps scheduling
deterministic in its results: reports are reassembled in class order and
re-sorted to node order by the caller.

On platforms without ``fork``, or when the pool itself cannot be set up, the
checker degrades to sequential execution with a :class:`RuntimeWarning` —
the results are identical, only the wall-clock time differs.  Failures
*inside* a worker (a crashing check, a keyboard interrupt) propagate to the
caller; masking them behind a silent sequential rerun would hide real bugs.
"""

from __future__ import annotations

import multiprocessing
import warnings
from typing import Callable, Sequence, TypeVar

from repro.core.annotations import AnnotatedNetwork
from repro.core.results import NodeReport
from repro.core.symmetry import SymmetryClass
from repro.smt.incremental import (
    add_cache_statistics,
    process_cache_statistics,
    subtract_cache_statistics,
)

# The network being checked by the current pool; inherited by forked workers.
_ACTIVE_NETWORK: AnnotatedNetwork | None = None
_ACTIVE_OPTIONS: dict | None = None
_ACTIVE_CLASSES: Sequence[SymmetryClass] | None = None

_T = TypeVar("_T")
_R = TypeVar("_R")


def _check_one(node: str) -> NodeReport:
    """Worker entry point: check a single node of the inherited network."""
    from repro.core.checker import check_node

    assert _ACTIVE_NETWORK is not None and _ACTIVE_OPTIONS is not None
    return check_node(
        _ACTIVE_NETWORK,
        node,
        delay=_ACTIVE_OPTIONS["delay"],
        conditions=_ACTIVE_OPTIONS["conditions"],
        fail_fast=_ACTIVE_OPTIONS["fail_fast"],
        incremental=_ACTIVE_OPTIONS["incremental"],
    )


def _check_class_with_delta(
    annotated: AnnotatedNetwork,
    symmetry_class: SymmetryClass,
    delay: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool,
) -> tuple[list[NodeReport], dict[str, int]]:
    """Check one class and measure this process's cache-counter delta.

    The single definition of the delta protocol — used verbatim by the
    forked worker entry point and the sequential fallback, so both report
    identical ``backend_cache`` statistics for identical inputs.
    """
    from repro.core.checker import check_class

    before = process_cache_statistics() if incremental else {}
    reports = check_class(
        annotated,
        symmetry_class,
        delay=delay,
        conditions=conditions,
        fail_fast=fail_fast,
        incremental=incremental,
    )
    delta = (
        subtract_cache_statistics(process_cache_statistics(), before) if incremental else {}
    )
    return reports, delta


def _check_one_class(index: int) -> tuple[list[NodeReport], dict[str, int]]:
    """Worker entry point: check one symmetry class of the inherited network.

    Returns the member reports plus the worker's incremental-backend cache
    delta for this class, so the parent can aggregate statistics it cannot
    observe directly (each worker has its own process solver).
    """
    assert _ACTIVE_NETWORK is not None and _ACTIVE_OPTIONS is not None
    assert _ACTIVE_CLASSES is not None
    return _check_class_with_delta(
        _ACTIVE_NETWORK,
        _ACTIVE_CLASSES[index],
        delay=_ACTIVE_OPTIONS["delay"],
        conditions=_ACTIVE_OPTIONS["conditions"],
        fail_fast=_ACTIVE_OPTIONS["fail_fast"],
        incremental=_ACTIVE_OPTIONS["incremental"],
    )


def _run_pool(
    annotated: AnnotatedNetwork,
    classes: Sequence[SymmetryClass] | None,
    options: dict,
    jobs: int,
    items: Sequence[_T],
    worker: Callable[[_T], _R],
    sequential: Callable[[], list[_R]],
) -> list[_R]:
    """Map ``worker`` over ``items`` on a fork pool, or fall back sequentially."""
    global _ACTIVE_NETWORK, _ACTIVE_OPTIONS, _ACTIVE_CLASSES

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = None

    if context is None or jobs <= 1 or len(items) <= 1:
        return sequential()

    _ACTIVE_NETWORK = annotated
    _ACTIVE_OPTIONS = options
    _ACTIVE_CLASSES = classes
    try:
        try:
            pool = context.Pool(processes=min(jobs, len(items)))
        except OSError as error:
            # Pool *setup* can fail on exotic platforms (no fork, no
            # semaphores); degrading to sequential checking is safe there.
            # Anything raised by the checks themselves propagates — a silent
            # rerun would mask real worker crashes.
            warnings.warn(
                f"process pool unavailable ({error}); checking sequentially",
                RuntimeWarning,
                stacklevel=3,
            )
            return sequential()
        with pool:
            # chunksize=1 balances uneven work items; pool.map still returns
            # results in submission order, keeping the output deterministic.
            return pool.map(worker, items, chunksize=1)
    finally:
        _ACTIVE_NETWORK = None
        _ACTIVE_OPTIONS = None
        _ACTIVE_CLASSES = None


def check_nodes_in_parallel(
    annotated: AnnotatedNetwork,
    nodes: Sequence[str],
    delay: int,
    jobs: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool = True,
) -> list[NodeReport]:
    """Check ``nodes`` using up to ``jobs`` forked worker processes."""
    from repro.core.checker import check_node

    options = {
        "delay": delay,
        "conditions": tuple(conditions),
        "fail_fast": fail_fast,
        "incremental": incremental,
    }

    def sequential() -> list[NodeReport]:
        return [
            check_node(
                annotated,
                node,
                delay=delay,
                conditions=conditions,
                fail_fast=fail_fast,
                incremental=incremental,
            )
            for node in nodes
        ]

    return _run_pool(annotated, None, options, jobs, tuple(nodes), _check_one, sequential)


def check_classes_in_parallel(
    annotated: AnnotatedNetwork,
    classes: Sequence[SymmetryClass],
    delay: int,
    jobs: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool = True,
) -> tuple[list[NodeReport], dict[str, int] | None]:
    """Check symmetry ``classes`` on a fork pool, one class per work item.

    Returns the flattened member reports (class order; the caller re-sorts
    to node order) and the summed incremental-backend cache deltas of the
    workers (``None`` with ``incremental=False``).
    """
    options = {
        "delay": delay,
        "conditions": tuple(conditions),
        "fail_fast": fail_fast,
        "incremental": incremental,
    }

    def sequential() -> list[tuple[list[NodeReport], dict[str, int]]]:
        return [
            _check_class_with_delta(
                annotated,
                symmetry_class,
                delay=delay,
                conditions=conditions,
                fail_fast=fail_fast,
                incremental=incremental,
            )
            for symmetry_class in classes
        ]

    outcomes = _run_pool(
        annotated,
        classes,
        options,
        jobs,
        tuple(range(len(classes))),
        _check_one_class,
        sequential,
    )
    reports = [report for class_reports, _ in outcomes for report in class_reports]
    if not incremental:
        return reports, None
    totals: dict[str, int] = {}
    for _, delta in outcomes:
        totals = add_cache_statistics(totals, delta)
    return reports, totals
