"""Streaming process-pool execution of per-node and per-class checks.

Node checks share no state, so they parallelise trivially.  Annotated
networks hold closures (transfer functions, interfaces) that are not
picklable in general, so instead of shipping the network to worker processes
we rely on ``fork``: the annotated network (and, with symmetry reduction,
the precomputed symmetry classes) is stashed in a module-level slot before
the pool is created, every forked worker inherits it, and only an index or
node name travels over the queue.  The returned :class:`NodeReport` objects
contain plain data and pickle fine.

Work items are dispatched **streamingly** rather than barrier-style:
:func:`iter_node_batches` and :func:`iter_class_batches` are generators that
yield one ``(index, reports, cache_delta)`` batch the moment its worker
finishes, in completion order.  The caller re-sorts final reports to
deterministic node order by the submission index, so results are
reproducible while progress is live.  At most one work item per worker
process is in flight: each completion dispatches the next queued item, so a
consumer that *closes* the iterator (run-level fail-fast, an abandoned
stream) stops dispatch immediately — queued items are never started, the
in-flight remainder is terminated, and the pool's processes are reaped
before ``GeneratorExit`` propagates.  No worker is ever orphaned.

Each forked worker keeps its own per-process incremental SMT solver
(:func:`repro.smt.process_solver`), so the batches a worker checks share
encoded structure and learned clauses exactly as in sequential mode.
Because those per-worker counters are not observable from the parent, every
work item measures its own cache-counter delta (the ``_with_delta``
protocol below) and ships it home with the reports; the parent sums the
deltas into the run's ``backend_cache`` aggregate.  The sequential fallback
measures deltas the same way, so degraded runs report identical statistics
for identical inputs.

With symmetry reduction, work is partitioned by *equivalence class* rather
than by node: one work item is one whole class, so a worker encodes one
structural shape, discharges it once, and propagates verdicts to the class
members without its caches ever being evicted by unrelated structure —
batch-aware partitioning in the sense of batch-parallel data structures.
Class work items are dispatched in class order, which balances the (very
uneven) class sizes; the caller re-sorts member reports to node order.

On platforms without ``fork``, or when the pool itself cannot be set up, the
checker degrades to sequential execution with a :class:`RuntimeWarning` —
the results (reports *and* cache deltas) are identical, only the wall-clock
time differs.  Failures *inside* a worker (a crashing check, a keyboard
interrupt) propagate to the caller; masking them behind a silent sequential
rerun would hide real bugs.
"""

from __future__ import annotations

import multiprocessing
import queue
import warnings
from typing import Callable, Iterator, Sequence, TypeVar

from repro.core.annotations import AnnotatedNetwork
from repro.core.results import NodeReport
from repro.core.symmetry import SymmetryClass
from repro.smt.incremental import (
    add_cache_statistics,
    process_cache_statistics,
    subtract_cache_statistics,
)

# The network being checked by the current pool; inherited by forked workers.
_ACTIVE_NETWORK: AnnotatedNetwork | None = None
_ACTIVE_OPTIONS: dict | None = None
_ACTIVE_CLASSES: Sequence[SymmetryClass] | None = None

_T = TypeVar("_T")
_R = TypeVar("_R")

#: One completed work item: the submission index (node or class position),
#: the member reports, and the worker's incremental-backend cache delta for
#: the item (``{}`` with ``incremental=False``).
Batch = tuple[int, list[NodeReport], dict[str, int]]


def _check_node_with_delta(
    annotated: AnnotatedNetwork,
    node: str,
    delay: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool,
) -> tuple[list[NodeReport], dict[str, int]]:
    """Check one node and measure this process's cache-counter delta.

    The single definition of the node-batch delta protocol — used verbatim
    by the forked worker entry point and the sequential fallback, so both
    report identical ``backend_cache`` statistics for identical inputs.
    """
    from repro.core.checker import check_node

    before = process_cache_statistics() if incremental else {}
    report = check_node(
        annotated,
        node,
        delay=delay,
        conditions=conditions,
        fail_fast=fail_fast,
        incremental=incremental,
    )
    delta = (
        subtract_cache_statistics(process_cache_statistics(), before) if incremental else {}
    )
    return [report], delta


def _check_class_with_delta(
    annotated: AnnotatedNetwork,
    symmetry_class: SymmetryClass,
    delay: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool,
) -> tuple[list[NodeReport], dict[str, int]]:
    """Check one class and measure this process's cache-counter delta.

    The single definition of the class-batch delta protocol — used verbatim
    by the forked worker entry point and the sequential fallback, so both
    report identical ``backend_cache`` statistics for identical inputs.
    """
    from repro.core.checker import check_class

    before = process_cache_statistics() if incremental else {}
    reports = check_class(
        annotated,
        symmetry_class,
        delay=delay,
        conditions=conditions,
        fail_fast=fail_fast,
        incremental=incremental,
    )
    delta = (
        subtract_cache_statistics(process_cache_statistics(), before) if incremental else {}
    )
    return reports, delta


def _check_one(node: str) -> tuple[list[NodeReport], dict[str, int]]:
    """Worker entry point: check a single node of the inherited network."""
    assert _ACTIVE_NETWORK is not None and _ACTIVE_OPTIONS is not None
    return _check_node_with_delta(
        _ACTIVE_NETWORK,
        node,
        delay=_ACTIVE_OPTIONS["delay"],
        conditions=_ACTIVE_OPTIONS["conditions"],
        fail_fast=_ACTIVE_OPTIONS["fail_fast"],
        incremental=_ACTIVE_OPTIONS["incremental"],
    )


def _check_one_class(index: int) -> tuple[list[NodeReport], dict[str, int]]:
    """Worker entry point: check one symmetry class of the inherited network."""
    assert _ACTIVE_NETWORK is not None and _ACTIVE_OPTIONS is not None
    assert _ACTIVE_CLASSES is not None
    return _check_class_with_delta(
        _ACTIVE_NETWORK,
        _ACTIVE_CLASSES[index],
        delay=_ACTIVE_OPTIONS["delay"],
        conditions=_ACTIVE_OPTIONS["conditions"],
        fail_fast=_ACTIVE_OPTIONS["fail_fast"],
        incremental=_ACTIVE_OPTIONS["incremental"],
    )


def _iter_pool(
    annotated: AnnotatedNetwork,
    classes: Sequence[SymmetryClass] | None,
    options: dict,
    jobs: int,
    items: Sequence[_T],
    worker: Callable[[_T], _R],
    sequential_one: Callable[[_T], _R],
) -> Iterator[tuple[int, _R]]:
    """Yield ``(index, worker(item))`` in completion order, streamingly.

    The core dispatcher: submits one work item per worker process with
    ``apply_async`` and blocks on a completion queue fed by the pool's
    result-handler callbacks; each completion dispatches the next queued
    item and is yielded immediately.  Closing the generator (or any
    exception, including a worker crash propagating) terminates the pool —
    queued items are never started and no worker is orphaned.  Falls back to
    in-process execution (same yield protocol) when ``fork`` or the pool is
    unavailable.

    Known limitation (shared with the ``pool.map`` predecessor): a worker
    killed *hard* (SIGKILL/OOM) loses its in-flight task — the pool respawns
    the process but no callback ever fires, so the completion wait blocks
    until the consumer interrupts it.  Python exceptions inside a worker are
    not affected: they arrive via ``error_callback`` and propagate.
    """
    global _ACTIVE_NETWORK, _ACTIVE_OPTIONS, _ACTIVE_CLASSES

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = None

    if context is None or jobs <= 1 or len(items) <= 1:
        for index, item in enumerate(items):
            yield index, sequential_one(item)
        return

    _ACTIVE_NETWORK = annotated
    _ACTIVE_OPTIONS = options
    _ACTIVE_CLASSES = classes
    try:
        processes = min(jobs, len(items))
        try:
            pool = context.Pool(processes=processes)
        except OSError as error:
            # Pool *setup* can fail on exotic platforms (no fork, no
            # semaphores); degrading to sequential checking is safe there.
            # Anything raised by the checks themselves propagates — a silent
            # rerun would mask real worker crashes.
            warnings.warn(
                f"process pool unavailable ({error}); checking sequentially",
                RuntimeWarning,
                stacklevel=3,
            )
            _ACTIVE_NETWORK = None
            _ACTIVE_OPTIONS = None
            _ACTIVE_CLASSES = None
            for index, item in enumerate(items):
                yield index, sequential_one(item)
            return

        # Completions land here from the pool's result-handler thread; the
        # third element is the worker's exception, if it raised.
        completions: queue.SimpleQueue = queue.SimpleQueue()

        def submit(index: int) -> None:
            pool.apply_async(
                worker,
                (items[index],),
                callback=lambda outcome, index=index: completions.put((index, outcome, None)),
                error_callback=lambda error, index=index: completions.put((index, None, error)),
            )

        next_index = 0
        in_flight = 0
        try:
            # Prime exactly one item per worker; every completion dispatches
            # one more.  Keeping the in-flight window at the worker count is
            # what makes closing the iterator an immediate stop: nothing
            # queued inside the pool is waiting behind the running items.
            while next_index < len(items) and in_flight < processes:
                submit(next_index)
                next_index += 1
                in_flight += 1
            while in_flight:
                index, outcome, error = completions.get()
                in_flight -= 1
                if error is not None:
                    raise error
                if next_index < len(items):
                    submit(next_index)
                    next_index += 1
                    in_flight += 1
                yield index, outcome
        except BaseException:
            # Worker crash, run-level fail-fast, consumer abandonment
            # (GeneratorExit) or an interrupt mid-priming: stop dispatching,
            # kill the in-flight remainder, reap every worker before
            # propagating.
            pool.terminate()
            pool.join()
            raise
        else:
            pool.close()
            pool.join()
    finally:
        _ACTIVE_NETWORK = None
        _ACTIVE_OPTIONS = None
        _ACTIVE_CLASSES = None


def _options(
    delay: int, conditions: Sequence[str], fail_fast: bool, incremental: bool
) -> dict:
    return {
        "delay": delay,
        "conditions": tuple(conditions),
        "fail_fast": fail_fast,
        "incremental": incremental,
    }


def _stream(
    pooled: Iterator[tuple[int, tuple[list[NodeReport], dict[str, int]]]]
) -> Iterator[Batch]:
    """Re-shape the dispatcher's pairs into :data:`Batch` triples.

    Closes the inner generator explicitly on every exit path: pool teardown
    must not depend on refcount finalization of the wrapped generator (the
    documented stop-dispatch guarantee).
    """
    try:
        for index, (reports, delta) in pooled:
            yield index, reports, delta
    finally:
        pooled.close()


def iter_node_batches(
    annotated: AnnotatedNetwork,
    nodes: Sequence[str],
    delay: int,
    jobs: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool = True,
) -> Iterator[Batch]:
    """Stream per-node check batches using up to ``jobs`` forked workers.

    Yields ``(node_index, [report], cache_delta)`` in completion order;
    ``node_index`` is the node's position in ``nodes``, so the caller can
    restore the deterministic selection order after the fact.  Closing the
    iterator stops dispatching queued nodes and terminates the pool.
    """
    options = _options(delay, conditions, fail_fast, incremental)

    def sequential_one(node: str) -> tuple[list[NodeReport], dict[str, int]]:
        return _check_node_with_delta(annotated, node, **options)

    return _stream(
        _iter_pool(annotated, None, options, jobs, tuple(nodes), _check_one, sequential_one)
    )


def iter_class_batches(
    annotated: AnnotatedNetwork,
    classes: Sequence[SymmetryClass],
    delay: int,
    jobs: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool = True,
) -> Iterator[Batch]:
    """Stream per-class check batches, one symmetry class per work item.

    Yields ``(class_index, member_reports, cache_delta)`` in completion
    order.  Closing the iterator stops dispatching queued classes and
    terminates the pool.
    """
    options = _options(delay, conditions, fail_fast, incremental)

    def sequential_one(index: int) -> tuple[list[NodeReport], dict[str, int]]:
        return _check_class_with_delta(annotated, classes[index], **options)

    return _stream(
        _iter_pool(
            annotated,
            classes,
            options,
            jobs,
            tuple(range(len(classes))),
            _check_one_class,
            sequential_one,
        )
    )


def _drain(
    batches: Iterator[Batch], incremental: bool
) -> tuple[list[NodeReport], dict[str, int] | None]:
    """Barrier-style convenience: exhaust a batch stream and re-sort.

    Returns the flattened reports in submission order plus the summed cache
    deltas (``None`` with ``incremental=False``).
    """
    indexed: dict[int, list[NodeReport]] = {}
    totals: dict[str, int] = {}
    for index, reports, delta in batches:
        indexed[index] = reports
        totals = add_cache_statistics(totals, delta)
    flattened = [report for index in sorted(indexed) for report in indexed[index]]
    return flattened, (totals if incremental else None)


def check_nodes_in_parallel(
    annotated: AnnotatedNetwork,
    nodes: Sequence[str],
    delay: int,
    jobs: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool = True,
) -> tuple[list[NodeReport], dict[str, int] | None]:
    """Check ``nodes`` using up to ``jobs`` forked worker processes.

    The barrier-style drain of :func:`iter_node_batches`: returns the
    reports in node order and the summed incremental-backend cache deltas of
    the workers (``None`` with ``incremental=False``) — measured identically
    whether the items ran on the pool or on the sequential fallback.
    """
    return _drain(
        iter_node_batches(
            annotated,
            nodes,
            delay=delay,
            jobs=jobs,
            conditions=conditions,
            fail_fast=fail_fast,
            incremental=incremental,
        ),
        incremental,
    )


def check_classes_in_parallel(
    annotated: AnnotatedNetwork,
    classes: Sequence[SymmetryClass],
    delay: int,
    jobs: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool = True,
) -> tuple[list[NodeReport], dict[str, int] | None]:
    """Check symmetry ``classes`` on a fork pool, one class per work item.

    The barrier-style drain of :func:`iter_class_batches`: returns the
    flattened member reports (class order; the caller re-sorts to node
    order) and the summed incremental-backend cache deltas of the workers
    (``None`` with ``incremental=False``).
    """
    return _drain(
        iter_class_batches(
            annotated,
            classes,
            delay=delay,
            jobs=jobs,
            conditions=conditions,
            fail_fast=fail_fast,
            incremental=incremental,
        ),
        incremental,
    )
