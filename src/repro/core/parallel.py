"""Streaming process-pool execution of per-node and per-class checks.

Node checks share no state, so they parallelise trivially.  Annotated
networks hold closures (transfer functions, interfaces) that are not
picklable in general, so instead of shipping the network to worker processes
we rely on ``fork``: the annotated network (and, with symmetry reduction,
the precomputed symmetry classes) is stashed in a module-level slot before
the pool is created, every forked worker inherits it, and only an index or
node name travels over the queue.  The returned :class:`NodeReport` objects
contain plain data and pickle fine.

Work items are dispatched **streamingly** rather than barrier-style:
:func:`iter_node_batches` and :func:`iter_class_batches` are generators that
yield one ``(index, reports, cache_delta)`` batch the moment its worker
finishes, in completion order.  The caller re-sorts final reports to
deterministic node order by the submission index, so results are
reproducible while progress is live.

**Adaptive scheduling.**  The in-flight window per worker is adaptive
(:func:`_window_size`): with many more pending items than workers it grows
(up to :data:`MAX_WINDOW`) so cheap items don't serialise on dispatch
latency, and it shrinks back to one as the queue drains, so a consumer that
*closes* the iterator (run-level fail-fast, an abandoned stream) still stops
dispatch promptly — unsubmitted items are never started, the in-flight
remainder is terminated, and the pool's processes are reaped before
``GeneratorExit`` propagates.  No worker is ever orphaned.  Class batches
additionally get **work-stealing splits**: when there are fewer classes than
requested workers (the skewed partitions the destination quotient produces —
a handful of classes, one of them huge), the largest splittable classes are
split into one work item per requested condition kind, computed up front as
a deterministic plan (:func:`_class_work_items`); the stream re-merges each
split class's sub-results into a single batch with the exact results an
unsplit check would have produced (kind order, fail-fast truncation), so
report order, verdicts and ``stop_on_failure`` semantics are unchanged.
A :class:`SchedulerStats` instance passed by the caller records the window
histogram, the number of split (stolen) classes and the distinct worker
processes observed; the sequential degrade path records the same window
accounting the pool would have used, so ablation rows compare like with
like.

Each forked worker keeps its own per-process incremental SMT solver
(:func:`repro.smt.process_solver`), so the batches a worker checks share
encoded structure and learned clauses exactly as in sequential mode.
Because those per-worker counters are not observable from the parent, every
work item measures its own cache-counter delta (the ``_with_delta``
protocol below) and ships it home with the reports; the parent sums the
deltas into the run's ``backend_cache`` aggregate.  The sequential fallback
measures deltas the same way, so degraded runs report identical statistics
for identical inputs.

With symmetry reduction, work is partitioned by *equivalence class* rather
than by node: one work item is one whole class, so a worker encodes one
structural shape, discharges it once, and propagates verdicts to the class
members without its caches ever being evicted by unrelated structure —
batch-aware partitioning in the sense of batch-parallel data structures.
Class work items are dispatched in class order, which balances the (very
uneven) class sizes; the caller re-sorts member reports to node order.

On platforms without ``fork``, or when the pool itself cannot be set up, the
checker degrades to sequential execution with a :class:`RuntimeWarning` —
the results (reports *and* cache deltas) are identical, only the wall-clock
time differs.  Failures *inside* a worker (a crashing check, a keyboard
interrupt) propagate to the caller; masking them behind a silent sequential
rerun would hide real bugs.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import warnings
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence, TypeVar

from repro.core.annotations import AnnotatedNetwork
from repro.core.conditions import CONDITION_KINDS
from repro.core.results import NodeReport
from repro.core.symmetry import SymmetryClass
from repro.smt.incremental import (
    add_cache_statistics,
    process_cache_statistics,
    subtract_cache_statistics,
)

# The network being checked by the current pool; inherited by forked workers.
_ACTIVE_NETWORK: AnnotatedNetwork | None = None
_ACTIVE_OPTIONS: dict | None = None
_ACTIVE_CLASSES: Sequence[SymmetryClass] | None = None

_T = TypeVar("_T")
_R = TypeVar("_R")

#: One completed work item: the submission index (node or class position),
#: the member reports, and the worker's incremental-backend cache delta for
#: the item (``{}`` with ``incremental=False``).
Batch = tuple[int, list[NodeReport], dict[str, int]]

#: The largest per-worker prefetch window the adaptive dispatcher uses.
#: Bounded so closing a stream never leaves more than ``workers × MAX_WINDOW``
#: items to discard.
MAX_WINDOW = 4

#: The scheduler modes :func:`iter_class_batches` accepts: ``"adaptive"``
#: (adaptive window + work-stealing splits, the default) and ``"fixed"``
#: (one item per worker in flight, no splits — the pre-refactor behaviour,
#: kept as the ablation baseline).
SCHEDULER_MODES = ("adaptive", "fixed")


def _window_size(pending: int, processes: int) -> int:
    """The per-worker prefetch window for ``pending`` remaining work items.

    Grows with the per-worker backlog (⌈pending/processes⌉, capped at
    :data:`MAX_WINDOW`) so small/cheap items amortise dispatch latency, and
    decays to 1 as the queue drains so the tail keeps every worker busy and
    an early stop has almost nothing in flight to discard.
    """
    if processes <= 0:
        return 1
    return min(MAX_WINDOW, max(1, -(-pending // processes)))


@dataclass
class SchedulerStats:
    """Mutable scheduler counters, filled in while a batch stream is drained.

    ``classes_stolen`` counts classes split into per-kind work items;
    ``window`` histograms dispatches by the prefetch-window size in effect
    when each was submitted; ``worker_pids`` collects the distinct OS
    processes that produced class batches (the degraded sequential path
    contributes just the parent pid).
    """

    classes_stolen: int = 0
    window: dict[int, int] = field(default_factory=dict)
    worker_pids: set[int] = field(default_factory=set)

    def record_dispatch(self, window: int) -> None:
        self.window[window] = self.window.get(window, 0) + 1

    def as_dict(self) -> dict:
        """The ``ModularReport.scheduler`` projection."""
        return {
            "classes_stolen": self.classes_stolen,
            "window": {size: count for size, count in sorted(self.window.items())},
            "workers": len(self.worker_pids) if self.worker_pids else 1,
        }


def _check_node_with_delta(
    annotated: AnnotatedNetwork,
    node: str,
    delay: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool,
) -> tuple[list[NodeReport], dict[str, int]]:
    """Check one node and measure this process's cache-counter delta.

    The single definition of the node-batch delta protocol — used verbatim
    by the forked worker entry point and the sequential fallback, so both
    report identical ``backend_cache`` statistics for identical inputs.
    """
    from repro.core.checker import check_node

    before = process_cache_statistics() if incremental else {}
    report = check_node(
        annotated,
        node,
        delay=delay,
        conditions=conditions,
        fail_fast=fail_fast,
        incremental=incremental,
    )
    delta = (
        subtract_cache_statistics(process_cache_statistics(), before) if incremental else {}
    )
    return [report], delta


def _check_class_with_delta(
    annotated: AnnotatedNetwork,
    symmetry_class: SymmetryClass,
    delay: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool,
) -> tuple[list[NodeReport], dict[str, int]]:
    """Check one class and measure this process's cache-counter delta.

    The single definition of the class-batch delta protocol — used verbatim
    by the forked worker entry point and the sequential fallback, so both
    report identical ``backend_cache`` statistics for identical inputs.
    """
    from repro.core.checker import check_class

    before = process_cache_statistics() if incremental else {}
    reports = check_class(
        annotated,
        symmetry_class,
        delay=delay,
        conditions=conditions,
        fail_fast=fail_fast,
        incremental=incremental,
    )
    delta = (
        subtract_cache_statistics(process_cache_statistics(), before) if incremental else {}
    )
    return reports, delta


def _check_one(node: str) -> tuple[list[NodeReport], dict[str, int]]:
    """Worker entry point: check a single node of the inherited network."""
    assert _ACTIVE_NETWORK is not None and _ACTIVE_OPTIONS is not None
    return _check_node_with_delta(
        _ACTIVE_NETWORK,
        node,
        delay=_ACTIVE_OPTIONS["delay"],
        conditions=_ACTIVE_OPTIONS["conditions"],
        fail_fast=_ACTIVE_OPTIONS["fail_fast"],
        incremental=_ACTIVE_OPTIONS["incremental"],
    )


#: One class-scheduler work item: ``(class_index, kinds)`` where ``kinds``
#: is ``None`` for a whole class or the single condition kind of a
#: work-stealing split.
ClassItem = tuple[int, "tuple[str, ...] | None"]


def _check_one_class(item: ClassItem) -> tuple[list[NodeReport], dict[str, int], int]:
    """Worker entry point: check one class work item of the inherited network.

    Returns the member reports, the cache delta and the worker's pid (the
    scheduler's evidence of how many processes actually did class work).
    A split item restricts the check to its condition-kind subset; the
    parent-side stream re-merges the subsets into whole-class batches.
    """
    assert _ACTIVE_NETWORK is not None and _ACTIVE_OPTIONS is not None
    assert _ACTIVE_CLASSES is not None
    index, kinds = item
    reports, delta = _check_class_with_delta(
        _ACTIVE_NETWORK,
        _ACTIVE_CLASSES[index],
        delay=_ACTIVE_OPTIONS["delay"],
        conditions=kinds if kinds is not None else _ACTIVE_OPTIONS["conditions"],
        fail_fast=_ACTIVE_OPTIONS["fail_fast"],
        incremental=_ACTIVE_OPTIONS["incremental"],
    )
    return reports, delta, os.getpid()


def _class_work_items(
    classes: Sequence[SymmetryClass],
    jobs: int,
    conditions: Sequence[str],
    scheduler: str,
    stats: SchedulerStats,
) -> list[ClassItem]:
    """The deterministic work-item plan for a class batch run.

    One item per class, except when the partition is *narrower than the
    requested worker count* (the destination quotient's skewed partitions:
    a handful of classes, some huge): then the largest still-whole classes
    are split into one item per requested condition kind — work-stealing at
    the granularity the engine can actually parallelise — until there are
    enough items to keep every worker busy or nothing splittable remains.
    Spot-check classes are never split (their extra member must be compared
    against the representative's full verdict vector in one place).  The
    plan depends only on ``(classes, jobs, conditions, scheduler)``, so the
    pool and sequential-degrade paths run identical work items.
    """
    items: list[ClassItem] = [(index, None) for index in range(len(classes))]
    if scheduler == "fixed" or jobs <= 1:
        return items
    kinds = tuple(kind for kind in CONDITION_KINDS if kind in set(conditions))
    if len(kinds) < 2:
        return items
    while len(items) < jobs:
        candidates = [
            position
            for position, (index, sub) in enumerate(items)
            if sub is None and classes[index].spot_member is None
        ]
        if not candidates:
            break
        # Largest class first; ties break to the earliest class so the plan
        # is deterministic.
        position = max(candidates, key=lambda p: (len(classes[items[p][0]]), -items[p][0]))
        index = items[position][0]
        items[position : position + 1] = [(index, (kind,)) for kind in kinds]
        stats.classes_stolen += 1
    return items


def _merge_split_class(
    per_kind: dict[str, tuple[list[NodeReport], dict[str, int]]],
    kinds: Sequence[str],
    fail_fast: bool,
) -> tuple[list[NodeReport], dict[str, int]]:
    """Re-assemble a split class's per-kind sub-results into one batch.

    Results are ordered by canonical kind order and, under ``fail_fast``,
    truncated at the first failing condition — exactly what an unsplit
    ``check_class`` produces (each kind's verdict is independent of the
    others, so discharging them in separate scopes changes no verdict).
    Durations sum; cache deltas sum.
    """
    members = [report.node for report in per_kind[kinds[0]][0]]
    merged: list[NodeReport] = []
    for position, node in enumerate(members):
        results = []
        duration = 0.0
        for kind in kinds:
            report = per_kind[kind][0][position]
            duration += report.duration
            results.extend(report.results)
        if fail_fast:
            truncated = []
            for result in results:
                truncated.append(result)
                if not result.holds:
                    break
            results = truncated
        merged.append(NodeReport(node=node, results=results, duration=duration))
    totals: dict[str, int] = {}
    for kind in kinds:
        totals = add_cache_statistics(totals, per_kind[kind][1])
    return merged, totals


def _iter_pool(
    annotated: AnnotatedNetwork,
    classes: Sequence[SymmetryClass] | None,
    options: dict,
    jobs: int,
    items: Sequence[_T],
    worker: Callable[[_T], _R],
    sequential_one: Callable[[_T], _R],
    stats: SchedulerStats | None = None,
) -> Iterator[tuple[int, _R]]:
    """Yield ``(index, worker(item))`` in completion order, streamingly.

    The core dispatcher: submits up to ``workers × window`` items with
    ``apply_async`` (the window is adaptive, see :func:`_window_size`) and
    blocks on a completion queue fed by the pool's result-handler callbacks;
    each completion tops the in-flight set back up and is yielded
    immediately.  Closing the generator (or any exception, including a
    worker crash propagating) terminates the pool — unsubmitted items are
    never started and no worker is orphaned.  Falls back to in-process
    execution (same yield protocol, same window *accounting* on ``stats``)
    when ``fork`` or the pool is unavailable.

    Known limitation (shared with the ``pool.map`` predecessor): a worker
    killed *hard* (SIGKILL/OOM) loses its in-flight task — the pool respawns
    the process but no callback ever fires, so the completion wait blocks
    until the consumer interrupts it.  Python exceptions inside a worker are
    not affected: they arrive via ``error_callback`` and propagate.
    """
    global _ACTIVE_NETWORK, _ACTIVE_OPTIONS, _ACTIVE_CLASSES

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = None

    if context is None or jobs <= 1 or len(items) <= 1:
        sequential_processes = max(1, min(jobs, len(items)))
        for index, item in enumerate(items):
            if stats is not None:
                stats.record_dispatch(_window_size(len(items) - index, sequential_processes))
            yield index, sequential_one(item)
        return

    _ACTIVE_NETWORK = annotated
    _ACTIVE_OPTIONS = options
    _ACTIVE_CLASSES = classes
    try:
        processes = min(jobs, len(items))
        try:
            pool = context.Pool(processes=processes)
        except OSError as error:
            # Pool *setup* can fail on exotic platforms (no fork, no
            # semaphores); degrading to sequential checking is safe there.
            # Anything raised by the checks themselves propagates — a silent
            # rerun would mask real worker crashes.
            warnings.warn(
                f"process pool unavailable ({error}); checking sequentially",
                RuntimeWarning,
                stacklevel=3,
            )
            _ACTIVE_NETWORK = None
            _ACTIVE_OPTIONS = None
            _ACTIVE_CLASSES = None
            # Same adaptive window *accounting* as the pool path below, so a
            # degraded run's scheduler statistics stay comparable.
            for index, item in enumerate(items):
                if stats is not None:
                    stats.record_dispatch(_window_size(len(items) - index, processes))
                yield index, sequential_one(item)
            return

        # Completions land here from the pool's result-handler thread; the
        # third element is the worker's exception, if it raised.
        completions: queue.SimpleQueue = queue.SimpleQueue()

        def submit(index: int) -> None:
            pool.apply_async(
                worker,
                (items[index],),
                callback=lambda outcome, index=index: completions.put((index, outcome, None)),
                error_callback=lambda error, index=index: completions.put((index, None, error)),
            )

        next_index = 0
        in_flight = 0

        def top_up() -> None:
            # Keep up to ``processes × window`` items in flight, where the
            # window adapts to the remaining backlog: >1 while many items
            # are pending (cheap items amortise dispatch latency), back to
            # one per worker at the tail — so closing the iterator still
            # stops promptly, with at most the in-flight window to discard.
            nonlocal next_index, in_flight
            while next_index < len(items):
                window = _window_size(len(items) - next_index, processes)
                if in_flight >= processes * window:
                    break
                if stats is not None:
                    stats.record_dispatch(window)
                submit(next_index)
                next_index += 1
                in_flight += 1

        try:
            top_up()
            while in_flight:
                index, outcome, error = completions.get()
                in_flight -= 1
                if error is not None:
                    raise error
                top_up()
                yield index, outcome
        except BaseException:
            # Worker crash, run-level fail-fast, consumer abandonment
            # (GeneratorExit) or an interrupt mid-priming: stop dispatching,
            # kill the in-flight remainder, reap every worker before
            # propagating.
            pool.terminate()
            pool.join()
            raise
        else:
            pool.close()
            pool.join()
    finally:
        _ACTIVE_NETWORK = None
        _ACTIVE_OPTIONS = None
        _ACTIVE_CLASSES = None


def _options(
    delay: int, conditions: Sequence[str], fail_fast: bool, incremental: bool
) -> dict:
    return {
        "delay": delay,
        "conditions": tuple(conditions),
        "fail_fast": fail_fast,
        "incremental": incremental,
    }


def _stream(
    pooled: Iterator[tuple[int, tuple[list[NodeReport], dict[str, int]]]]
) -> Iterator[Batch]:
    """Re-shape the dispatcher's pairs into :data:`Batch` triples.

    Closes the inner generator explicitly on every exit path: pool teardown
    must not depend on refcount finalization of the wrapped generator (the
    documented stop-dispatch guarantee).
    """
    try:
        for index, (reports, delta) in pooled:
            yield index, reports, delta
    finally:
        pooled.close()


def iter_node_batches(
    annotated: AnnotatedNetwork,
    nodes: Sequence[str],
    delay: int,
    jobs: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool = True,
) -> Iterator[Batch]:
    """Stream per-node check batches using up to ``jobs`` forked workers.

    Yields ``(node_index, [report], cache_delta)`` in completion order;
    ``node_index`` is the node's position in ``nodes``, so the caller can
    restore the deterministic selection order after the fact.  Closing the
    iterator stops dispatching queued nodes and terminates the pool.
    """
    options = _options(delay, conditions, fail_fast, incremental)

    def sequential_one(node: str) -> tuple[list[NodeReport], dict[str, int]]:
        return _check_node_with_delta(annotated, node, **options)

    return _stream(
        _iter_pool(annotated, None, options, jobs, tuple(nodes), _check_one, sequential_one)
    )


def iter_class_batches(
    annotated: AnnotatedNetwork,
    classes: Sequence[SymmetryClass],
    delay: int,
    jobs: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool = True,
    scheduler: str = "adaptive",
    stats: SchedulerStats | None = None,
) -> Iterator[Batch]:
    """Stream per-class check batches under the adaptive class scheduler.

    Yields ``(class_index, member_reports, cache_delta)`` in completion
    order; a class split across workers by the work-stealing plan
    (:func:`_class_work_items`) is yielded once, re-merged, when its last
    sub-item completes, so consumers see exactly one batch per class with
    unchanged results either way.  ``scheduler="fixed"`` disables splitting
    and the adaptive window (the ablation baseline).  ``stats`` (a
    :class:`SchedulerStats`) is filled in while the stream drains.  Closing
    the iterator stops dispatching unsubmitted items and terminates the
    pool.
    """
    if scheduler not in SCHEDULER_MODES:
        raise ValueError(f"unknown scheduler {scheduler!r}; choose one of {SCHEDULER_MODES}")
    options = _options(delay, conditions, fail_fast, incremental)
    if stats is None:
        stats = SchedulerStats()
    items = _class_work_items(classes, jobs, conditions, scheduler, stats)

    def sequential_one(item: ClassItem) -> tuple[list[NodeReport], dict[str, int], int]:
        index, kinds = item
        sub_options = dict(options)
        if kinds is not None:
            sub_options["conditions"] = kinds
        reports, delta = _check_class_with_delta(annotated, classes[index], **sub_options)
        return reports, delta, os.getpid()

    pooled = _iter_pool(
        annotated,
        classes,
        options,
        jobs,
        items,
        _check_one_class,
        sequential_one,
        stats=None if scheduler == "fixed" else stats,
    )
    return _stream_class_items(pooled, items, conditions, fail_fast, stats)


def _stream_class_items(
    pooled: Iterator[tuple[int, tuple[list[NodeReport], dict[str, int], int]]],
    items: Sequence[ClassItem],
    conditions: Sequence[str],
    fail_fast: bool,
    stats: SchedulerStats,
) -> Iterator[Batch]:
    """Adapt the dispatcher's class work items into per-class :data:`Batch` triples.

    Whole-class items pass straight through; split sub-items are buffered
    per class and re-merged (:func:`_merge_split_class`) when the last kind
    arrives.  Closes the inner generator on every exit path — an early stop
    discards buffered partial classes, whose nodes then correctly count as
    skipped.
    """
    kinds = tuple(kind for kind in CONDITION_KINDS if kind in set(conditions))
    expected = {index: sum(1 for i, sub in items if i == index and sub is not None)
                for index, sub in items if sub is not None}
    partial: dict[int, dict[str, tuple[list[NodeReport], dict[str, int]]]] = {}
    try:
        for position, (reports, delta, pid) in pooled:
            stats.worker_pids.add(pid)
            class_index, sub = items[position]
            if sub is None:
                yield class_index, reports, delta
                continue
            bucket = partial.setdefault(class_index, {})
            bucket[sub[0]] = (reports, delta)
            if len(bucket) == expected[class_index]:
                merged, totals = _merge_split_class(bucket, kinds, fail_fast)
                del partial[class_index]
                yield class_index, merged, totals
    finally:
        pooled.close()


def _drain(
    batches: Iterator[Batch], incremental: bool
) -> tuple[list[NodeReport], dict[str, int] | None]:
    """Barrier-style convenience: exhaust a batch stream and re-sort.

    Returns the flattened reports in submission order plus the summed cache
    deltas (``None`` with ``incremental=False``).
    """
    indexed: dict[int, list[NodeReport]] = {}
    totals: dict[str, int] = {}
    for index, reports, delta in batches:
        indexed[index] = reports
        totals = add_cache_statistics(totals, delta)
    flattened = [report for index in sorted(indexed) for report in indexed[index]]
    return flattened, (totals if incremental else None)


def check_nodes_in_parallel(
    annotated: AnnotatedNetwork,
    nodes: Sequence[str],
    delay: int,
    jobs: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool = True,
) -> tuple[list[NodeReport], dict[str, int] | None]:
    """Check ``nodes`` using up to ``jobs`` forked worker processes.

    The barrier-style drain of :func:`iter_node_batches`: returns the
    reports in node order and the summed incremental-backend cache deltas of
    the workers (``None`` with ``incremental=False``) — measured identically
    whether the items ran on the pool or on the sequential fallback.
    """
    return _drain(
        iter_node_batches(
            annotated,
            nodes,
            delay=delay,
            jobs=jobs,
            conditions=conditions,
            fail_fast=fail_fast,
            incremental=incremental,
        ),
        incremental,
    )


def check_classes_in_parallel(
    annotated: AnnotatedNetwork,
    classes: Sequence[SymmetryClass],
    delay: int,
    jobs: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool = True,
    scheduler: str = "adaptive",
    stats: SchedulerStats | None = None,
) -> tuple[list[NodeReport], dict[str, int] | None]:
    """Check symmetry ``classes`` on a fork pool under the class scheduler.

    The barrier-style drain of :func:`iter_class_batches`: returns the
    flattened member reports (class order; the caller re-sorts to node
    order) and the summed incremental-backend cache deltas of the workers
    (``None`` with ``incremental=False``).
    """
    return _drain(
        iter_class_batches(
            annotated,
            classes,
            delay=delay,
            jobs=jobs,
            conditions=conditions,
            fail_fast=fail_fast,
            incremental=incremental,
            scheduler=scheduler,
            stats=stats,
        ),
        incremental,
    )
