"""Process-pool execution of per-node checks.

Node checks share no state, so they parallelise trivially.  Annotated
networks hold closures (transfer functions, interfaces) that are not
picklable in general, so instead of shipping the network to worker processes
we rely on ``fork``: the annotated network is stashed in a module-level slot
before the pool is created, every forked worker inherits it, and only the
node name travels over the queue.  The returned :class:`NodeReport` objects
contain plain data and pickle fine.

Each forked worker keeps its own per-process incremental SMT solver
(:func:`repro.smt.process_solver`), so the nodes a worker checks share
encoded structure and learned clauses exactly as in sequential mode.

On platforms without ``fork``, or when the pool itself cannot be set up, the
checker degrades to sequential execution with a :class:`RuntimeWarning` —
the results are identical, only the wall-clock time differs.  Failures
*inside* a worker (a crashing check, a keyboard interrupt) propagate to the
caller; masking them behind a silent sequential rerun would hide real bugs.
"""

from __future__ import annotations

import multiprocessing
import warnings
from typing import Sequence

from repro.core.annotations import AnnotatedNetwork
from repro.core.results import NodeReport

# The network being checked by the current pool; inherited by forked workers.
_ACTIVE_NETWORK: AnnotatedNetwork | None = None
_ACTIVE_OPTIONS: dict | None = None


def _check_one(node: str) -> NodeReport:
    """Worker entry point: check a single node of the inherited network."""
    from repro.core.checker import check_node

    assert _ACTIVE_NETWORK is not None and _ACTIVE_OPTIONS is not None
    return check_node(
        _ACTIVE_NETWORK,
        node,
        delay=_ACTIVE_OPTIONS["delay"],
        conditions=_ACTIVE_OPTIONS["conditions"],
        fail_fast=_ACTIVE_OPTIONS["fail_fast"],
        incremental=_ACTIVE_OPTIONS["incremental"],
    )


def check_nodes_in_parallel(
    annotated: AnnotatedNetwork,
    nodes: Sequence[str],
    delay: int,
    jobs: int,
    conditions: Sequence[str],
    fail_fast: bool,
    incremental: bool = True,
) -> list[NodeReport]:
    """Check ``nodes`` using up to ``jobs`` forked worker processes."""
    global _ACTIVE_NETWORK, _ACTIVE_OPTIONS
    from repro.core.checker import check_node

    def sequential() -> list[NodeReport]:
        return [
            check_node(
                annotated,
                node,
                delay=delay,
                conditions=conditions,
                fail_fast=fail_fast,
                incremental=incremental,
            )
            for node in nodes
        ]

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = None

    if context is None or jobs <= 1 or len(nodes) <= 1:
        return sequential()

    _ACTIVE_NETWORK = annotated
    _ACTIVE_OPTIONS = {
        "delay": delay,
        "conditions": tuple(conditions),
        "fail_fast": fail_fast,
        "incremental": incremental,
    }
    try:
        try:
            pool = context.Pool(processes=min(jobs, len(nodes)))
        except OSError as error:
            # Pool *setup* can fail on exotic platforms (no fork, no
            # semaphores); degrading to sequential checking is safe there.
            # Anything raised by the checks themselves propagates — a silent
            # rerun would mask real worker crashes.
            warnings.warn(
                f"process pool unavailable ({error}); checking sequentially",
                RuntimeWarning,
                stacklevel=2,
            )
            return sequential()
        with pool:
            return pool.map(_check_one, nodes)
    finally:
        _ACTIVE_NETWORK = None
        _ACTIVE_OPTIONS = None
