"""Encoding of the three verification conditions (Figure 12, §4).

For every node ``v`` the modular checker discharges:

* the **initial** condition  — ``I_v ∈ A(v)(0)``;
* the **inductive** condition — for all times ``t`` and all neighbour routes
  drawn from the neighbours' interfaces at ``t``, the route ``v`` computes is
  in ``A(v)(t+1)``; and
* the **safety** condition  — ``A(v)(t) ⊆ P(v)(t)`` for all ``t``.

Each condition is encoded as a pair (assumptions, goal) of symbolic booleans
over a fresh symbolic time variable, fresh per-neighbour routes and the
network's own symbolic variables.  Validity of ``assumptions ⟹ goal`` is then
decided by the SMT backend; an invalid condition yields a concrete
:class:`~repro.core.counterexample.Counterexample`.

The bounded-delay extension of §4 is supported by the ``delay`` parameter of
the inductive condition: neighbour routes may be drawn from any of the last
``delay + 1`` time steps and the computed route must satisfy the interface
``delay + 1`` steps later.

**Deterministic query-scoped names.**  The symbolic time and route variables
of a condition are named deterministically (``vc$time``, ``vc$route.<node>``
— see :data:`VC_PREFIX`) instead of drawing globally fresh names.  Each
condition is discharged as its own validity query, so names only need to be
unique *within* one query — and deterministic names make the shared
structure of different conditions (the per-sender interface blocks, the
network's symbolic constraints, re-checks of the same node) hash-cons to
*identical* terms.  That is what lets the incremental SMT backend
(:mod:`repro.smt.incremental`) bit-blast and CNF-encode every distinct
subterm once per process instead of once per query.

**Class-canonical naming.**  The ``naming`` parameter widens the scheme.
With the default ``naming="sender"`` a neighbour's route is named after the
node that sends it, which shares the sender's interface block across every
receiver.  With ``naming="class"`` routes are instead named by *position*:
the route from the ``i``-th in-neighbour (in the topology's deterministic
predecessor order) is ``vc$route.%i``, and the node's own route in the
safety condition is ``vc$route.%self``.  Positional names erase node
identity from the query, so two nodes whose conditions differ only by a
node renaming — e.g. every edge switch of a non-destination fattree pod —
produce *term-identical* conditions (including the ``updated_route`` term,
which now hash-conses across nodes).  Term identity is what the symmetry
layer (:mod:`repro.core.symmetry`) keys equivalence classes on, and what
lets the incremental backend reuse one SAT scope — encoded clauses and
learned clauses alike — across an entire class: the members' queries are
the same query.  The ``%`` escape character guarantees positional names can
never collide with an escaped sender name (escapes only ever emit ``%25``,
``%23`` or ``%2e``).
"""

from __future__ import annotations

import dataclasses
import sys
import time as _time
from dataclasses import dataclass, field
from typing import Any

from repro import smt
from repro.core.annotations import AnnotatedNetwork
from repro.core.counterexample import Counterexample
from repro.core.results import ConditionResult
from repro.errors import VerificationError
from repro.smt import builder
from repro.smt.terms import (
    OP_AND,
    OP_BVADD,
    OP_BVSUB,
    OP_BVULE,
    OP_BVULT,
    OP_EQ,
    OP_ITE,
    OP_NOT,
    OP_OR,
    Term,
)
from repro.symbolic import SymBV, SymBool, any_of, exact_names

INITIAL = "initial"
INDUCTIVE = "inductive"
SAFETY = "safety"

CONDITION_KINDS = (INITIAL, INDUCTIVE, SAFETY)

#: Route-variable naming schemes (see module docstring): ``sender`` names a
#: neighbour route after its sender, ``class`` names it by predecessor
#: position so isomorphic nodes yield term-identical conditions.
NAMING_SCHEMES = ("sender", "class")

#: Name prefix reserved for the deterministically named per-query variables
#: of the verification conditions.  Network models must not use it for their
#: own symbolic variables; :func:`_network_symbolics` enforces this.
VC_PREFIX = "vc$"


def _escape_node_name(name: str) -> str:
    """Injectively escape a node name for use inside a variable name.

    ``%`` is the escape character (escaped first, so the mapping is
    injective); ``#`` must not survive because the bit-blaster uses it to
    separate a bitvector name from its bit index, and ``.`` must not survive
    because record shapes use it to separate the route name from its field
    path (a node literally named ``y.value`` must not alias field ``value``
    of a node named ``y``).
    """
    return name.replace("%", "%25").replace("#", "%23").replace(".", "%2e")


def _query_time(node: str, width: int) -> SymBV:
    """The symbolic time variable of a condition (same name in every query)."""
    del node  # the name is deliberately node-independent, see module docstring
    with exact_names():
        return SymBV.fresh(width, f"{VC_PREFIX}time")


def _query_route(
    network: Any, owner: str, naming: str = "sender", position: int | None = None
) -> Any:
    """A symbolic route for one query, named per the ``naming`` scheme.

    With ``naming="sender"`` the route is named after the node that
    (conceptually) sends it — not the (sender, receiver) edge — which makes
    the assumption block ``wf(route) ∧ interface(sender)(route, t)`` an
    identical term in the inductive condition of *every* receiver of that
    sender, and in the sender's own safety condition.

    With ``naming="class"`` the route is named by its predecessor
    ``position`` (or ``%self`` for the node's own route), erasing node
    identity so isomorphic nodes produce term-identical queries.
    """
    if naming == "sender":
        suffix = _escape_node_name(owner)
    elif naming == "class":
        suffix = "%self" if position is None else f"%{position}"
    else:
        raise VerificationError(f"unknown naming scheme {naming!r}; choose one of {NAMING_SCHEMES}")
    with exact_names():
        return network.route_shape.fresh(f"{VC_PREFIX}route.{suffix}")


@dataclass
class VerificationCondition:
    """One encoded verification condition, ready to hand to the SMT backend."""

    node: str
    kind: str
    assumptions: SymBool
    goal: SymBool
    #: The symbolic time variable, when the condition quantifies over time.
    time: SymBV | None = None
    #: For counterexample reporting: offset added to the reported time
    #: (the inductive condition fails *at* ``t + 1`` when assuming time ``t``).
    reported_time_offset: int = 0
    #: Fresh neighbour routes assumed from the neighbours' interfaces.
    neighbor_routes: dict[str, Any] = field(default_factory=dict)
    #: The route computed at (or assumed for) the node itself.
    node_route: Any = None
    #: The network's symbolic variables (name -> symbolic value).
    symbolics: dict[str, Any] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Stable, process-independent content hash of this condition.

        Derived from the term structure of the ``(assumptions, goal)`` pair
        (see :mod:`repro.core.fingerprint`) — never from interning counters
        or Python object hashes — so the same condition built in another
        process (any ``PYTHONHASHSEED``) fingerprints identically.  The
        delta re-verification store keys verdicts by this hash; for
        node-identity-erased keys, build the condition with
        ``naming="class"``.
        """
        from repro.core.fingerprint import condition_fingerprint

        return condition_fingerprint(self)

    def check(self, solver: Any | None = None) -> ConditionResult:
        """Decide this condition and package the outcome.

        ``solver`` optionally names a reusable SMT backend (typically the
        per-process :func:`repro.smt.process_solver`); the query then runs in
        a push/pop frame on it, reusing encoded structure and learned clauses
        from earlier conditions.
        """
        started = _time.perf_counter()
        proof = smt.prove(self.goal.term, self.assumptions.term, solver=solver)
        elapsed = _time.perf_counter() - started
        if proof.valid:
            return ConditionResult(self.node, self.kind, True, elapsed)
        model = proof.counterexample
        assert model is not None
        counterexample = Counterexample(
            node=self.node,
            condition=self.kind,
            time=(
                int(self.time.eval(model)) + self.reported_time_offset
                if self.time is not None
                else (0 if self.kind == INITIAL else None)
            ),
            neighbor_routes={
                neighbor: route.eval(model) for neighbor, route in self.neighbor_routes.items()
            },
            route=self.node_route.eval(model) if self.node_route is not None else None,
            symbolics={name: value.eval(model) for name, value in self.symbolics.items()},
        )
        return ConditionResult(self.node, self.kind, False, elapsed, counterexample)


def _network_symbolics(annotated: AnnotatedNetwork) -> tuple[SymBool, dict[str, Any]]:
    """The conjunction of symbolic-variable preconditions and the value map."""
    reserved = [
        symbolic.name
        for symbolic in annotated.network.symbolics
        if symbolic.name.startswith(VC_PREFIX)
    ]
    if reserved:
        raise VerificationError(
            f"symbolic variable names {reserved} use the reserved prefix "
            f"{VC_PREFIX!r}; it would alias the verification conditions' "
            "query variables and corrupt verdicts"
        )
    assumptions = annotated.network.symbolic_constraints()
    values = {symbolic.name: symbolic.value for symbolic in annotated.network.symbolics}
    return assumptions, values


def initial_condition(annotated: AnnotatedNetwork, node: str) -> VerificationCondition:
    """``I_v ∈ A(v)(0)`` (equation 5)."""
    network = annotated.network
    width = annotated.time_width()
    assumptions, symbolics = _network_symbolics(annotated)
    initial_route = network.initial_route(node)
    zero = SymBV.constant(0, width)
    goal = annotated.interface(node)(initial_route, zero)
    return VerificationCondition(
        node=node,
        kind=INITIAL,
        assumptions=assumptions,
        goal=goal,
        node_route=initial_route,
        symbolics=symbolics,
    )


def inductive_condition(
    annotated: AnnotatedNetwork, node: str, delay: int = 0, naming: str = "sender"
) -> VerificationCondition:
    """The inductive condition (equation 6), optionally with bounded delay."""
    if delay < 0:
        raise VerificationError(f"delay must be non-negative, got {delay}")
    network = annotated.network
    width = annotated.time_width(delay)
    assumptions, symbolics = _network_symbolics(annotated)

    time_variable = _query_time(node, width)
    # Keep t small enough that t + delay + 1 cannot wrap around.  Because every
    # annotation is constant beyond its largest witness time, this bound loses
    # no generality (see DESIGN.md §5).
    max_time = (1 << width) - 1
    assumptions = assumptions & (time_variable <= max_time - delay - 1)

    neighbor_routes: dict[str, Any] = {}
    for position, neighbor in enumerate(network.topology.predecessors(node)):
        route = _query_route(network, neighbor, naming=naming, position=position)
        neighbor_routes[neighbor] = route
        assumptions = assumptions & network.route_shape.constraint(route)
        interface = annotated.interface(neighbor)
        # With delay d, the route may have been sent at any of t, t+1, ..., t+d.
        sent_at_some_step = any_of(
            interface(route, time_variable + step) for step in range(delay + 1)
        )
        assumptions = assumptions & sent_at_some_step

    new_route = network.updated_route(node, neighbor_routes)
    goal = annotated.interface(node)(new_route, time_variable + (delay + 1))

    return VerificationCondition(
        node=node,
        kind=INDUCTIVE,
        assumptions=assumptions,
        goal=goal,
        time=time_variable,
        reported_time_offset=delay + 1,
        neighbor_routes=neighbor_routes,
        node_route=new_route,
        symbolics=symbolics,
    )


def safety_condition(
    annotated: AnnotatedNetwork, node: str, naming: str = "sender"
) -> VerificationCondition:
    """``A(v)(t) ⊆ P(v)(t)`` for all times ``t`` (equation 7)."""
    network = annotated.network
    width = annotated.time_width()
    assumptions, symbolics = _network_symbolics(annotated)

    time_variable = _query_time(node, width)
    route = _query_route(network, node, naming=naming)
    assumptions = assumptions & network.route_shape.constraint(route)
    assumptions = assumptions & annotated.interface(node)(route, time_variable)
    goal = annotated.node_property(node)(route, time_variable)

    return VerificationCondition(
        node=node,
        kind=SAFETY,
        assumptions=assumptions,
        goal=goal,
        time=time_variable,
        node_route=route,
        symbolics=symbolics,
    )


def node_conditions(
    annotated: AnnotatedNetwork, node: str, delay: int = 0, naming: str = "sender"
) -> list[VerificationCondition]:
    """All three verification conditions for ``node``."""
    if naming not in NAMING_SCHEMES:
        raise VerificationError(f"unknown naming scheme {naming!r}; choose one of {NAMING_SCHEMES}")
    return [
        initial_condition(annotated, node),
        inductive_condition(annotated, node, delay=delay, naming=naming),
        safety_condition(annotated, node, naming=naming),
    ]


# ---------------------------------------------------------------------------
# Destination-permutation canonicalization (the all-pairs quotient)
# ---------------------------------------------------------------------------
#
# All-pairs benchmarks route to a symbolic destination index ``dest`` that
# enters conditions only through equalities against concrete index constants
# (``dest == k``, one constant per edge node) and a single range constraint
# ``dest < size``.  Class-canonical naming alone therefore cannot merge two
# all-pairs nodes: their conditions are isomorphic only *up to a simultaneous
# permutation of the destination constants*.  The canonicalizer below closes
# that gap: it rewrites every ``dest == k`` atom so the constants become
# *permutation slots* numbered by first canonical occurrence, normalises the
# ``dist``-style ITE ladders whose guards are destination atoms (flattening,
# dropping cases equal to the default — undoing the build-order-dependent
# ``ite(c, x, x)`` folding — and ordering cases by value content, then by
# already-assigned slot), and orders bags of destination atoms under and/or
# by assigned slot.  Isomorphic nodes then rebuild literally identical
# hash-consed terms, so the symmetry layer's "equal keys ⟺ identical query"
# soundness story carries over unchanged — the canonical instance (constants
# ``0..m-1``) is itself a valid query, equivalid with every member's raw
# conditions under that member's slot permutation.
#
# Soundness: for a member whose slot ``i`` abstracts constant ``c_i``, extend
# ``slot_i ↦ c_i`` to a bijection π of ``[0, 2^w)`` that preserves
# ``[0, size)`` (possible because all constants and slots lie below ``size``;
# enforced by the eligibility checks).  Substituting ``dest ↦ π⁻¹(dest)``
# maps the member's conditions exactly onto the canonical ones — ``dest == c``
# becomes ``dest == slot``, and ``dest < size`` is preserved because π
# preserves the range — so validity transfers both ways and a canonical
# counterexample re-concretizes by mapping its destination value through π.
# Any occurrence of ``dest`` outside the two eligible atom shapes makes the
# node *ineligible*: it falls back to its raw class-named conditions (a finer
# partition — never unsound).


class IneligibleDestination(Exception):
    """Internal: ``dest`` occurs outside the eligible atom shapes."""


#: Process-local memo of destination cones: dest ``term_id`` → (``term_id`` →
#: does the cone mention the destination variable).  Terms are interned for
#: the process lifetime, so the key never goes stale.
_DEST_CONES: dict[int, dict[int, bool]] = {}


def destination_variable(annotated: AnnotatedNetwork) -> Term | None:
    """The destination variable's term, when the network declares the symmetry."""
    marker = annotated.destination_symmetry
    if marker is None:
        return None
    for symbolic in annotated.network.symbolics:
        if symbolic.name == marker.variable:
            term = getattr(symbolic.value, "term", None)
            if term is not None and term.is_var():
                return term
    return None


class DestinationCanonicalizer:
    """Rewrites one node's conditions up to destination-index permutation.

    One instance per node: the slot map is shared across the node's three
    conditions (canonicalized in kind order) so the same constant always
    maps to the same slot, and :attr:`witness` records the node's concrete
    constant per slot for counterexample re-concretization.
    """

    def __init__(self, destination: Term, size: int) -> None:
        self._dest = destination
        self._size = size
        self._width = destination.width()
        self._slots: dict[int, int] = {}
        self._memo: dict[int, Term] = {}
        self._cones = _DEST_CONES.setdefault(destination.term_id, {})

    @property
    def witness(self) -> tuple[int, ...]:
        """The node's destination constants in slot order (slot ``i`` ↦ ``witness[i]``)."""
        return tuple(constant for constant, _ in sorted(self._slots.items(), key=lambda kv: kv[1]))

    def rewrite_condition(self, condition: VerificationCondition) -> VerificationCondition:
        """The canonical twin of ``condition`` (assumptions/goal rewritten).

        Evaluation payloads (neighbour routes, the node route, symbolics) are
        kept as the original node's terms: the canonical instance is only ever
        *proved*; a failing canonical query is re-discharged in raw form to
        produce a genuine counterexample (see ``check_class``).
        """
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, 20_000))
        try:
            assumptions = SymBool(self._rewrite(condition.assumptions.term))
            goal = SymBool(self._rewrite(condition.goal.term))
        finally:
            sys.setrecursionlimit(limit)
        return dataclasses.replace(condition, assumptions=assumptions, goal=goal)

    def rewrite_term(self, term: Term) -> Term:
        """Canonicalize one bare term (the fingerprint layer's entry point)."""
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, 20_000))
        try:
            return self._rewrite(term)
        finally:
            sys.setrecursionlimit(limit)

    # -- slot assignment ---------------------------------------------------------

    def _slot(self, constant: int) -> int:
        if constant >= self._size:
            # π could not preserve the [0, size) range constraint.
            raise IneligibleDestination
        return self._slots.setdefault(constant, len(self._slots))

    def _mentions_dest(self, term: Term) -> bool:
        cached = self._cones.get(term.term_id)
        if cached is not None:
            return cached
        # Iterative post-order with an ``expanded`` marker: each node's
        # children are pushed exactly once, so the walk is linear in the
        # *DAG* size.  (Cones are deep and heavily shared — route records
        # duplicate guard structure per field — so re-expanding shared
        # subterms would enumerate paths, which is exponential.)  The memo
        # is shared across nodes of the same network.
        stack = [term]
        expanded: set[int] = set()
        while stack:
            current = stack[-1]
            term_id = current.term_id
            if term_id in self._cones:
                stack.pop()
                continue
            if current is self._dest:
                self._cones[term_id] = True
                stack.pop()
                continue
            if not current.args:
                self._cones[term_id] = False
                stack.pop()
                continue
            if term_id not in expanded:
                expanded.add(term_id)
                stack.extend(arg for arg in current.args if arg.term_id not in self._cones)
            else:
                # Second visit: every child was resolved while this node
                # waited on the stack.
                self._cones[term_id] = any(
                    self._cones[arg.term_id] for arg in current.args
                )
                stack.pop()
        return self._cones[term.term_id]

    def _destination_atom(self, term: Term) -> Term | None:
        """The constant term of a ``dest == k`` atom, else ``None``."""
        if term.op != OP_EQ:
            return None
        left, right = term.args
        if left is self._dest and right.is_bv_const():
            return right
        if right is self._dest and left.is_bv_const():
            return left
        return None

    # -- the rewrite -------------------------------------------------------------

    def _rewrite(self, term: Term) -> Term:
        if not self._mentions_dest(term):
            return term
        cached = self._memo.get(term.term_id)
        if cached is not None:
            return cached
        rewritten = self._rewrite_uncached(term)
        self._memo[term.term_id] = rewritten
        return rewritten

    def _rewrite_uncached(self, term: Term) -> Term:
        constant = self._destination_atom(term)
        if constant is not None:
            return builder.eq(self._dest, builder.bv_const(self._slot(constant.bv_value()), self._width))
        if term is self._dest:
            # A bare occurrence outside the eligible atoms (arithmetic over
            # dest, comparison against a non-constant, ...).
            raise IneligibleDestination
        if term.op in (OP_BVULT, OP_BVULE):
            left, right = term.args
            if left is self._dest:
                if term.op == OP_BVULT and right.is_bv_const() and right.bv_value() == self._size:
                    # The permutation-invariant range constraint dest < size.
                    return term
                raise IneligibleDestination
            # dest only nested deeper (e.g. a dist ladder compared against
            # time): recurse.  A bare dest on the right raises below.
            compare = builder.bv_ult if term.op == OP_BVULT else builder.bv_ule
            return compare(self._rewrite(left), self._rewrite(right))
        if term.op == OP_ITE:
            ladder = self._flatten_ladder(term)
            if ladder is not None:
                return self._rebuild_ladder(*ladder)
            cond, then_branch, else_branch = term.args
            return builder.ite(
                self._rewrite(cond), self._rewrite(then_branch), self._rewrite(else_branch)
            )
        if term.op in (OP_AND, OP_OR):
            return self._rewrite_connective(term)
        if term.op == OP_NOT:
            return builder.not_(self._rewrite(term.args[0]))
        if term.op == OP_EQ:
            left, right = term.args
            return builder.eq(self._rewrite(left), self._rewrite(right))
        if term.op == OP_BVADD:
            left, right = term.args
            return builder.bv_add(self._rewrite(left), self._rewrite(right))
        if term.op == OP_BVSUB:
            left, right = term.args
            return builder.bv_sub(self._rewrite(left), self._rewrite(right))
        # Leaves never mention dest (handled above); any other operator with
        # dest in its cone has no sound rewrite here.
        raise IneligibleDestination

    def _rewrite_connective(self, term: Term) -> Term:
        """and/or: non-atom children in order, then atoms sorted by slot."""
        others: list[Term] = []
        atoms: list[tuple[int, Term]] = []  # (constant value, atom term)
        for child in term.args:
            constant = self._destination_atom(child)
            if constant is not None:
                atoms.append((constant.bv_value(), child))
            else:
                others.append(self._rewrite(child))
        # Already-assigned constants sort by slot; fresh ones keep their
        # original relative order (stable sort) and are assigned in it.
        atoms.sort(key=lambda pair: self._slots.get(pair[0], self._size))
        rebuilt = others + [
            builder.eq(self._dest, builder.bv_const(self._slot(value), self._width))
            for value, _ in atoms
        ]
        combine = builder.and_ if term.op == OP_AND else builder.or_
        return combine(*rebuilt)

    def _flatten_ladder(
        self, term: Term
    ) -> tuple[list[tuple[int, Term]], Term] | None:
        """Flatten a maximal ``ite(dest == k, value, ...)`` chain.

        Returns ``(cases, default)`` — guard constants with destination-free
        values, outermost first, duplicate (dead) guards dropped — or ``None``
        when ``term`` is not a destination-guarded ladder with destination-free
        case values (generic ITE recursion handles it instead).
        """
        cases: list[tuple[int, Term]] = []
        seen: set[int] = set()
        current = term
        while current.op == OP_ITE:
            constant = self._destination_atom(current.args[0])
            if constant is None or self._mentions_dest(current.args[1]):
                break
            value = constant.bv_value()
            if value not in seen:
                seen.add(value)
                cases.append((value, current.args[1]))
            current = current.args[2]
        if not cases:
            return None
        return cases, current

    def _rebuild_ladder(self, cases: list[tuple[int, Term]], default: Term) -> Term:
        rewritten_default = self._rewrite(default)
        # Cases whose value equals the (original) default are dead weight the
        # builder's ite(c, x, x) fold removed for *some* build orders but not
        # others; dropping them restores order-independence.  The guards are
        # mutually exclusive (distinct constants over one variable), so
        # removal and reordering both preserve the function.
        live = [(value, case) for value, case in cases if case is not default]
        from repro.core.fingerprint import fingerprint_term

        def sort_key(pair: tuple[int, Term]) -> tuple:
            value, case = pair
            content = (
                (0, case.width(), case.bv_value())
                if case.is_bv_const()
                else (1, fingerprint_term(case))
            )
            return (content, self._slots.get(value, self._size))

        live.sort(key=sort_key)
        guards = [
            builder.eq(self._dest, builder.bv_const(self._slot(value), self._width))
            for value, _ in live
        ]
        result = rewritten_default
        for guard, (_, case) in zip(reversed(guards), reversed(live)):
            result = builder.ite(guard, case, result)
        return result


def canonical_node_conditions(
    annotated: AnnotatedNetwork, node: str, delay: int = 0
) -> tuple[list[VerificationCondition], tuple[int, ...] | None]:
    """Class-named conditions, destination-canonicalized when declared.

    Returns ``(conditions, witness)``.  When the network declares a
    :class:`~repro.core.annotations.DestinationSymmetry` and the node's
    conditions use the destination only in the eligible atom shapes, the
    conditions come back canonicalized and ``witness`` is the node's
    destination constant per permutation slot.  Otherwise the raw
    ``naming="class"`` conditions are returned with ``witness=None``.
    """
    raw = node_conditions(annotated, node, delay=delay, naming="class")
    destination = destination_variable(annotated)
    if destination is None:
        return raw, None
    canonicalizer = DestinationCanonicalizer(destination, annotated.destination_symmetry.size)
    try:
        canonical = [canonicalizer.rewrite_condition(condition) for condition in raw]
    except IneligibleDestination:
        return raw, None
    return canonical, canonicalizer.witness
