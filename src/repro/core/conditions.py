"""Encoding of the three verification conditions (Figure 12, §4).

For every node ``v`` the modular checker discharges:

* the **initial** condition  — ``I_v ∈ A(v)(0)``;
* the **inductive** condition — for all times ``t`` and all neighbour routes
  drawn from the neighbours' interfaces at ``t``, the route ``v`` computes is
  in ``A(v)(t+1)``; and
* the **safety** condition  — ``A(v)(t) ⊆ P(v)(t)`` for all ``t``.

Each condition is encoded as a pair (assumptions, goal) of symbolic booleans
over a fresh symbolic time variable, fresh per-neighbour routes and the
network's own symbolic variables.  Validity of ``assumptions ⟹ goal`` is then
decided by the SMT backend; an invalid condition yields a concrete
:class:`~repro.core.counterexample.Counterexample`.

The bounded-delay extension of §4 is supported by the ``delay`` parameter of
the inductive condition: neighbour routes may be drawn from any of the last
``delay + 1`` time steps and the computed route must satisfy the interface
``delay + 1`` steps later.

**Deterministic query-scoped names.**  The symbolic time and route variables
of a condition are named deterministically (``vc$time``, ``vc$route.<node>``
— see :data:`VC_PREFIX`) instead of drawing globally fresh names.  Each
condition is discharged as its own validity query, so names only need to be
unique *within* one query — and deterministic names make the shared
structure of different conditions (the per-sender interface blocks, the
network's symbolic constraints, re-checks of the same node) hash-cons to
*identical* terms.  That is what lets the incremental SMT backend
(:mod:`repro.smt.incremental`) bit-blast and CNF-encode every distinct
subterm once per process instead of once per query.

**Class-canonical naming.**  The ``naming`` parameter widens the scheme.
With the default ``naming="sender"`` a neighbour's route is named after the
node that sends it, which shares the sender's interface block across every
receiver.  With ``naming="class"`` routes are instead named by *position*:
the route from the ``i``-th in-neighbour (in the topology's deterministic
predecessor order) is ``vc$route.%i``, and the node's own route in the
safety condition is ``vc$route.%self``.  Positional names erase node
identity from the query, so two nodes whose conditions differ only by a
node renaming — e.g. every edge switch of a non-destination fattree pod —
produce *term-identical* conditions (including the ``updated_route`` term,
which now hash-conses across nodes).  Term identity is what the symmetry
layer (:mod:`repro.core.symmetry`) keys equivalence classes on, and what
lets the incremental backend reuse one SAT scope — encoded clauses and
learned clauses alike — across an entire class: the members' queries are
the same query.  The ``%`` escape character guarantees positional names can
never collide with an escaped sender name (escapes only ever emit ``%25``,
``%23`` or ``%2e``).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any

from repro import smt
from repro.core.annotations import AnnotatedNetwork
from repro.core.counterexample import Counterexample
from repro.core.results import ConditionResult
from repro.errors import VerificationError
from repro.symbolic import SymBV, SymBool, any_of, exact_names

INITIAL = "initial"
INDUCTIVE = "inductive"
SAFETY = "safety"

CONDITION_KINDS = (INITIAL, INDUCTIVE, SAFETY)

#: Route-variable naming schemes (see module docstring): ``sender`` names a
#: neighbour route after its sender, ``class`` names it by predecessor
#: position so isomorphic nodes yield term-identical conditions.
NAMING_SCHEMES = ("sender", "class")

#: Name prefix reserved for the deterministically named per-query variables
#: of the verification conditions.  Network models must not use it for their
#: own symbolic variables; :func:`_network_symbolics` enforces this.
VC_PREFIX = "vc$"


def _escape_node_name(name: str) -> str:
    """Injectively escape a node name for use inside a variable name.

    ``%`` is the escape character (escaped first, so the mapping is
    injective); ``#`` must not survive because the bit-blaster uses it to
    separate a bitvector name from its bit index, and ``.`` must not survive
    because record shapes use it to separate the route name from its field
    path (a node literally named ``y.value`` must not alias field ``value``
    of a node named ``y``).
    """
    return name.replace("%", "%25").replace("#", "%23").replace(".", "%2e")


def _query_time(node: str, width: int) -> SymBV:
    """The symbolic time variable of a condition (same name in every query)."""
    del node  # the name is deliberately node-independent, see module docstring
    with exact_names():
        return SymBV.fresh(width, f"{VC_PREFIX}time")


def _query_route(
    network: Any, owner: str, naming: str = "sender", position: int | None = None
) -> Any:
    """A symbolic route for one query, named per the ``naming`` scheme.

    With ``naming="sender"`` the route is named after the node that
    (conceptually) sends it — not the (sender, receiver) edge — which makes
    the assumption block ``wf(route) ∧ interface(sender)(route, t)`` an
    identical term in the inductive condition of *every* receiver of that
    sender, and in the sender's own safety condition.

    With ``naming="class"`` the route is named by its predecessor
    ``position`` (or ``%self`` for the node's own route), erasing node
    identity so isomorphic nodes produce term-identical queries.
    """
    if naming == "sender":
        suffix = _escape_node_name(owner)
    elif naming == "class":
        suffix = "%self" if position is None else f"%{position}"
    else:
        raise VerificationError(f"unknown naming scheme {naming!r}; choose one of {NAMING_SCHEMES}")
    with exact_names():
        return network.route_shape.fresh(f"{VC_PREFIX}route.{suffix}")


@dataclass
class VerificationCondition:
    """One encoded verification condition, ready to hand to the SMT backend."""

    node: str
    kind: str
    assumptions: SymBool
    goal: SymBool
    #: The symbolic time variable, when the condition quantifies over time.
    time: SymBV | None = None
    #: For counterexample reporting: offset added to the reported time
    #: (the inductive condition fails *at* ``t + 1`` when assuming time ``t``).
    reported_time_offset: int = 0
    #: Fresh neighbour routes assumed from the neighbours' interfaces.
    neighbor_routes: dict[str, Any] = field(default_factory=dict)
    #: The route computed at (or assumed for) the node itself.
    node_route: Any = None
    #: The network's symbolic variables (name -> symbolic value).
    symbolics: dict[str, Any] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Stable, process-independent content hash of this condition.

        Derived from the term structure of the ``(assumptions, goal)`` pair
        (see :mod:`repro.core.fingerprint`) — never from interning counters
        or Python object hashes — so the same condition built in another
        process (any ``PYTHONHASHSEED``) fingerprints identically.  The
        delta re-verification store keys verdicts by this hash; for
        node-identity-erased keys, build the condition with
        ``naming="class"``.
        """
        from repro.core.fingerprint import condition_fingerprint

        return condition_fingerprint(self)

    def check(self, solver: Any | None = None) -> ConditionResult:
        """Decide this condition and package the outcome.

        ``solver`` optionally names a reusable SMT backend (typically the
        per-process :func:`repro.smt.process_solver`); the query then runs in
        a push/pop frame on it, reusing encoded structure and learned clauses
        from earlier conditions.
        """
        started = _time.perf_counter()
        proof = smt.prove(self.goal.term, self.assumptions.term, solver=solver)
        elapsed = _time.perf_counter() - started
        if proof.valid:
            return ConditionResult(self.node, self.kind, True, elapsed)
        model = proof.counterexample
        assert model is not None
        counterexample = Counterexample(
            node=self.node,
            condition=self.kind,
            time=(
                int(self.time.eval(model)) + self.reported_time_offset
                if self.time is not None
                else (0 if self.kind == INITIAL else None)
            ),
            neighbor_routes={
                neighbor: route.eval(model) for neighbor, route in self.neighbor_routes.items()
            },
            route=self.node_route.eval(model) if self.node_route is not None else None,
            symbolics={name: value.eval(model) for name, value in self.symbolics.items()},
        )
        return ConditionResult(self.node, self.kind, False, elapsed, counterexample)


def _network_symbolics(annotated: AnnotatedNetwork) -> tuple[SymBool, dict[str, Any]]:
    """The conjunction of symbolic-variable preconditions and the value map."""
    reserved = [
        symbolic.name
        for symbolic in annotated.network.symbolics
        if symbolic.name.startswith(VC_PREFIX)
    ]
    if reserved:
        raise VerificationError(
            f"symbolic variable names {reserved} use the reserved prefix "
            f"{VC_PREFIX!r}; it would alias the verification conditions' "
            "query variables and corrupt verdicts"
        )
    assumptions = annotated.network.symbolic_constraints()
    values = {symbolic.name: symbolic.value for symbolic in annotated.network.symbolics}
    return assumptions, values


def initial_condition(annotated: AnnotatedNetwork, node: str) -> VerificationCondition:
    """``I_v ∈ A(v)(0)`` (equation 5)."""
    network = annotated.network
    width = annotated.time_width()
    assumptions, symbolics = _network_symbolics(annotated)
    initial_route = network.initial_route(node)
    zero = SymBV.constant(0, width)
    goal = annotated.interface(node)(initial_route, zero)
    return VerificationCondition(
        node=node,
        kind=INITIAL,
        assumptions=assumptions,
        goal=goal,
        node_route=initial_route,
        symbolics=symbolics,
    )


def inductive_condition(
    annotated: AnnotatedNetwork, node: str, delay: int = 0, naming: str = "sender"
) -> VerificationCondition:
    """The inductive condition (equation 6), optionally with bounded delay."""
    if delay < 0:
        raise VerificationError(f"delay must be non-negative, got {delay}")
    network = annotated.network
    width = annotated.time_width(delay)
    assumptions, symbolics = _network_symbolics(annotated)

    time_variable = _query_time(node, width)
    # Keep t small enough that t + delay + 1 cannot wrap around.  Because every
    # annotation is constant beyond its largest witness time, this bound loses
    # no generality (see DESIGN.md §5).
    max_time = (1 << width) - 1
    assumptions = assumptions & (time_variable <= max_time - delay - 1)

    neighbor_routes: dict[str, Any] = {}
    for position, neighbor in enumerate(network.topology.predecessors(node)):
        route = _query_route(network, neighbor, naming=naming, position=position)
        neighbor_routes[neighbor] = route
        assumptions = assumptions & network.route_shape.constraint(route)
        interface = annotated.interface(neighbor)
        # With delay d, the route may have been sent at any of t, t+1, ..., t+d.
        sent_at_some_step = any_of(
            interface(route, time_variable + step) for step in range(delay + 1)
        )
        assumptions = assumptions & sent_at_some_step

    new_route = network.updated_route(node, neighbor_routes)
    goal = annotated.interface(node)(new_route, time_variable + (delay + 1))

    return VerificationCondition(
        node=node,
        kind=INDUCTIVE,
        assumptions=assumptions,
        goal=goal,
        time=time_variable,
        reported_time_offset=delay + 1,
        neighbor_routes=neighbor_routes,
        node_route=new_route,
        symbolics=symbolics,
    )


def safety_condition(
    annotated: AnnotatedNetwork, node: str, naming: str = "sender"
) -> VerificationCondition:
    """``A(v)(t) ⊆ P(v)(t)`` for all times ``t`` (equation 7)."""
    network = annotated.network
    width = annotated.time_width()
    assumptions, symbolics = _network_symbolics(annotated)

    time_variable = _query_time(node, width)
    route = _query_route(network, node, naming=naming)
    assumptions = assumptions & network.route_shape.constraint(route)
    assumptions = assumptions & annotated.interface(node)(route, time_variable)
    goal = annotated.node_property(node)(route, time_variable)

    return VerificationCondition(
        node=node,
        kind=SAFETY,
        assumptions=assumptions,
        goal=goal,
        time=time_variable,
        node_route=route,
        symbolics=symbolics,
    )


def node_conditions(
    annotated: AnnotatedNetwork, node: str, delay: int = 0, naming: str = "sender"
) -> list[VerificationCondition]:
    """All three verification conditions for ``node``."""
    if naming not in NAMING_SCHEMES:
        raise VerificationError(f"unknown naming scheme {naming!r}; choose one of {NAMING_SCHEMES}")
    return [
        initial_condition(annotated, node),
        inductive_condition(annotated, node, delay=delay, naming=naming),
        safety_condition(annotated, node, naming=naming),
    ]
