"""Symmetry reduction: verify one node per equivalence class, reuse the rest.

On a ``k``-fattree the modular checker discharges ``1.25·k²`` structurally
identical batches of verification conditions: every edge switch of a
non-destination pod (and every aggregation switch, and every core switch)
proves the *same* theorem up to node renaming.  This module computes node
equivalence classes so :func:`repro.core.checker.check_modular` can discharge
the conditions of one *representative* per class and propagate the verdict to
the remaining members — cutting the dominant cost from O(k²) condition
batches to O(1) per tier.

Two partitioning strategies, in order of preference:

* **Metadata hints.**  An :class:`~repro.core.annotations.AnnotatedNetwork`
  may carry a ``symmetry_key`` function (attached by benchmark builders that
  know their topology — e.g. fattree role/pod/index metadata via
  :func:`repro.networks.fattree.fattree_symmetry_key`).  Nodes with equal
  keys form a class without building a single condition; a ``None`` key
  makes the node a singleton.  Hints are trusted for speed — guard them with
  ``symmetry="spot-check"``, which re-verifies a deterministically chosen
  extra member per class, or rely on the in-degree sanity check below.

* **Canonical-form hashing.**  For arbitrary topologies (WAN, ghost-state
  networks) each node's conditions are built with *class-canonical* naming
  (``naming="class"`` in :mod:`repro.core.conditions`): query routes are
  named by predecessor position, erasing node identity.  Because terms are
  hash-consed process-wide, two nodes belong to the same class **iff** their
  canonicalized ``(assumptions, goal)`` pairs are the identical ``Term``
  objects — so verdict propagation is sound by construction (the members
  discharge literally the same query).  Networks with no symmetry cleanly
  degrade to singleton classes, i.e. per-node checking.

* **Destination quotient.**  All-pairs networks additionally declare a
  :class:`~repro.core.annotations.DestinationSymmetry` marker; class-named
  conditions are then canonicalized *up to simultaneous destination-index
  permutation* (:func:`repro.core.conditions.canonical_node_conditions`)
  before hashing, so two edge nodes that differ only in *which* destination
  constants their conditions mention share one class.  Each class records a
  :class:`DestinationQuotient` with the per-member slot witnesses; verdicts
  still propagate as term-identity of the canonical forms, and
  counterexamples re-concretize the destination through the slot
  permutation (:func:`destination_permutation`).

Soundness.  Under canonical hashing, equal keys mean equal terms, so the
representative's verdict *is* every member's verdict.  Under the destination
quotient, equal keys mean the members' raw conditions are each equivalid
with the *same* canonical instance (they are its images under bijections of
the destination index that preserve the range constraint), hence equivalid
with each other.  Under metadata hints, soundness rests on the hint being a
refinement of true condition isomorphism; ``partition_nodes`` cross-checks
in-degrees (a cheap necessary condition) and ``spot-check`` mode samples the
rest.  Counterexamples found at a representative are translated to each
member by the positional neighbour correspondence
(``member.predecessors[i] ↔ representative.predecessors[i]``), composed —
for destination-quotient classes — with the member's destination
re-concretization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.core.annotations import AnnotatedNetwork
from repro.core.conditions import (
    CONDITION_KINDS,
    VerificationCondition,
    canonical_node_conditions,
    node_conditions,
)
from repro.core.counterexample import Counterexample, reindex_destination
from repro.errors import VerificationError

#: The symmetry modes accepted by ``check_modular``.
SYMMETRY_MODES = ("off", "classes", "spot-check")


@dataclass(frozen=True)
class DestinationQuotient:
    """How a destination-quotient class maps canonical slots back to members.

    ``witnesses[node][i]`` is the concrete destination constant that
    canonical permutation slot ``i`` abstracts in ``node``'s raw conditions.
    ``variable`` names the symbolic destination variable and ``size`` the
    number of valid indices (the permutations act on ``0..size-1``).
    """

    variable: str
    size: int
    witnesses: dict[str, tuple[int, ...]]

    def permutation(self, representative: str, member: str) -> dict[int, int]:
        """The index map re-concretizing the representative's destination for ``member``."""
        return destination_permutation(
            self.witnesses[representative], self.witnesses[member], self.size
        )


def destination_permutation(
    source_witness: Sequence[int], target_witness: Sequence[int], size: int
) -> dict[int, int]:
    """The total map on ``[0, size)`` sending source constants to target constants.

    Slot ``i``'s source constant maps to slot ``i``'s target constant; the
    remaining indices map across in ascending order (any range-preserving
    extension works — the unmatched indices never appear in either node's
    conditions — but a canonical choice keeps translated counterexamples
    deterministic).  This is π_target ∘ π_source⁻¹ restricted to the range.
    """
    if len(source_witness) != len(target_witness):
        raise VerificationError(
            f"destination witnesses disagree in length ({len(source_witness)} vs "
            f"{len(target_witness)}); the symmetry class is invalid"
        )
    mapping = dict(zip(source_witness, target_witness))
    rest_source = sorted(set(range(size)) - set(source_witness))
    rest_target = sorted(set(range(size)) - set(target_witness))
    mapping.update(zip(rest_source, rest_target))
    return mapping


@dataclass
class SymmetryClass:
    """One equivalence class of nodes with isomorphic verification conditions.

    ``members`` is ordered deterministically (the order the nodes were given
    to :func:`partition_nodes`); the first member is the representative whose
    conditions are actually discharged.  ``conditions`` caches the
    representative's canonically-named conditions when the generic hashing
    path already built them (``None`` under metadata hints, where conditions
    are built lazily at check time).  ``spot_member`` names the extra member
    re-verified in ``spot-check`` mode (chosen up front by the checker so the
    selection is reproducible and independent of parallel scheduling).
    """

    key: Hashable
    members: tuple[str, ...]
    conditions: tuple[VerificationCondition, ...] | None = None
    #: The ``delay`` the cached conditions were built with; the checker
    #: rebuilds them when asked to check under a different delay.
    conditions_delay: int = 0
    spot_member: str | None = field(default=None, compare=False)
    #: Set when the class was formed up to destination-index permutation:
    #: the cached ``conditions`` are the *canonical* instance and verdicts
    #: re-concretize through the quotient's per-member witnesses.
    destination: DestinationQuotient | None = None

    @property
    def representative(self) -> str:
        return self.members[0]

    def __len__(self) -> int:
        return len(self.members)


def partition_nodes(
    annotated: AnnotatedNetwork,
    nodes: Sequence[str],
    delay: int = 0,
    conditions: Sequence[str] = CONDITION_KINDS,
) -> list[SymmetryClass]:
    """Partition ``nodes`` into symmetry classes (deterministic order).

    Uses the destination-permutation quotient when the network declares a
    :class:`~repro.core.annotations.DestinationSymmetry`, else the annotated
    network's ``symmetry_key`` hint when present, otherwise the generic
    canonical-form hash.  Classes are returned in first-member order;
    members keep the order of ``nodes``.
    """
    if annotated.destination_symmetry is not None:
        return _partition_by_destination_quotient(
            annotated, nodes, delay=delay, conditions=conditions
        )
    if annotated.symmetry_key is not None:
        return _partition_by_hint(annotated, nodes)
    return _partition_by_canonical_hash(annotated, nodes, delay=delay, conditions=conditions)


def _partition_by_hint(annotated: AnnotatedNetwork, nodes: Sequence[str]) -> list[SymmetryClass]:
    key_of = annotated.symmetry_key
    assert key_of is not None
    groups: dict[Hashable, list[str]] = {}
    for node in nodes:
        key = key_of(node)
        if key is None:
            # Unhinted nodes are singletons; the wrapper keeps the key unique
            # and distinguishable from any real hint value.
            key = ("singleton", node)
        groups.setdefault(key, []).append(node)
    classes = [SymmetryClass(key=key, members=tuple(members)) for key, members in groups.items()]
    _check_in_degrees(annotated, classes)
    return classes


def _check_in_degrees(annotated: AnnotatedNetwork, classes: list[SymmetryClass]) -> None:
    """Reject hint partitions that are structurally impossible.

    Equal in-degree is a cheap *necessary* condition for two nodes'
    conditions to be isomorphic (the inductive condition draws one route per
    in-neighbour); a violation means the hint function is wrong and silent
    verdict propagation would be unsound.
    """
    topology = annotated.network.topology
    for cls in classes:
        degrees = {topology.in_degree(member) for member in cls.members}
        if len(degrees) > 1:
            raise VerificationError(
                f"symmetry hint groups nodes with different in-degrees "
                f"{sorted(degrees)} into one class {cls.members}; "
                "the hint function is not a valid symmetry"
            )


def _partition_by_canonical_hash(
    annotated: AnnotatedNetwork,
    nodes: Sequence[str],
    delay: int,
    conditions: Sequence[str],
) -> list[SymmetryClass]:
    requested = set(conditions)
    groups: dict[Hashable, list[str]] = {}
    built: dict[Hashable, tuple[VerificationCondition, ...]] = {}
    for node in nodes:
        node_vcs = tuple(node_conditions(annotated, node, delay=delay, naming="class"))
        # Hash-consing makes term_id a process-stable structural fingerprint:
        # equal keys ⟺ the canonicalized conditions are the same Term objects.
        key = tuple(
            (vc.kind, vc.assumptions.term.term_id, vc.goal.term.term_id)
            for vc in node_vcs
            if vc.kind in requested
        )
        if key not in groups:
            built[key] = node_vcs
        groups.setdefault(key, []).append(node)
    return [
        SymmetryClass(
            key=key, members=tuple(members), conditions=built[key], conditions_delay=delay
        )
        for key, members in groups.items()
    ]


def _partition_by_destination_quotient(
    annotated: AnnotatedNetwork,
    nodes: Sequence[str],
    delay: int,
    conditions: Sequence[str],
) -> list[SymmetryClass]:
    """Canonical-form hashing up to destination-index permutation.

    Like :func:`_partition_by_canonical_hash`, but the hashed conditions are
    the destination-canonicalized ones.  An eligibility flag keeps nodes
    whose conditions fell back to their raw form (destination used outside
    the eligible atom shapes) from ever sharing a class with canonicalized
    ones — equal raw terms still merge, which is the plain hash quotient.
    """
    marker = annotated.destination_symmetry
    assert marker is not None
    requested = set(conditions)
    groups: dict[Hashable, list[str]] = {}
    built: dict[Hashable, tuple[VerificationCondition, ...]] = {}
    witnesses: dict[Hashable, dict[str, tuple[int, ...]]] = {}
    for node in nodes:
        node_vcs, witness = canonical_node_conditions(annotated, node, delay=delay)
        key = (witness is not None,) + tuple(
            (vc.kind, vc.assumptions.term.term_id, vc.goal.term.term_id)
            for vc in node_vcs
            if vc.kind in requested
        )
        if key not in groups:
            built[key] = tuple(node_vcs)
        groups.setdefault(key, []).append(node)
        if witness is not None:
            witnesses.setdefault(key, {})[node] = witness
    return [
        SymmetryClass(
            key=key,
            members=tuple(members),
            conditions=built[key],
            conditions_delay=delay,
            destination=(
                DestinationQuotient(
                    variable=marker.variable, size=marker.size, witnesses=witnesses[key]
                )
                if key in witnesses
                else None
            ),
        )
        for key, members in groups.items()
    ]


def translate_counterexample(
    example: Counterexample,
    member: str,
    representative_predecessors: Sequence[str],
    member_predecessors: Sequence[str],
    destination: tuple[str, dict[int, int]] | None = None,
) -> Counterexample:
    """Rename a representative's counterexample for a class member.

    The symmetry is the positional correspondence between predecessor lists,
    so the route sent by the representative's ``i``-th neighbour becomes the
    route sent by the member's ``i``-th neighbour; times, the node's own
    route and the network's symbolic values carry over unchanged.  For
    destination-quotient classes, ``destination`` supplies the variable name
    and index map (:meth:`DestinationQuotient.permutation`) re-concretizing
    the destination value for the member.
    """
    if len(representative_predecessors) != len(member_predecessors):
        raise VerificationError(
            f"cannot translate counterexample from a node with "
            f"{len(representative_predecessors)} predecessors to {member!r} with "
            f"{len(member_predecessors)}; the symmetry class is invalid"
        )
    rename = dict(zip(representative_predecessors, member_predecessors))
    translated = Counterexample(
        node=member,
        condition=example.condition,
        time=example.time,
        neighbor_routes={
            rename.get(neighbor, neighbor): route
            for neighbor, route in example.neighbor_routes.items()
        },
        route=example.route,
        symbolics=example.symbolics,
    )
    if destination is not None:
        variable, mapping = destination
        translated = reindex_destination(translated, variable, mapping)
    return translated
