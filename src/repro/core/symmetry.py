"""Symmetry reduction: verify one node per equivalence class, reuse the rest.

On a ``k``-fattree the modular checker discharges ``1.25·k²`` structurally
identical batches of verification conditions: every edge switch of a
non-destination pod (and every aggregation switch, and every core switch)
proves the *same* theorem up to node renaming.  This module computes node
equivalence classes so :func:`repro.core.checker.check_modular` can discharge
the conditions of one *representative* per class and propagate the verdict to
the remaining members — cutting the dominant cost from O(k²) condition
batches to O(1) per tier.

Two partitioning strategies, in order of preference:

* **Metadata hints.**  An :class:`~repro.core.annotations.AnnotatedNetwork`
  may carry a ``symmetry_key`` function (attached by benchmark builders that
  know their topology — e.g. fattree role/pod/index metadata via
  :func:`repro.networks.fattree.fattree_symmetry_key`).  Nodes with equal
  keys form a class without building a single condition; a ``None`` key
  makes the node a singleton.  Hints are trusted for speed — guard them with
  ``symmetry="spot-check"``, which re-verifies a deterministically chosen
  extra member per class, or rely on the in-degree sanity check below.

* **Canonical-form hashing.**  For arbitrary topologies (WAN, ghost-state
  networks) each node's conditions are built with *class-canonical* naming
  (``naming="class"`` in :mod:`repro.core.conditions`): query routes are
  named by predecessor position, erasing node identity.  Because terms are
  hash-consed process-wide, two nodes belong to the same class **iff** their
  canonicalized ``(assumptions, goal)`` pairs are the identical ``Term``
  objects — so verdict propagation is sound by construction (the members
  discharge literally the same query).  Networks with no symmetry cleanly
  degrade to singleton classes, i.e. per-node checking.

Soundness.  Under canonical hashing, equal keys mean equal terms, so the
representative's verdict *is* every member's verdict.  Under metadata hints,
soundness rests on the hint being a refinement of true condition isomorphism;
``partition_nodes`` cross-checks in-degrees (a cheap necessary condition) and
``spot-check`` mode samples the rest.  Counterexamples found at a
representative are translated to each member by the positional neighbour
correspondence (``member.predecessors[i] ↔ representative.predecessors[i]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.core.annotations import AnnotatedNetwork
from repro.core.conditions import CONDITION_KINDS, VerificationCondition, node_conditions
from repro.core.counterexample import Counterexample
from repro.errors import VerificationError

#: The symmetry modes accepted by ``check_modular``.
SYMMETRY_MODES = ("off", "classes", "spot-check")


@dataclass
class SymmetryClass:
    """One equivalence class of nodes with isomorphic verification conditions.

    ``members`` is ordered deterministically (the order the nodes were given
    to :func:`partition_nodes`); the first member is the representative whose
    conditions are actually discharged.  ``conditions`` caches the
    representative's canonically-named conditions when the generic hashing
    path already built them (``None`` under metadata hints, where conditions
    are built lazily at check time).  ``spot_member`` names the extra member
    re-verified in ``spot-check`` mode (chosen up front by the checker so the
    selection is reproducible and independent of parallel scheduling).
    """

    key: Hashable
    members: tuple[str, ...]
    conditions: tuple[VerificationCondition, ...] | None = None
    #: The ``delay`` the cached conditions were built with; the checker
    #: rebuilds them when asked to check under a different delay.
    conditions_delay: int = 0
    spot_member: str | None = field(default=None, compare=False)

    @property
    def representative(self) -> str:
        return self.members[0]

    def __len__(self) -> int:
        return len(self.members)


def partition_nodes(
    annotated: AnnotatedNetwork,
    nodes: Sequence[str],
    delay: int = 0,
    conditions: Sequence[str] = CONDITION_KINDS,
) -> list[SymmetryClass]:
    """Partition ``nodes`` into symmetry classes (deterministic order).

    Uses the annotated network's ``symmetry_key`` hint when present,
    otherwise the generic canonical-form hash.  Classes are returned in
    first-member order; members keep the order of ``nodes``.
    """
    if annotated.symmetry_key is not None:
        return _partition_by_hint(annotated, nodes)
    return _partition_by_canonical_hash(annotated, nodes, delay=delay, conditions=conditions)


def _partition_by_hint(annotated: AnnotatedNetwork, nodes: Sequence[str]) -> list[SymmetryClass]:
    key_of = annotated.symmetry_key
    assert key_of is not None
    groups: dict[Hashable, list[str]] = {}
    for node in nodes:
        key = key_of(node)
        if key is None:
            # Unhinted nodes are singletons; the wrapper keeps the key unique
            # and distinguishable from any real hint value.
            key = ("singleton", node)
        groups.setdefault(key, []).append(node)
    classes = [SymmetryClass(key=key, members=tuple(members)) for key, members in groups.items()]
    _check_in_degrees(annotated, classes)
    return classes


def _check_in_degrees(annotated: AnnotatedNetwork, classes: list[SymmetryClass]) -> None:
    """Reject hint partitions that are structurally impossible.

    Equal in-degree is a cheap *necessary* condition for two nodes'
    conditions to be isomorphic (the inductive condition draws one route per
    in-neighbour); a violation means the hint function is wrong and silent
    verdict propagation would be unsound.
    """
    topology = annotated.network.topology
    for cls in classes:
        degrees = {topology.in_degree(member) for member in cls.members}
        if len(degrees) > 1:
            raise VerificationError(
                f"symmetry hint groups nodes with different in-degrees "
                f"{sorted(degrees)} into one class {cls.members}; "
                "the hint function is not a valid symmetry"
            )


def _partition_by_canonical_hash(
    annotated: AnnotatedNetwork,
    nodes: Sequence[str],
    delay: int,
    conditions: Sequence[str],
) -> list[SymmetryClass]:
    requested = set(conditions)
    groups: dict[Hashable, list[str]] = {}
    built: dict[Hashable, tuple[VerificationCondition, ...]] = {}
    for node in nodes:
        node_vcs = tuple(node_conditions(annotated, node, delay=delay, naming="class"))
        # Hash-consing makes term_id a process-stable structural fingerprint:
        # equal keys ⟺ the canonicalized conditions are the same Term objects.
        key = tuple(
            (vc.kind, vc.assumptions.term.term_id, vc.goal.term.term_id)
            for vc in node_vcs
            if vc.kind in requested
        )
        if key not in groups:
            built[key] = node_vcs
        groups.setdefault(key, []).append(node)
    return [
        SymmetryClass(
            key=key, members=tuple(members), conditions=built[key], conditions_delay=delay
        )
        for key, members in groups.items()
    ]


def translate_counterexample(
    example: Counterexample,
    member: str,
    representative_predecessors: Sequence[str],
    member_predecessors: Sequence[str],
) -> Counterexample:
    """Rename a representative's counterexample for a class member.

    The symmetry is the positional correspondence between predecessor lists,
    so the route sent by the representative's ``i``-th neighbour becomes the
    route sent by the member's ``i``-th neighbour; times, the node's own
    route and the network's symbolic values carry over unchanged.
    """
    if len(representative_predecessors) != len(member_predecessors):
        raise VerificationError(
            f"cannot translate counterexample from a node with "
            f"{len(representative_predecessors)} predecessors to {member!r} with "
            f"{len(member_predecessors)}; the symmetry class is invalid"
        )
    rename = dict(zip(representative_predecessors, member_predecessors))
    return Counterexample(
        node=member,
        condition=example.condition,
        time=example.time,
        neighbor_routes={
            rename.get(neighbor, neighbor): route
            for neighbor, route in example.neighbor_routes.items()
        },
        route=example.route,
        symbolics=example.symbolics,
    )
