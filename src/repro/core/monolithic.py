"""A Minesweeper-style monolithic stable-state verifier (the paper's ``Ms``).

This is the baseline Timepiece is compared against in Figures 1 and 14.  The
whole network is encoded as a single SMT formula over one symbolic route per
node, constrained to be a *stable state*: every node's route equals the merge
of its initial route with its neighbours' transferred routes.  The property is
the temporal property with its temporal structure erased — each node's
predicate is evaluated at (or beyond) its largest witness time, which is the
translation the paper uses when generating ``Ms`` benchmarks from Timepiece
benchmarks.

Because the encoding grows with the size of the whole network (and the SAT
backend here is pure Python), a wall-clock ``timeout`` can be supplied; a
timed-out run is reported as such, mirroring the 2-hour timeouts in the
paper's evaluation.
"""

from __future__ import annotations

import time as _time
import warnings
from typing import Any

from repro import smt
from repro.core.annotations import AnnotatedNetwork
from repro.core.results import MonolithicReport
from repro.symbolic import SymBV, SymBool, values_equal


def stable_state_constraints(
    annotated: AnnotatedNetwork,
) -> tuple[SymBool, dict[str, Any]]:
    """The stable-state equations ``σ(v) = I_v ⊕ ⨁ f_uv(σ(u))`` for all ``v``.

    Returns the conjunction of constraints together with the per-node symbolic
    route variables.
    """
    network = annotated.network
    routes: dict[str, Any] = {
        node: network.route_shape.fresh(f"stable.{node}") for node in network.topology.nodes
    }
    constraints = network.symbolic_constraints()
    for node in network.topology.nodes:
        constraints = constraints & network.route_shape.constraint(routes[node])
    for node in network.topology.nodes:
        neighbor_routes = {
            neighbor: routes[neighbor] for neighbor in network.topology.predecessors(node)
        }
        computed = network.updated_route(node, neighbor_routes)
        constraints = constraints & values_equal(routes[node], computed)
    return constraints, routes


def erased_property(annotated: AnnotatedNetwork, node: str, route: Any) -> SymBool:
    """The node property with temporal structure erased (evaluated at ``t ≥ τ_max``)."""
    width = annotated.time_width()
    stable_time = SymBV.constant(annotated.max_witness_time(), width)
    return annotated.node_property(node)(route, stable_time)


def check_monolithic(
    annotated: AnnotatedNetwork,
    timeout: float | None = None,
) -> MonolithicReport:
    """Deprecated shim over :class:`repro.verify.Session`.

    Use ``verify(annotated, Monolithic(timeout=...))`` instead; the
    verdicts are identical.
    """
    warnings.warn(
        "check_monolithic is deprecated; use repro.verify.Session with "
        "Monolithic(timeout=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.verify import Monolithic, Session

    if timeout is not None and timeout <= 0:
        # The legacy API accepted an already-exhausted budget and reported a
        # timeout; the strategy's validation rejects non-positive timeouts,
        # so keep the old engine path for this corner.
        return run_monolithic(annotated, timeout=timeout)
    with Session(annotated, Monolithic(timeout=timeout)) as session:
        return session.run()


def run_monolithic(
    annotated: AnnotatedNetwork,
    timeout: float | None = None,
) -> MonolithicReport:
    """Check the erased property over all stable states of the network."""
    started = _time.perf_counter()
    constraints, routes = stable_state_constraints(annotated)

    network_property = SymBool.true()
    for node in annotated.nodes:
        network_property = network_property & erased_property(annotated, node, routes[node])

    proof = smt.prove(network_property.term, constraints.term, timeout=timeout)
    elapsed = _time.perf_counter() - started

    if proof.unknown:
        return MonolithicReport(passed=False, wall_time=elapsed, timed_out=True)
    if proof.valid:
        return MonolithicReport(passed=True, wall_time=elapsed)
    model = proof.counterexample
    assert model is not None
    stable_state = {node: routes[node].eval(model) for node in annotated.nodes}
    symbolics = {
        symbolic.name: symbolic.value.eval(model) for symbolic in annotated.network.symbolics
    }
    return MonolithicReport(
        passed=False,
        wall_time=elapsed,
        counterexample=stable_state,
        symbolics=symbolics,
    )
