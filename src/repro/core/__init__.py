"""Timepiece's core: temporal interfaces and the modular verification engine.

This package is the paper's primary contribution.  Users annotate a
:class:`~repro.routing.algebra.Network` with per-node temporal interfaces and
properties (:func:`annotate`), then verify it through the unified API in
:mod:`repro.verify`::

    from repro.verify import Modular, Monolithic, verify

    report = verify(annotated, Modular(symmetry="classes"))
    baseline = verify(annotated, Monolithic(timeout=60))

This package holds the engine primitives those strategies drive: the three
verification conditions, the per-node/per-class checking functions
(:func:`check_node`, :func:`check_class`), the symmetry partitioner, the
monolithic and strawperson engines and the report types.  The legacy
one-shot entry points (:func:`check_modular`, :func:`check_monolithic`,
:func:`check_strawperson`) remain as deprecated shims with identical
verdicts.
"""

from repro.core.annotations import AnnotatedNetwork, DestinationSymmetry, annotate
from repro.core.checker import assert_verified, check_class, check_modular, check_node
from repro.core.conditions import (
    CONDITION_KINDS,
    INDUCTIVE,
    INITIAL,
    NAMING_SCHEMES,
    SAFETY,
    VerificationCondition,
    canonical_node_conditions,
    inductive_condition,
    initial_condition,
    node_conditions,
    safety_condition,
)
from repro.core.symmetry import (
    SYMMETRY_MODES,
    DestinationQuotient,
    SymmetryClass,
    partition_nodes,
)
from repro.core.counterexample import Counterexample
from repro.core.monolithic import (
    check_monolithic,
    erased_property,
    run_monolithic,
    stable_state_constraints,
)
from repro.core.results import (
    ConditionResult,
    ModularReport,
    MonolithicReport,
    NodeReport,
    condition_verdicts,
    percentile,
)
from repro.core.strawperson import (
    StrawpersonReport,
    check_strawperson,
    erased_interfaces,
    run_strawperson,
)
from repro.core.temporal import (
    StatePredicate,
    TemporalPredicate,
    always_false,
    always_true,
    finally_,
    finally_dynamic,
    globally,
    lift,
    until,
    until_dynamic,
)

__all__ = [
    # temporal operators
    "TemporalPredicate",
    "StatePredicate",
    "globally",
    "until",
    "finally_",
    "until_dynamic",
    "finally_dynamic",
    "always_true",
    "always_false",
    "lift",
    # annotation
    "AnnotatedNetwork",
    "DestinationSymmetry",
    "annotate",
    # conditions
    "VerificationCondition",
    "initial_condition",
    "inductive_condition",
    "safety_condition",
    "node_conditions",
    "canonical_node_conditions",
    "CONDITION_KINDS",
    "NAMING_SCHEMES",
    "INITIAL",
    "INDUCTIVE",
    "SAFETY",
    # symmetry reduction
    "SYMMETRY_MODES",
    "SymmetryClass",
    "DestinationQuotient",
    "partition_nodes",
    # checking
    "check_node",
    "check_class",
    "check_modular",
    "assert_verified",
    "check_monolithic",
    "run_monolithic",
    "stable_state_constraints",
    "erased_property",
    "check_strawperson",
    "run_strawperson",
    "erased_interfaces",
    # results
    "ConditionResult",
    "NodeReport",
    "ModularReport",
    "MonolithicReport",
    "StrawpersonReport",
    "Counterexample",
    "condition_verdicts",
    "percentile",
]
