"""Timepiece's core: temporal interfaces and the modular verification engine.

This package is the paper's primary contribution.  Users annotate a
:class:`~repro.routing.algebra.Network` with per-node temporal interfaces and
properties (:func:`annotate`), then discharge the initial/inductive/safety
verification conditions per node (:func:`check_modular`) or compare against
the Minesweeper-style monolithic baseline (:func:`check_monolithic`).
"""

from repro.core.annotations import AnnotatedNetwork, annotate
from repro.core.checker import assert_verified, check_class, check_modular, check_node
from repro.core.conditions import (
    CONDITION_KINDS,
    INDUCTIVE,
    INITIAL,
    NAMING_SCHEMES,
    SAFETY,
    VerificationCondition,
    inductive_condition,
    initial_condition,
    node_conditions,
    safety_condition,
)
from repro.core.symmetry import SYMMETRY_MODES, SymmetryClass, partition_nodes
from repro.core.counterexample import Counterexample
from repro.core.monolithic import check_monolithic, erased_property, stable_state_constraints
from repro.core.results import (
    ConditionResult,
    ModularReport,
    MonolithicReport,
    NodeReport,
    condition_verdicts,
    percentile,
)
from repro.core.strawperson import StrawpersonReport, check_strawperson
from repro.core.temporal import (
    StatePredicate,
    TemporalPredicate,
    always_false,
    always_true,
    finally_,
    finally_dynamic,
    globally,
    lift,
    until,
    until_dynamic,
)

__all__ = [
    # temporal operators
    "TemporalPredicate",
    "StatePredicate",
    "globally",
    "until",
    "finally_",
    "until_dynamic",
    "finally_dynamic",
    "always_true",
    "always_false",
    "lift",
    # annotation
    "AnnotatedNetwork",
    "annotate",
    # conditions
    "VerificationCondition",
    "initial_condition",
    "inductive_condition",
    "safety_condition",
    "node_conditions",
    "CONDITION_KINDS",
    "NAMING_SCHEMES",
    "INITIAL",
    "INDUCTIVE",
    "SAFETY",
    # symmetry reduction
    "SYMMETRY_MODES",
    "SymmetryClass",
    "partition_nodes",
    # checking
    "check_node",
    "check_class",
    "check_modular",
    "assert_verified",
    "check_monolithic",
    "stable_state_constraints",
    "erased_property",
    "check_strawperson",
    # results
    "ConditionResult",
    "NodeReport",
    "ModularReport",
    "MonolithicReport",
    "StrawpersonReport",
    "Counterexample",
    "condition_verdicts",
    "percentile",
]
