"""Counterexample reporting for failed verification conditions.

When a condition is invalid the SMT solver produces a model; we evaluate the
relevant symbolic values (the time, the neighbour routes assumed from their
interfaces, the route computed at the node, the network's symbolic
variables) under that model and package them into a plain-data
:class:`Counterexample` that can be printed, asserted on in tests, or
returned across process boundaries by the parallel checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Counterexample:
    """A concrete witness that a verification condition does not hold."""

    node: str
    condition: str
    #: The concrete logical time at which the condition fails (if relevant).
    time: int | None = None
    #: Routes assumed at the in-neighbours (inductive condition only).
    neighbor_routes: dict[str, Any] = field(default_factory=dict)
    #: The route computed at / assumed for the node itself.
    route: Any = None
    #: Values of the network-level symbolic variables.
    symbolics: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """A human-readable multi-line description."""
        lines = [f"counterexample for the {self.condition} condition at node {self.node!r}:"]
        if self.time is not None:
            lines.append(f"  at time t = {self.time}")
        for neighbor, route in sorted(self.neighbor_routes.items()):
            lines.append(f"  neighbour {neighbor!r} sends {_render_route(route)}")
        if self.route is not None or self.condition != "inductive":
            lines.append(f"  node route: {_render_route(self.route)}")
        for name, value in sorted(self.symbolics.items()):
            lines.append(f"  symbolic {name!r} = {value!r}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


def _render_route(route: Any) -> str:
    if route is None:
        return "∞ (no route)"
    if isinstance(route, dict):
        fields = ", ".join(f"{k}={v!r}" for k, v in route.items())
        return f"⟨{fields}⟩"
    return repr(route)


def reindex_destination(
    example: Counterexample, variable: str, mapping: dict[int, int]
) -> Counterexample:
    """Re-concretize the destination index of a translated counterexample.

    Destination-quotient symmetry classes (see
    :class:`repro.core.symmetry.DestinationQuotient`) prove one canonical
    instance per class; a member's counterexample is the representative's
    with the destination value mapped through the slot permutation.  Values
    outside ``mapping`` (never mentioned by either node's conditions) and a
    missing ``variable`` entry are left unchanged.
    """
    value = example.symbolics.get(variable)
    if not isinstance(value, int) or value not in mapping:
        return example
    symbolics = dict(example.symbolics)
    symbolics[variable] = mapping[value]
    return Counterexample(
        node=example.node,
        condition=example.condition,
        time=example.time,
        neighbor_routes=example.neighbor_routes,
        route=example.route,
        symbolics=symbolics,
    )
