"""Temporal operators for node interfaces and properties (§3, Figure 12).

An interface ``A(v)`` (and likewise a property ``P(v)``) is a function from a
time ``t`` to a set of routes.  We represent such functions as
:class:`TemporalPredicate` objects: callables taking a symbolic route and a
symbolic time and returning a :class:`~repro.symbolic.values.SymBool`.

The operators of the paper are provided:

* ``G(φ)``       — :func:`globally`
* ``φ U^τ Q``    — :func:`until`
* ``F^τ(Q)``     — :func:`finally_`
* ``Q₁ ⊓ Q₂``    — :meth:`TemporalPredicate.intersect` / ``&``
* ``Q₁ ⊔ Q₂``    — :meth:`TemporalPredicate.union` / ``|``
* ``∼Q``         — :meth:`TemporalPredicate.negate` / ``~``

Every predicate tracks its largest witness time.  Because the operators only
ever compare ``t`` against these finitely many constants, each predicate is
constant for ``t`` beyond its largest witness — this is what makes a bounded
bitvector encoding of the time variable sound *and* complete (see DESIGN.md).
"""

from __future__ import annotations

from typing import Any, Callable, Union

from repro.errors import VerificationError
from repro.symbolic import SymBV, SymBool

#: A predicate over routes only (the paper's ``φ``).
StatePredicate = Callable[[Any], SymBool]
#: Something acceptable wherever a temporal predicate is expected.
TemporalLike = Union["TemporalPredicate", StatePredicate]


class TemporalPredicate:
    """A time-indexed set of routes: ``(route, time) -> SymBool``."""

    def __init__(
        self,
        evaluate: Callable[[Any, SymBV], SymBool],
        max_witness: int = 0,
        description: str = "",
    ) -> None:
        self._evaluate = evaluate
        self.max_witness = max_witness
        self.description = description or "<temporal predicate>"

    def __call__(self, route: Any, time: SymBV) -> SymBool:
        result = self._evaluate(route, time)
        if not isinstance(result, SymBool):
            raise VerificationError(
                f"temporal predicate {self.description!r} returned "
                f"{type(result).__name__}, expected SymBool"
            )
        return result

    # -- lifted set operations ---------------------------------------------------

    def intersect(self, other: TemporalLike) -> "TemporalPredicate":
        other = lift(other)
        return TemporalPredicate(
            lambda route, time: self(route, time) & other(route, time),
            max_witness=max(self.max_witness, other.max_witness),
            description=f"({self.description} ⊓ {other.description})",
        )

    def union(self, other: TemporalLike) -> "TemporalPredicate":
        other = lift(other)
        return TemporalPredicate(
            lambda route, time: self(route, time) | other(route, time),
            max_witness=max(self.max_witness, other.max_witness),
            description=f"({self.description} ⊔ {other.description})",
        )

    def negate(self) -> "TemporalPredicate":
        return TemporalPredicate(
            lambda route, time: ~self(route, time),
            max_witness=self.max_witness,
            description=f"∼{self.description}",
        )

    __and__ = intersect
    __or__ = union
    __invert__ = negate

    def at_time(self, time_value: int, width: int) -> StatePredicate:
        """Specialise this predicate to the concrete time ``time_value``.

        Used by the Minesweeper-style monolithic baseline, which erases
        temporal structure by evaluating predicates at (or beyond) their
        largest witness time.
        """
        constant_time = SymBV.constant(time_value, width)
        return lambda route: self(route, constant_time)

    def __repr__(self) -> str:
        return f"TemporalPredicate({self.description})"


def lift(predicate: TemporalLike) -> TemporalPredicate:
    """Lift a plain route predicate to a (time-ignoring) temporal predicate."""
    if isinstance(predicate, TemporalPredicate):
        return predicate
    if callable(predicate):
        return TemporalPredicate(
            lambda route, time: SymBool.lift(predicate(route)),
            max_witness=0,
            description=getattr(predicate, "__name__", "<predicate>"),
        )
    raise VerificationError(f"cannot lift {predicate!r} to a temporal predicate")


def globally(predicate: StatePredicate, description: str = "") -> TemporalPredicate:
    """``G(φ)``: the routes satisfying ``φ`` at every time."""
    return TemporalPredicate(
        lambda route, time: SymBool.lift(predicate(route)),
        max_witness=0,
        description=description or f"G({getattr(predicate, '__name__', 'φ')})",
    )


def until(
    witness_time: int,
    before: StatePredicate,
    after: TemporalLike,
    description: str = "",
) -> TemporalPredicate:
    """``φ U^τ Q``: ``φ`` holds strictly before time ``τ``, ``Q`` from ``τ`` on."""
    if witness_time < 0:
        raise VerificationError(f"witness time must be non-negative, got {witness_time}")
    after_predicate = lift(after)

    def evaluate(route: Any, time: SymBV) -> SymBool:
        before_holds = SymBool.lift(before(route))
        after_holds = after_predicate(route, time)
        return (time < witness_time).ite(before_holds, after_holds)

    return TemporalPredicate(
        evaluate,
        max_witness=max(witness_time, after_predicate.max_witness),
        description=description or f"(φ U^{witness_time} {after_predicate.description})",
    )


def until_dynamic(
    witness: Callable[[SymBV], SymBV],
    before: StatePredicate,
    after: TemporalLike,
    max_witness: int,
    description: str = "",
) -> TemporalPredicate:
    """``φ U^w Q`` where the witness time ``w`` is a *symbolic* expression.

    ``witness`` receives the symbolic time variable (so it can build constants
    of the right width) and returns the witness time as a bitvector of the
    same width.  This is how the all-pairs benchmarks express ``dist(v)`` as a
    function of the symbolic destination.  ``max_witness`` must bound every
    value ``witness`` can take; it is used to size the time variable.
    """
    if max_witness < 0:
        raise VerificationError(f"max_witness must be non-negative, got {max_witness}")
    after_predicate = lift(after)

    def evaluate(route: Any, time: SymBV) -> SymBool:
        witness_value = witness(time)
        before_holds = SymBool.lift(before(route))
        after_holds = after_predicate(route, time)
        return (time < witness_value).ite(before_holds, after_holds)

    return TemporalPredicate(
        evaluate,
        max_witness=max(max_witness, after_predicate.max_witness),
        description=description or f"(φ U^<symbolic> {after_predicate.description})",
    )


def finally_dynamic(
    witness: Callable[[SymBV], SymBV],
    after: TemporalLike,
    max_witness: int,
    description: str = "",
) -> TemporalPredicate:
    """``F^w(Q)`` with a symbolic witness time (see :func:`until_dynamic`)."""
    return until_dynamic(
        witness,
        lambda route: SymBool.true(),
        after,
        max_witness,
        description=description or f"F^<symbolic>({lift(after).description})",
    )


def finally_(witness_time: int, after: TemporalLike, description: str = "") -> TemporalPredicate:
    """``F^τ(Q)``: anything before time ``τ``, ``Q`` from ``τ`` on."""
    return until(
        witness_time,
        lambda route: SymBool.true(),
        after,
        description=description or f"F^{witness_time}({lift(after).description})",
    )


def always_true() -> TemporalPredicate:
    """The trivial interface ``G(true)`` (used for unconstrained externals)."""
    return globally(lambda route: SymBool.true(), description="G(true)")


def always_false() -> TemporalPredicate:
    """The empty interface (no route is ever allowed)."""
    return globally(lambda route: SymBool.false(), description="G(false)")
