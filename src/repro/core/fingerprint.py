"""Stable content fingerprints for terms, conditions and node dependencies.

The delta re-verification layer (``Modular(delta="reuse")``) needs to decide,
*before* discharging anything, which verification conditions are unchanged
since an earlier run — possibly an earlier run in a different process.  This
module computes the keys that decision is made on:

* :func:`fingerprint_term` — a structural SHA-256 digest of a term DAG.
  Hash-consing already gives every term a process-stable ``term_id`` (what
  the symmetry layer keys equivalence classes on), but ``term_id`` is an
  interning counter and means nothing outside the process that allocated it.
  The fingerprint is computed from the term *structure* alone — operator
  tags, payloads, sorts and child digests; never ``id()`` or Python's
  randomized ``hash()`` — so the same term built in any process under any
  ``PYTHONHASHSEED`` digests to the same hex string.

* :func:`condition_fingerprint` — the content hash of one
  :class:`~repro.core.conditions.VerificationCondition`: its kind plus the
  digests of the canonicalized ``(assumptions, goal)`` pair.  Conditions are
  fingerprinted in their *class-canonical* form (``naming="class"``, the PR 2
  scheme that names query variables by predecessor position), so the
  fingerprint erases node identity: isomorphic nodes share fingerprints, and
  a verdict cached for one is a verdict for all of them.

* :func:`node_dependency_fingerprint` — a per-node digest covering exactly
  the inputs the node's three conditions are built from: the node's own
  interface and property, its policy (initial route, route update over the
  canonical neighbour routes, route well-formedness), its neighbours'
  interfaces in predecessor order, the network's symbolic constraints, and
  the time widths/delay.  A node whose dependency fingerprint is unchanged
  has unchanged conditions, so invalidation after a config edit is decided
  without rebuilding (or discharging) any condition.  Editing one node's
  annotation invalidates that node and its successors — the nodes whose
  inductive conditions assume the edited interface — i.e. an O(neighbourhood)
  set, not O(n).

Annotations and policies enter the dependency fingerprint *extensionally*:
each predicate/transfer function is applied once to canonical query
variables (the same ``vc$``-prefixed variables the condition builders use)
and the resulting term is digested.  This assumes annotations are pure term
builders — the same assumption the rest of the pipeline already makes, since
conditions are rebuilt from the same callables on every run and compared by
term identity in the symmetry layer.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Mapping, Sequence

from repro.core.annotations import AnnotatedNetwork
from repro.core.conditions import (
    CONDITION_KINDS,
    DestinationCanonicalizer,
    IneligibleDestination,
    VerificationCondition,
    _query_route,
    _query_time,
    canonical_node_conditions,
    destination_variable,
)
from repro.errors import VerificationError
from repro.smt.sorts import BitVecSort, BoolSort, Sort
from repro.smt.terms import Term
from repro.symbolic import SymBV, SymBool
from repro.symbolic.option import SymOption
from repro.symbolic.record import SymRecord
from repro.symbolic.sets import SymSet
from repro.symbolic.values import SymEnum

#: Bumped whenever the fingerprint encoding changes, so digests from older
#: code versions can never collide with current ones.  ``fp2``: condition
#: and dependency fingerprints are computed on the destination-canonicalized
#: form when the network declares a
#: :class:`~repro.core.annotations.DestinationSymmetry`, so all-pairs nodes
#: that differ only by destination-index permutation share fingerprints and
#: delta reuse composes with the destination quotient.
FINGERPRINT_VERSION = "fp2"

#: Field separator inside one digest's input.  ``\x1f`` (unit separator)
#: cannot appear in operator tags or sort encodings; payloads are
#: length-prefixed so embedded separators cannot forge field boundaries.
_SEP = b"\x1f"

#: Process-local memo: ``term_id`` → structural digest.  Terms are interned
#: for the lifetime of the process (the intern table never evicts), so the
#: id is a stable cache key — but the cached *value* is purely structural.
_TERM_DIGESTS: dict[int, str] = {}

#: Commutative operators whose child digests are sorted before hashing.  The
#: builder normalises ``eq`` arguments by interning order (``term_id``),
#: which depends on what the process happened to build first — two processes
#: (or one process before/after unrelated work) can produce ``eq(a, b)`` vs
#: ``eq(b, a)`` for the same source network.  Digesting commutative children
#: order-insensitively makes the fingerprint stable under that flip; it can
#: only identify semantically equal terms, so a store hit stays sound.
_COMMUTATIVE_OPS = frozenset({"eq", "and", "or", "bvadd"})


def _encode_sort(sort: Sort) -> bytes:
    if isinstance(sort, BoolSort):
        return b"B"
    if isinstance(sort, BitVecSort):
        return b"V%d" % sort.width
    raise VerificationError(f"cannot fingerprint term of unknown sort {sort!r}")


def _encode_payload(payload: Any) -> bytes:
    if payload is None:
        return b"n"
    if isinstance(payload, bool):
        # Before int: bool is an int subtype and must not alias 0/1.
        return b"b1" if payload else b"b0"
    if isinstance(payload, int):
        encoded = str(payload).encode("ascii")
        return b"i%d:" % len(encoded) + encoded
    if isinstance(payload, str):
        encoded = payload.encode("utf-8")
        return b"s%d:" % len(encoded) + encoded
    raise VerificationError(
        f"cannot fingerprint term payload of type {type(payload).__name__}"
    )


def _digest(parts: Iterable[bytes]) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part)
        hasher.update(_SEP)
    return hasher.hexdigest()


def fingerprint_term(term: Term) -> str:
    """The structural SHA-256 digest of a term DAG (process-independent).

    Computed bottom-up over the maximally-shared DAG with an explicit stack
    (condition terms can be deep enough to overflow Python's recursion
    limit), memoised per process by the interned ``term_id``.
    """
    cached = _TERM_DIGESTS.get(term.term_id)
    if cached is not None:
        return cached
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        current, expanded = stack.pop()
        if current.term_id in _TERM_DIGESTS:
            continue
        if expanded:
            children = tuple(_TERM_DIGESTS[arg.term_id] for arg in current.args)
            if current.op in _COMMUTATIVE_OPS:
                children = tuple(sorted(children))
            _TERM_DIGESTS[current.term_id] = _digest(
                (
                    FINGERPRINT_VERSION.encode("ascii"),
                    current.op.encode("ascii"),
                    _encode_payload(current.payload),
                    _encode_sort(current.sort),
                )
                + tuple(child.encode("ascii") for child in children)
            )
        else:
            stack.append((current, True))
            for arg in current.args:
                if arg.term_id not in _TERM_DIGESTS:
                    stack.append((arg, False))
    return _TERM_DIGESTS[term.term_id]


def fingerprint_value(value: Any, rewrite: Any = None) -> str:
    """The structural digest of any symbolic value (or plain scalar).

    Dispatches over the six modelling kinds; composites digest their shape
    metadata (record type and field names, option-ness, set universe) along
    with their component terms, so two values digest equally iff they are
    structurally the same symbolic value.  ``rewrite`` optionally maps each
    component term before digesting (the dependency fingerprint passes the
    destination canonicalizer here so all-pairs route payloads digest
    permutation-stably).
    """
    def term_digest(term: Term) -> bytes:
        if rewrite is not None:
            term = rewrite(term)
        return fingerprint_term(term).encode("ascii")

    if isinstance(value, (SymBool, SymBV)):
        return _digest((b"t", term_digest(value.term)))
    if isinstance(value, SymEnum):
        return _digest(
            (
                b"enum",
                _encode_payload(value.enum_type.name),
                _encode_payload(",".join(value.enum_type.members)),
                term_digest(value.index.term),
            )
        )
    if isinstance(value, SymOption):
        return _digest(
            (
                b"opt",
                fingerprint_value(value.is_some, rewrite).encode("ascii"),
                fingerprint_value(value.payload, rewrite).encode("ascii"),
            )
        )
    if isinstance(value, SymSet):
        return _digest(
            (b"set",)
            + tuple(
                _encode_payload(name)
                + _SEP
                + fingerprint_value(value.contains(name), rewrite).encode("ascii")
                for name in value.universe
            )
        )
    if isinstance(value, SymRecord):
        return _digest(
            (b"rec", _encode_payload(value.type_name))
            + tuple(
                _encode_payload(name) + _SEP + fingerprint_value(field, rewrite).encode("ascii")
                for name, field in value
            )
        )
    if isinstance(value, (bool, int, str)):
        return _digest((b"lit", _encode_payload(value)))
    raise VerificationError(f"cannot fingerprint value of type {type(value).__name__}")


def condition_fingerprint(condition: VerificationCondition) -> str:
    """The content hash of one verification condition.

    Digests the ``(kind, assumptions, goal)`` triple; callers who need
    node-identity-erased fingerprints (the delta store, the symmetry layer)
    must pass conditions built with ``naming="class"`` — see
    :func:`node_condition_fingerprints`.
    """
    return _digest(
        (
            FINGERPRINT_VERSION.encode("ascii"),
            b"vc",
            condition.kind.encode("ascii"),
            fingerprint_term(condition.assumptions.term).encode("ascii"),
            fingerprint_term(condition.goal.term).encode("ascii"),
        )
    )


def node_condition_fingerprints(
    annotated: AnnotatedNetwork,
    node: str,
    delay: int = 0,
    conditions: Sequence[str] = CONDITION_KINDS,
) -> dict[str, str]:
    """Per-kind canonical condition fingerprints for one node.

    Builds the node's conditions in class-canonical form (cheap: terms are
    hash-consed and their digests memoised) — destination-canonicalized when
    the network declares a destination symmetry, so permuted all-pairs nodes
    share condition fingerprints — and digests each requested kind.  These
    are the keys the delta store's verdict map is indexed by.
    """
    requested = set(conditions)
    node_vcs, _ = canonical_node_conditions(annotated, node, delay=delay)
    return {vc.kind: condition_fingerprint(vc) for vc in node_vcs if vc.kind in requested}


def _network_level_parts(annotated: AnnotatedNetwork, delay: int) -> tuple[bytes, ...]:
    """The digest parts shared by every node's dependency fingerprint.

    The time widths are annotation-*global* (they depend on the largest
    witness time over all interfaces and properties), so an edit anywhere
    that changes the width correctly invalidates every node.
    """
    network = annotated.network
    return (
        b"w%d" % annotated.time_width(),
        b"wd%d" % annotated.time_width(delay),
        b"d%d" % delay,
        fingerprint_term(network.symbolic_constraints().term).encode("ascii"),
        _encode_payload(",".join(symbolic.name for symbolic in network.symbolics)),
    )


def node_dependency_fingerprint(
    annotated: AnnotatedNetwork,
    node: str,
    delay: int = 0,
    conditions: Sequence[str] = CONDITION_KINDS,
) -> str:
    """The invalidation key of one node: everything its conditions depend on.

    Covers, over the same canonical ``vc$`` query variables the condition
    builders use: the node's interface and property, its initial route and
    route update (the policy), the route-shape constraint, each
    predecessor's interface in position order, the network's symbolic
    constraints and the time widths.  Node identity is erased (positional
    naming), so isomorphic nodes share dependency fingerprints — the same
    equivalence the symmetry layer computes, obtained here without an extra
    mechanism.  Under a declared destination symmetry the digested terms are
    additionally destination-canonicalized (falling back to raw terms when
    the destination is used outside the eligible shapes), so the dependency
    equivalence matches the destination quotient too.
    """
    destination = destination_variable(annotated)
    if destination is not None:
        canonicalizer = DestinationCanonicalizer(
            destination, annotated.destination_symmetry.size
        )
        try:
            return _dependency_digest(
                annotated, node, delay, conditions, canonicalizer.rewrite_term
            )
        except IneligibleDestination:
            pass
    return _dependency_digest(annotated, node, delay, conditions, None)


def _dependency_digest(
    annotated: AnnotatedNetwork,
    node: str,
    delay: int,
    conditions: Sequence[str],
    rewrite: Any,
) -> str:
    def term_digest(term: Term) -> bytes:
        if rewrite is not None:
            term = rewrite(term)
        return fingerprint_term(term).encode("ascii")

    network = annotated.network
    width = annotated.time_width(delay)
    base_width = annotated.time_width()

    time_variable = _query_time(node, width)
    base_time = _query_time(node, base_width)
    own_route = _query_route(network, node, naming="class")
    interface = annotated.interface(node)
    node_property = annotated.node_property(node)

    parts: list[bytes] = [FINGERPRINT_VERSION.encode("ascii"), b"dep"]
    parts.extend(_network_level_parts(annotated, delay))
    parts.append(_encode_payload(",".join(k for k in CONDITION_KINDS if k in set(conditions))))
    # The node's own annotation, applied extensionally at both widths the
    # conditions use (initial/safety run at the base width, inductive at the
    # delay-extended width).
    parts.append(term_digest(interface(own_route, base_time).term))
    parts.append(term_digest(interface(own_route, time_variable).term))
    parts.append(term_digest(node_property(own_route, base_time).term))
    # The policy: initial route, route well-formedness, and the route update
    # over canonical per-position neighbour routes.
    parts.append(fingerprint_value(network.initial_route(node), rewrite).encode("ascii"))
    parts.append(term_digest(network.route_shape.constraint(own_route).term))
    neighbor_routes: dict[str, Any] = {}
    for position, neighbor in enumerate(network.topology.predecessors(node)):
        route = _query_route(network, neighbor, naming="class", position=position)
        neighbor_routes[neighbor] = route
        # The neighbour's interface is what the inductive condition assumes;
        # its *name* is deliberately not part of the digest (positional
        # canonicalization, exactly as in the conditions themselves).
        parts.append(term_digest(annotated.interface(neighbor)(route, time_variable).term))
    parts.append(
        fingerprint_value(network.updated_route(node, neighbor_routes), rewrite).encode("ascii")
    )
    return _digest(parts)


def dependency_fingerprints(
    annotated: AnnotatedNetwork,
    nodes: Sequence[str],
    delay: int = 0,
    conditions: Sequence[str] = CONDITION_KINDS,
) -> dict[str, str]:
    """Dependency fingerprints for a node selection (one pass, shared terms)."""
    return {
        node: node_dependency_fingerprint(annotated, node, delay=delay, conditions=conditions)
        for node in nodes
    }


def network_fingerprint(annotated: AnnotatedNetwork) -> str:
    """A digest of the verification target's topology (store identity header).

    Covers the node set and the per-node predecessor lists.  Annotation or
    policy changes deliberately do *not* change it — they are what the delta
    layer diffs — but a different topology means the store describes a
    different network and is ignored with a warning.
    """
    topology = annotated.network.topology
    parts: list[bytes] = [FINGERPRINT_VERSION.encode("ascii"), b"net"]
    for node in topology.nodes:
        parts.append(_encode_payload(node))
        parts.append(_encode_payload(",".join(topology.predecessors(node))))
    return _digest(parts)


def strategy_signature(delay: int, conditions: Sequence[str]) -> str:
    """The store-key signature of the verdict-affecting strategy knobs.

    Only knobs that change *what is proved* participate: ``delay`` and the
    requested condition kinds.  Engine knobs (symmetry, backend, parallel,
    fail-fast) change how verdicts are computed, never the verdicts, so
    stores are shared across them — a cold sequential run warms the store
    for a later parallel or symmetry-aware one.
    """
    return _digest(
        (
            FINGERPRINT_VERSION.encode("ascii"),
            b"strategy",
            b"d%d" % delay,
            _encode_payload(",".join(k for k in CONDITION_KINDS if k in set(conditions))),
        )
    )


def clear_fingerprint_cache() -> None:
    """Drop the process-local term-digest memo (for tests and benchmarks)."""
    _TERM_DIGESTS.clear()


def fingerprint_statistics() -> Mapping[str, int]:
    """Size of the process-local digest memo (observability hook)."""
    return {"memoised_terms": len(_TERM_DIGESTS)}
