"""Result types and timing statistics for the modular checker.

The paper reports, for every benchmark, the total wall-clock time of the
modular run, the median per-node check time, the 99th-percentile per-node
check time and the monolithic baseline's total time.  The classes here carry
exactly those numbers so the benchmark harness can print Figure 14-style
rows directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.counterexample import Counterexample


@dataclass
class ConditionResult:
    """Outcome of one verification condition at one node."""

    node: str
    condition: str  # "initial" | "inductive" | "safety"
    holds: bool
    duration: float
    counterexample: Counterexample | None = None
    #: When the symmetry-aware checker reused another node's verdict instead
    #: of discharging this condition, the representative it came from.
    propagated_from: str | None = None
    #: True when the delta re-verification layer reused a verdict from the
    #: persistent store (``Modular(delta="reuse")``) instead of discharging
    #: or propagating a fresh one this run.  Reused verdicts are always
    #: passes: failing conditions are re-discharged so counterexamples are
    #: fresh.
    reused: bool = False
    #: Symmetry provenance: the quotient the verdict travelled through.
    #: ``"destination"`` when the condition was discharged as (or propagated
    #: from) a destination-permutation canonical instance rather than the
    #: node's literal condition; ``None`` otherwise.  See
    #: :class:`repro.core.symmetry.DestinationQuotient` and
    #: ``docs/DIAGNOSTICS.md``.
    quotient: str | None = None

    def __bool__(self) -> bool:
        return self.holds


@dataclass
class NodeReport:
    """Outcome of all conditions checked at one node."""

    node: str
    results: list[ConditionResult]
    duration: float

    @property
    def passed(self) -> bool:
        return all(result.holds for result in self.results)

    @property
    def failures(self) -> list[ConditionResult]:
        return [result for result in self.results if not result.holds]

    def describe(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"node {self.node!r}: {status} in {self.duration:.3f}s"]
        for failure in self.failures:
            if failure.counterexample is not None:
                lines.append(failure.counterexample.describe())
        return "\n".join(lines)


def _jsonable(value: object) -> object:
    """Recursively coerce evaluated model values to JSON-encodable shapes.

    Route payloads evaluate to dicts whose values may be frozensets (community
    sets), tuples, or nested records; JSON has no set type, so sets render as
    sorted lists.
    """
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def percentile(values: list[float], fraction: float) -> float:
    """The ``fraction`` percentile (nearest-rank) of a non-empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


@dataclass
class ModularReport:
    """Outcome of a whole modular verification run."""

    node_reports: dict[str, NodeReport]
    wall_time: float
    parallelism: int = 1
    #: The symmetry mode the run used ("off" | "classes" | "spot-check").
    symmetry: str = "off"
    #: Number of symmetry classes the nodes were partitioned into
    #: (``None`` when symmetry reduction was off).
    symmetry_classes: int | None = None
    #: Incremental-backend cache counters accumulated over the run
    #: (bit-blast and Tseitin hits/misses, SAT scopes, learned clauses —
    #: see ``IncrementalSolver.cache_statistics``).  Parallel runs sum the
    #: per-work-item deltas measured inside the workers.  ``None`` when the
    #: run used fresh per-condition solvers.
    backend_cache: dict[str, int] | None = None
    #: True when run-level ``stop_on_failure`` halted scheduling after the
    #: first failing batch (see :class:`repro.verify.Modular`).
    stopped_early: bool = False
    #: Conditions without a verdict because the run stopped early: one per
    #: requested condition kind for every selected node that received none —
    #: nodes never scheduled, plus (in parallel runs) nodes whose in-flight
    #: batch was discarded when the pool was stopped.  Always 0 for runs
    #: that were not stopped.
    conditions_skipped: int = 0
    #: The delta re-verification mode the run used ("off" | "reuse").
    delta: str = "off"
    #: Static-analysis diagnostics attached by ``Session.run(lint="warn")``
    #: (:class:`repro.analysis.Diagnostic` objects; kept untyped here so the
    #: core result types stay import-independent of the analysis layer).
    #: Empty when the run did not lint.  Lint diagnostics never change the
    #: verdict — ``lint="strict"`` raises before a report exists.
    diagnostics: list = field(default_factory=list)
    #: Adaptive-scheduler statistics from the parallel dispatcher (``None``
    #: for sequential runs or when symmetry was off): ``workers`` (pool
    #: size), ``classes_stolen`` (oversized classes split across workers)
    #: and ``window`` (histogram: prefetch-window size → number of
    #: dispatches made at that window).  See :mod:`repro.core.parallel`.
    scheduler: dict | None = None

    @property
    def passed(self) -> bool:
        return all(report.passed for report in self.node_reports.values())

    @property
    def verdict(self) -> str:
        """The :class:`repro.verify.Report` verdict (``"pass"``/``"fail"``)."""
        return "pass" if self.passed else "fail"

    def to_json(self) -> dict[str, object]:
        """A JSON-serialisable projection (the :class:`repro.verify.Report` shape).

        Carries the paper's headline numbers, the symmetry ablation counts,
        the per-node verdicts and the incremental-backend cache counters —
        the latter so ``BENCH_*.json`` trajectories can track cache
        hit-rates across PRs.
        """
        return {
            "engine": "modular",
            "verdict": self.verdict,
            "wall_time_s": self.wall_time,
            "parallelism": self.parallelism,
            "symmetry": self.symmetry,
            "symmetry_classes": self.symmetry_classes,
            "conditions_checked": self.conditions_checked,
            "conditions_discharged": self.conditions_discharged,
            "conditions_propagated": self.conditions_propagated,
            "conditions_skipped": self.conditions_skipped,
            "conditions_reused": self.conditions_reused,
            "conditions_recheck": self.conditions_recheck,
            "delta": self.delta,
            "stopped_early": self.stopped_early,
            "scheduler": self.scheduler,
            "median_node_time_s": self.median_node_time,
            "p99_node_time_s": self.p99_node_time,
            "max_node_time_s": self.max_node_time,
            "failed_nodes": self.failed_nodes,
            "backend_cache": self.backend_cache,
            "diagnostics": [diagnostic.to_json() for diagnostic in self.diagnostics],
            "nodes": {
                node: {
                    "passed": report.passed,
                    "duration_s": report.duration,
                    "results": [
                        {
                            "condition": result.condition,
                            "holds": result.holds,
                            "propagated_from": result.propagated_from,
                            "reused": result.reused,
                            "quotient": result.quotient,
                        }
                        for result in report.results
                    ],
                }
                for node, report in self.node_reports.items()
            },
        }

    @property
    def conditions_checked(self) -> int:
        """Total conditions with a verdict, discharged or propagated."""
        return sum(len(report.results) for report in self.node_reports.values())

    @property
    def conditions_discharged(self) -> int:
        """Conditions actually handed to the SMT backend."""
        return sum(
            1
            for report in self.node_reports.values()
            for result in report.results
            if result.propagated_from is None and not result.reused
        )

    @property
    def conditions_propagated(self) -> int:
        """Conditions whose verdict was reused from a class representative *this run*."""
        return sum(
            1
            for report in self.node_reports.values()
            for result in report.results
            if result.propagated_from is not None and not result.reused
        )

    @property
    def conditions_reused(self) -> int:
        """Conditions whose verdict came from the delta store, not this run."""
        return sum(
            1
            for report in self.node_reports.values()
            for result in report.results
            if result.reused
        )

    @property
    def conditions_recheck(self) -> int:
        """Conditions that received a fresh verdict this run (not store-reused)."""
        return self.conditions_checked - self.conditions_reused

    @property
    def failed_nodes(self) -> list[str]:
        return [node for node, report in self.node_reports.items() if not report.passed]

    @property
    def node_times(self) -> list[float]:
        return [report.duration for report in self.node_reports.values()]

    @property
    def total_node_time(self) -> float:
        """Sum of per-node check times (the sequential cost)."""
        return sum(self.node_times)

    @property
    def median_node_time(self) -> float:
        return percentile(self.node_times, 0.5)

    @property
    def p99_node_time(self) -> float:
        return percentile(self.node_times, 0.99)

    @property
    def max_node_time(self) -> float:
        return max(self.node_times, default=0.0)

    def counterexamples(self) -> list[Counterexample]:
        examples: list[Counterexample] = []
        for report in self.node_reports.values():
            for result in report.results:
                if result.counterexample is not None:
                    examples.append(result.counterexample)
        return examples

    def summary(self) -> str:
        status = "PASS" if self.passed else f"FAIL ({len(self.failed_nodes)} nodes)"
        text = (
            f"modular check: {status}; wall {self.wall_time:.2f}s over "
            f"{len(self.node_reports)} nodes (median {self.median_node_time:.3f}s, "
            f"p99 {self.p99_node_time:.3f}s, max {self.max_node_time:.3f}s, "
            f"jobs={self.parallelism})"
        )
        if self.symmetry != "off":
            text += (
                f"; symmetry={self.symmetry}: {self.symmetry_classes} classes, "
                f"{self.conditions_discharged}/{self.conditions_checked} conditions discharged"
            )
        if self.scheduler is not None:
            text += (
                f"; scheduler: {self.scheduler.get('classes_stolen', 0)} classes stolen, "
                f"windows {self.scheduler.get('window', {})}"
            )
        if self.delta != "off":
            text += (
                f"; delta={self.delta}: {self.conditions_reused}/{self.conditions_checked} "
                f"conditions reused, {self.conditions_recheck} rechecked"
            )
        if self.stopped_early:
            text += (
                f"; stopped early on failure ({self.conditions_skipped} conditions skipped)"
            )
        if self.diagnostics:
            by_severity: dict[str, int] = {}
            for diagnostic in self.diagnostics:
                severity = getattr(diagnostic, "severity", "info")
                by_severity[severity] = by_severity.get(severity, 0) + 1
            counts = ", ".join(f"{count} {severity}(s)" for severity, count in sorted(by_severity.items()))
            text += f"; lint: {counts}"
        return text


@dataclass
class MonolithicReport:
    """Outcome of the Minesweeper-style monolithic baseline."""

    passed: bool
    wall_time: float
    timed_out: bool = False
    counterexample: dict[str, object] | None = None
    symbolics: dict[str, object] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        """The :class:`repro.verify.Report` verdict (``timeout`` beats ``fail``)."""
        if self.timed_out:
            return "timeout"
        return "pass" if self.passed else "fail"

    @property
    def backend_cache(self) -> dict[str, int] | None:
        """Always ``None``: the monolithic engine uses the stateless facade."""
        return None

    def to_json(self) -> dict[str, object]:
        """A JSON-serialisable projection (the :class:`repro.verify.Report` shape).

        Counterexample routes and symbolic values are evaluated model
        values, which include non-JSON types like frozen community sets;
        they are normalised so failing runs serialise as cleanly as
        passing ones.
        """
        return {
            "engine": "monolithic",
            "verdict": self.verdict,
            "wall_time_s": self.wall_time,
            "timed_out": self.timed_out,
            "counterexample": _jsonable(self.counterexample),
            "symbolics": _jsonable(self.symbolics),
            "backend_cache": self.backend_cache,
        }

    def summary(self) -> str:
        if self.timed_out:
            return f"monolithic check: TIMEOUT after {self.wall_time:.2f}s"
        status = "PASS" if self.passed else "FAIL"
        return f"monolithic check: {status} in {self.wall_time:.2f}s"


def merge_reports(
    reports: Iterable[NodeReport],
    wall_time: float,
    parallelism: int,
    symmetry: str = "off",
    symmetry_classes: int | None = None,
    backend_cache: dict[str, int] | None = None,
    stopped_early: bool = False,
    conditions_skipped: int = 0,
    delta: str = "off",
    scheduler: dict | None = None,
) -> ModularReport:
    """Assemble a :class:`ModularReport` from per-node reports.

    The report's node order is exactly the order of ``reports`` — callers
    pass nodes in their deterministic selection order, so report iteration,
    ``failed_nodes`` and counterexample enumeration are reproducible.
    """
    return ModularReport(
        node_reports={report.node: report for report in reports},
        wall_time=wall_time,
        parallelism=parallelism,
        symmetry=symmetry,
        symmetry_classes=symmetry_classes,
        backend_cache=backend_cache,
        stopped_early=stopped_early,
        conditions_skipped=conditions_skipped,
        delta=delta,
        scheduler=scheduler,
    )


def condition_verdicts(report: ModularReport) -> dict[str, list[tuple[str, bool]]]:
    """The per-node ``(condition, holds)`` pairs of a report.

    A timing-free projection of the report, used to compare runs that must
    agree on every verdict (e.g. the incremental vs fresh backend ablation).
    """
    return {
        node: [(result.condition, result.holds) for result in node_report.results]
        for node, node_report in report.node_reports.items()
    }
