"""The naïve (unsound) modular stable-state procedure of §2.2.

This module exists to *demonstrate the problem the paper identifies*, not to
verify networks.  The "strawperson" procedure annotates every node with a
plain (non-temporal) set of routes and checks, per node, that merging any
combination of neighbour routes drawn from the neighbours' interfaces lands
back inside the node's own interface (equation 1).  As §2.2 shows with the
running example, interfaces can circularly justify each other and the check
can accept interfaces that exclude states the real network reaches — which is
exactly what the test-suite and the ``debugging_interfaces`` example
reproduce before showing how the temporal procedure rejects them.
"""

from __future__ import annotations

import time as _time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro import smt
from repro.core.counterexample import Counterexample
from repro.errors import VerificationError
from repro.routing.algebra import Network
from repro.symbolic import SymBV, SymBool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.annotations import AnnotatedNetwork

#: A stable-state interface: a predicate over routes (no time component).
StableInterface = Callable[[Any], SymBool]


@dataclass
class StrawpersonReport:
    """Outcome of the naïve stable-state modular check."""

    node_results: dict[str, bool]
    counterexamples: list[Counterexample] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def passed(self) -> bool:
        return all(self.node_results.values())

    @property
    def verdict(self) -> str:
        """The :class:`repro.verify.Report` verdict (``"pass"``/``"fail"``)."""
        return "pass" if self.passed else "fail"

    @property
    def backend_cache(self) -> dict[str, int] | None:
        """Always ``None``: the strawperson uses the stateless facade."""
        return None

    def to_json(self) -> dict[str, object]:
        """A JSON-serialisable projection (the :class:`repro.verify.Report` shape)."""
        return {
            "engine": "strawperson",
            "verdict": self.verdict,
            "wall_time_s": self.wall_time,
            "node_results": dict(self.node_results),
            "failed_nodes": self.failed_nodes,
            "counterexamples": [example.describe() for example in self.counterexamples],
            "backend_cache": self.backend_cache,
        }

    @property
    def failed_nodes(self) -> list[str]:
        return [node for node, passed in self.node_results.items() if not passed]


def erased_interfaces(annotated: "AnnotatedNetwork") -> dict[str, StableInterface]:
    """Each node's temporal interface erased at the stable time ``t ≥ τ_max``.

    The default interface set for :class:`repro.verify.Strawperson` when the
    caller supplies none — the same erasure the monolithic baseline applies
    to properties, so the three engines compare like with like.
    """
    width = annotated.time_width()
    stable_time = SymBV.constant(annotated.max_witness_time(), width)

    def erase(node: str) -> StableInterface:
        interface = annotated.interface(node)
        return lambda route: interface(route, stable_time)

    return {node: erase(node) for node in annotated.nodes}


def check_strawperson(
    network: Network,
    interfaces: Mapping[str, StableInterface],
) -> StrawpersonReport:
    """Deprecated shim over :class:`repro.verify.Session`.

    Use ``verify(network, Strawperson(interfaces=...))`` instead; the
    verdicts are identical.
    """
    warnings.warn(
        "check_strawperson is deprecated; use repro.verify.Session with "
        "Strawperson(interfaces=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.verify import Session, Strawperson

    with Session(network, Strawperson(interfaces=interfaces)) as session:
        return session.run()


def run_strawperson(
    network: Network,
    interfaces: Mapping[str, StableInterface],
) -> StrawpersonReport:
    """Run the §2.2 procedure (one local stable-state step per node)."""
    missing = [node for node in network.topology.nodes if node not in interfaces]
    if missing:
        raise VerificationError(f"missing stable interfaces for nodes {missing}")

    started = _time.perf_counter()
    node_results: dict[str, bool] = {}
    counterexamples: list[Counterexample] = []

    for node in network.topology.nodes:
        assumptions = network.symbolic_constraints()
        neighbor_routes: dict[str, Any] = {}
        for neighbor in network.topology.predecessors(node):
            route = network.route_shape.fresh(f"stable.{neighbor}.to.{node}")
            neighbor_routes[neighbor] = route
            assumptions = assumptions & network.route_shape.constraint(route)
            assumptions = assumptions & SymBool.lift(interfaces[neighbor](route))
        computed = network.updated_route(node, neighbor_routes)
        goal = SymBool.lift(interfaces[node](computed))

        proof = smt.prove(goal.term, assumptions.term)
        node_results[node] = proof.valid
        if not proof.valid:
            model = proof.counterexample
            assert model is not None
            counterexamples.append(
                Counterexample(
                    node=node,
                    condition="stable (strawperson)",
                    neighbor_routes={
                        name: route.eval(model) for name, route in neighbor_routes.items()
                    },
                    route=computed.eval(model),
                    symbolics={
                        symbolic.name: symbolic.value.eval(model)
                        for symbolic in network.symbolics
                    },
                )
            )

    return StrawpersonReport(
        node_results=node_results,
        counterexamples=counterexamples,
        wall_time=_time.perf_counter() - started,
    )
