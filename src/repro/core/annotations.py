"""Annotated networks: a network instance plus interfaces ``A`` and properties ``P``.

The user of Timepiece supplies, for every node, a temporal interface (the
inductive invariant to check) and a temporal property (the fact the
interfaces are supposed to imply).  The :class:`AnnotatedNetwork` bundles the
three together, validates coverage, and computes the bitvector width needed
for the logical-time variable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from repro.errors import VerificationError
from repro.routing.algebra import Network
from repro.core.temporal import TemporalLike, TemporalPredicate, always_true, lift

#: Anything accepted as a per-node annotation map.
AnnotationMap = Mapping[str, TemporalLike] | Callable[[str], TemporalLike]

#: A symmetry hint: maps a node to a hashable equivalence-class key, or
#: ``None`` to make the node a singleton class.  See :mod:`repro.core.symmetry`.
SymmetryKey = Callable[[str], Hashable | None]


@dataclass(frozen=True)
class DestinationSymmetry:
    """Declares that a network is symmetric under destination-index permutation.

    All-pairs benchmarks introduce a symbolic destination index that appears
    in conditions only through equalities against concrete index constants
    (``dest == k``) and the range constraint ``dest < size``.  A builder that
    knows this attaches a marker so :mod:`repro.core.symmetry` may quotient
    nodes up to a simultaneous permutation of those constants.

    ``variable`` is the symbolic variable's name, ``size`` the number of
    valid destination indices (the permutation acts on ``0..size-1``).
    """

    variable: str
    size: int


class AnnotatedNetwork:
    """A network together with its node interfaces and node properties.

    ``symmetry_key`` optionally names each node's symmetry class (builders
    that know their topology — e.g. fattree benchmarks — attach one so the
    symmetry-aware checker can skip the generic canonical-form hashing).
    ``destination_symmetry`` optionally declares invariance under
    destination-index permutation (all-pairs benchmarks), letting the
    symmetry layer quotient nodes whose conditions differ only in which
    concrete destination constants they mention.
    """

    def __init__(
        self,
        network: Network,
        interfaces: AnnotationMap,
        properties: AnnotationMap,
        minimum_time_width: int = 2,
        symmetry_key: SymmetryKey | None = None,
        destination_symmetry: DestinationSymmetry | None = None,
    ) -> None:
        self.network = network
        self._interfaces = self._materialise(interfaces, "interface")
        self._properties = self._materialise(properties, "property")
        self.minimum_time_width = minimum_time_width
        self.symmetry_key = symmetry_key
        self.destination_symmetry = destination_symmetry

    # -- construction helpers -----------------------------------------------------

    def _materialise(
        self, annotations: AnnotationMap, kind: str
    ) -> dict[str, TemporalPredicate]:
        nodes = self.network.topology.nodes
        result: dict[str, TemporalPredicate] = {}
        if callable(annotations):
            for node in nodes:
                result[node] = lift(annotations(node))
            return result
        # Sorted so the message is deterministic regardless of topology or
        # dict iteration order — error text is asserted on in tests and
        # diffed across runs in CI logs.
        missing = sorted(node for node in nodes if node not in annotations)
        if missing:
            names = ", ".join(repr(node) for node in missing)
            raise VerificationError(
                f"missing {kind} annotation for {len(missing)} node(s): {names}"
            )
        unknown = sorted(node for node in annotations if node not in nodes)
        if unknown:
            names = ", ".join(repr(node) for node in unknown)
            raise VerificationError(
                f"{kind} annotation given for {len(unknown)} unknown node(s): {names}"
            )
        for node in nodes:
            result[node] = lift(annotations[node])
        return result

    # -- accessors ------------------------------------------------------------------

    def interface(self, node: str) -> TemporalPredicate:
        """The interface ``A(node)``."""
        try:
            return self._interfaces[node]
        except KeyError:
            raise VerificationError(f"unknown node {node!r}") from None

    def node_property(self, node: str) -> TemporalPredicate:
        """The property ``P(node)``."""
        try:
            return self._properties[node]
        except KeyError:
            raise VerificationError(f"unknown node {node!r}") from None

    @property
    def nodes(self) -> tuple[str, ...]:
        return self.network.topology.nodes

    def max_witness_time(self) -> int:
        """The largest witness time mentioned by any interface or property."""
        witnesses = [predicate.max_witness for predicate in self._interfaces.values()]
        witnesses += [predicate.max_witness for predicate in self._properties.values()]
        return max(witnesses, default=0)

    def time_width(self, delay: int = 0) -> int:
        """Bits needed for the symbolic time variable.

        The width is chosen so that ``max_witness + delay + 1`` is representable
        without overflow; since every annotation is constant beyond its largest
        witness, restricting ``t`` to this range is sound and complete.
        """
        needed = self.max_witness_time() + delay + 2
        width = max(self.minimum_time_width, needed.bit_length())
        return width

    def with_property_as_interface(self) -> "AnnotatedNetwork":
        """Use each node's property as its interface (the §4 starting heuristic)."""
        return AnnotatedNetwork(
            self.network,
            interfaces=dict(self._properties),
            properties=dict(self._properties),
            minimum_time_width=self.minimum_time_width,
            symmetry_key=self.symmetry_key,
            destination_symmetry=self.destination_symmetry,
        )

    def __repr__(self) -> str:
        return (
            f"AnnotatedNetwork(nodes={self.network.topology.node_count}, "
            f"max_witness={self.max_witness_time()})"
        )


def annotate(
    network: Network,
    interfaces: AnnotationMap,
    properties: AnnotationMap | None = None,
) -> AnnotatedNetwork:
    """Convenience constructor.

    When ``properties`` is omitted, every node's property defaults to
    ``G(true)`` — useful while interfaces are still being designed.
    """
    if properties is None:
        properties = {node: always_true() for node in network.topology.nodes}
    return AnnotatedNetwork(network, interfaces, properties)
