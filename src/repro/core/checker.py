"""The modular checking primitives (Algorithm 1: ``CheckMod``).

Orchestration (node/class scheduling, symmetry partitioning, parallel
dispatch, report assembly) lives in :mod:`repro.verify.session`; this module
provides the per-batch primitives :func:`check_node` and :func:`check_class`
it builds on, plus the deprecated :func:`check_modular` shim.

For every node of an annotated network, encode and discharge the initial,
inductive and safety conditions.  Node checks are completely independent —
the paper calls them "embarrassingly parallel" — so they can be run either
sequentially or on a fork-based process pool (see
:mod:`repro.core.parallel`).  Timing is collected per node so the harness can
report the totals, medians and 99th percentiles the paper plots.

By default the conditions are discharged on the per-process incremental SMT
backend (:func:`repro.smt.process_solver`): the three conditions of a node —
and consecutive nodes checked by the same worker — share encoded structure
and learned clauses.  Pass ``incremental=False`` (or an explicit ``solver``)
to fall back to a fresh SAT instance per condition; the verdicts are
identical either way, only the cost differs (see the ablation benchmarks).

**Symmetry reduction.**  ``check_modular(..., symmetry="classes")`` first
partitions the nodes into equivalence classes (:mod:`repro.core.symmetry`) —
via benchmark-supplied metadata hints or a generic canonical-form hash of
each node's conditions — then discharges the conditions of one
representative per class and propagates the verdict (with a positionally
translated counterexample) to the remaining members.  All of a class is
discharged in one SAT scope, so encoded clauses and learned clauses are
shared across the entire class.  ``symmetry="spot-check"`` additionally
re-verifies one deterministically chosen extra member per class and raises
if its verdict disagrees with the representative's — the guard against a
wrong canonicalization or hint.  Verdicts are identical across all three
modes; only the number of discharged conditions (and the wall time) differs.
"""

from __future__ import annotations

import time as _time
import warnings
from typing import Any, Iterable, Sequence

from repro.core.annotations import AnnotatedNetwork
from repro.core.conditions import (
    CONDITION_KINDS,
    VerificationCondition,
    canonical_node_conditions,
    node_conditions,
)
from repro.core.results import ConditionResult, ModularReport, NodeReport
from repro.core.symmetry import SymmetryClass, translate_counterexample
from repro.errors import VerificationError
from repro.smt.incremental import process_solver


def _discharge(
    conditions: Iterable[VerificationCondition],
    kinds: Sequence[str],
    fail_fast: bool,
    solver: Any,
) -> list[ConditionResult]:
    """Discharge ``conditions`` (restricted to ``kinds``) on ``solver``."""
    results: list[ConditionResult] = []
    for condition in conditions:
        if condition.kind not in kinds:
            continue
        result = condition.check(solver=solver)
        results.append(result)
        if fail_fast and not result.holds:
            break
    return results


def _acquire_solver(solver: Any | None, incremental: bool) -> tuple[Any | None, bool]:
    """The backend for one node/class batch, opening a fresh SAT scope.

    When the caller pinned no solver and asked for the incremental backend,
    the shared per-process solver is used with a new scope: the batch's
    conditions share the scope's clause database and learned clauses, while
    the process solver's encoding caches persist across batches (and whole
    runs).  The second element reports whether the checker *owns* the
    returned backend (acquired it here rather than receiving it pinned).
    """
    if solver is None and incremental:
        solver = process_solver()
        solver.new_scope()
        return solver, True
    return solver, False


def _recover_solver(solver: Any | None, owned: bool) -> None:
    """Reset an internally-acquired backend after an exception escaped.

    Without this, a crashed check (a user interface raising, an interrupted
    solve) could leave the per-process solver's SAT trail or assertion
    frames inconsistent and silently poison every later node's verdict.
    Caller-pinned solvers are left alone: ``recover()`` drops every frame
    above the root, which would destroy assertions the caller pushed for
    its own purposes — their cleanup policy is theirs to choose.
    """
    if not owned:
        return
    recover = getattr(solver, "recover", None)
    if recover is not None:
        recover()


def check_node(
    annotated: AnnotatedNetwork,
    node: str,
    delay: int = 0,
    conditions: Sequence[str] = CONDITION_KINDS,
    fail_fast: bool = True,
    solver: Any | None = None,
    incremental: bool = True,
) -> NodeReport:
    """Check one node's verification conditions.

    ``conditions`` restricts which of the three conditions are checked (the
    harness uses this for ablations).  With ``fail_fast`` the remaining
    conditions are skipped after the first failure, mirroring Algorithm 1,
    which returns the first counterexample it finds.

    ``solver`` pins the SMT backend for all of the node's conditions; when
    omitted, the shared per-process incremental solver is used unless
    ``incremental=False`` requests fresh per-condition SAT instances.  If a
    condition raises, the shared backend is restored to a clean state before
    the exception propagates, so subsequent checks stay sound.
    """
    unknown = set(conditions) - set(CONDITION_KINDS)
    if unknown:
        raise VerificationError(f"unknown condition kinds {sorted(unknown)}")
    solver, owned = _acquire_solver(solver, incremental)
    started = _time.perf_counter()
    try:
        results = _discharge(
            node_conditions(annotated, node, delay=delay), conditions, fail_fast, solver
        )
    except BaseException:
        _recover_solver(solver, owned)
        raise
    return NodeReport(node=node, results=results, duration=_time.perf_counter() - started)


def check_class(
    annotated: AnnotatedNetwork,
    symmetry_class: SymmetryClass,
    delay: int = 0,
    conditions: Sequence[str] = CONDITION_KINDS,
    fail_fast: bool = True,
    solver: Any | None = None,
    incremental: bool = True,
) -> list[NodeReport]:
    """Check one symmetry class: discharge the representative, reuse the rest.

    Returns a report per member, in member order.  The representative's
    conditions are built with class-canonical naming and discharged in one
    SAT scope; every other member receives the representative's verdicts as
    propagated :class:`ConditionResult` records (duration 0, counterexamples
    translated by the positional neighbour correspondence).  When the class
    carries a ``spot_member``, that member's conditions are rebuilt from
    scratch and discharged in the *same* scope — with a correct
    canonicalization this re-assumes the identical terms (nearly free, and
    it exercises the scope sharing); with a wrong metadata hint the verdicts
    can diverge, which raises :class:`VerificationError` instead of silently
    propagating an unsound verdict.

    For destination-quotient classes (``symmetry_class.destination`` set)
    the cached conditions are the *canonical* instance: their evaluation
    payloads belong to the representative's raw conditions and cannot be
    trusted under a canonical model, so a failing canonical verdict is
    discarded and the representative's raw conditions are re-discharged (an
    equivalid query — same verdicts, genuine counterexample).  Member
    counterexamples additionally re-concretize the destination index through
    the class's slot permutation, and every result carries
    ``quotient="destination"`` provenance.
    """
    representative = symmetry_class.representative
    quotient = symmetry_class.destination
    solver, owned = _acquire_solver(solver, incremental)
    topology = annotated.network.topology

    started = _time.perf_counter()
    try:
        built = symmetry_class.conditions
        if built is None or symmetry_class.conditions_delay != delay:
            # No cached conditions (metadata-hint path), or the cache was
            # built for a different delay than this check requests.
            if quotient is not None:
                built, _ = canonical_node_conditions(annotated, representative, delay=delay)
                built = tuple(built)
            else:
                built = tuple(
                    node_conditions(annotated, representative, delay=delay, naming="class")
                )
        results = _discharge(built, conditions, fail_fast, solver)
        if quotient is not None and any(not result.holds for result in results):
            # The canonical instance failed; its counterexample payloads are
            # the representative's raw terms evaluated under a *canonical*
            # model, which is meaningless.  Re-discharge the raw conditions
            # (equivalid — identical holds pattern and fail-fast truncation)
            # for a counterexample in the representative's own coordinates.
            results = _discharge(
                tuple(node_conditions(annotated, representative, delay=delay, naming="class")),
                conditions,
                fail_fast,
                solver,
            )
    except BaseException:
        _recover_solver(solver, owned)
        raise
    if quotient is not None:
        for result in results:
            result.quotient = "destination"
    reports = [
        NodeReport(node=representative, results=results, duration=_time.perf_counter() - started)
    ]

    representative_preds = topology.predecessors(representative)
    for member in symmetry_class.members[1:]:
        if member == symmetry_class.spot_member:
            reports.append(
                _spot_check_member(
                    annotated,
                    symmetry_class,
                    member,
                    results,
                    delay,
                    conditions,
                    fail_fast,
                    solver,
                    owned,
                )
            )
            continue
        member_started = _time.perf_counter()
        destination = (
            None
            if quotient is None
            else (quotient.variable, quotient.permutation(representative, member))
        )
        member_results = [
            ConditionResult(
                node=member,
                condition=result.condition,
                holds=result.holds,
                duration=0.0,
                counterexample=(
                    None
                    if result.counterexample is None
                    else translate_counterexample(
                        result.counterexample,
                        member,
                        representative_preds,
                        topology.predecessors(member),
                        destination=destination,
                    )
                ),
                propagated_from=representative,
                quotient=result.quotient,
            )
            for result in results
        ]
        reports.append(
            NodeReport(
                node=member,
                results=member_results,
                duration=_time.perf_counter() - member_started,
            )
        )
    return reports


def _spot_check_member(
    annotated: AnnotatedNetwork,
    symmetry_class: SymmetryClass,
    member: str,
    representative_results: list[ConditionResult],
    delay: int,
    conditions: Sequence[str],
    fail_fast: bool,
    solver: Any,
    owned: bool,
) -> NodeReport:
    """Fully re-verify one class member and compare against the representative."""
    member_started = _time.perf_counter()
    try:
        member_results = _discharge(
            node_conditions(annotated, member, delay=delay, naming="class"),
            conditions,
            fail_fast,
            solver,
        )
    except BaseException:
        _recover_solver(solver, owned)
        raise
    expected = [(result.condition, result.holds) for result in representative_results]
    observed = [(result.condition, result.holds) for result in member_results]
    if expected != observed:
        raise VerificationError(
            f"symmetry spot-check failed: class member {member!r} decided {observed} "
            f"but representative {symmetry_class.representative!r} decided {expected}; "
            "the symmetry classes (metadata hints?) are unsound for this network"
        )
    return NodeReport(
        node=member, results=member_results, duration=_time.perf_counter() - member_started
    )


def check_modular(
    annotated: AnnotatedNetwork,
    nodes: Iterable[str] | None = None,
    delay: int = 0,
    jobs: int = 1,
    conditions: Sequence[str] = CONDITION_KINDS,
    fail_fast: bool = True,
    incremental: bool = True,
    symmetry: str = "off",
    spot_check_seed: int = 0,
) -> ModularReport:
    """Deprecated shim over :class:`repro.verify.Session`.

    Use ``verify(annotated, Modular(...))`` instead — the kwargs map onto
    :class:`repro.verify.Modular` fields one-for-one (``jobs`` →
    ``parallel``, ``incremental=False`` → ``backend="fresh"``) and the
    verdicts are identical: the session's modular engine *is* this
    procedure (see :func:`repro.verify.session.modular_events` for the
    scheduling, symmetry and report-ordering contract).
    """
    warnings.warn(
        "check_modular is deprecated; use repro.verify.Session with Modular(...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.verify import Modular, Session

    try:
        strategy = Modular(
            symmetry=symmetry,
            backend="incremental" if incremental else "fresh",
            # The legacy API accepted jobs <= 0 as "run sequentially".
            parallel=max(1, jobs),
            fail_fast=fail_fast,
            spot_check_seed=spot_check_seed,
            delay=delay,
            conditions=tuple(conditions),
        )
    except ValueError as error:
        # The legacy API signalled bad knobs with VerificationError.
        raise VerificationError(str(error)) from None
    with Session(annotated, strategy) as session:
        return session.run(nodes=None if nodes is None else tuple(nodes))


def assert_verified(report: ModularReport) -> None:
    """Raise :class:`VerificationError` with diagnostics unless ``report`` passed."""
    if report.passed:
        return
    details = "\n".join(example.describe() for example in report.counterexamples())
    raise VerificationError(
        f"modular verification failed at nodes {report.failed_nodes}:\n{details}"
    )
