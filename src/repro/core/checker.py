"""The modular checking procedure (Algorithm 1: ``CheckMod``).

For every node of an annotated network, encode and discharge the initial,
inductive and safety conditions.  Node checks are completely independent —
the paper calls them "embarrassingly parallel" — so they can be run either
sequentially or on a fork-based process pool (see
:mod:`repro.core.parallel`).  Timing is collected per node so the harness can
report the totals, medians and 99th percentiles the paper plots.

By default the conditions are discharged on the per-process incremental SMT
backend (:func:`repro.smt.process_solver`): the three conditions of a node —
and consecutive nodes checked by the same worker — share encoded structure
and learned clauses.  Pass ``incremental=False`` (or an explicit ``solver``)
to fall back to a fresh SAT instance per condition; the verdicts are
identical either way, only the cost differs (see the ablation benchmarks).
"""

from __future__ import annotations

import time as _time
from typing import Any, Iterable, Sequence

from repro.core.annotations import AnnotatedNetwork
from repro.core.conditions import CONDITION_KINDS, node_conditions
from repro.core.results import ConditionResult, ModularReport, NodeReport, merge_reports
from repro.errors import VerificationError
from repro.smt.incremental import process_solver


def check_node(
    annotated: AnnotatedNetwork,
    node: str,
    delay: int = 0,
    conditions: Sequence[str] = CONDITION_KINDS,
    fail_fast: bool = True,
    solver: Any | None = None,
    incremental: bool = True,
) -> NodeReport:
    """Check one node's verification conditions.

    ``conditions`` restricts which of the three conditions are checked (the
    harness uses this for ablations).  With ``fail_fast`` the remaining
    conditions are skipped after the first failure, mirroring Algorithm 1,
    which returns the first counterexample it finds.

    ``solver`` pins the SMT backend for all of the node's conditions; when
    omitted, the shared per-process incremental solver is used unless
    ``incremental=False`` requests fresh per-condition SAT instances.
    """
    unknown = set(conditions) - set(CONDITION_KINDS)
    if unknown:
        raise VerificationError(f"unknown condition kinds {sorted(unknown)}")
    if solver is None and incremental:
        # One SAT scope per node: the three conditions share the scope's
        # clause database and learned clauses, while the process solver's
        # encoding caches persist across nodes (and whole runs).
        solver = process_solver()
        solver.new_scope()
    started = _time.perf_counter()
    results: list[ConditionResult] = []
    for condition in node_conditions(annotated, node, delay=delay):
        if condition.kind not in conditions:
            continue
        result = condition.check(solver=solver)
        results.append(result)
        if fail_fast and not result.holds:
            break
    return NodeReport(node=node, results=results, duration=_time.perf_counter() - started)


def check_modular(
    annotated: AnnotatedNetwork,
    nodes: Iterable[str] | None = None,
    delay: int = 0,
    jobs: int = 1,
    conditions: Sequence[str] = CONDITION_KINDS,
    fail_fast: bool = True,
    incremental: bool = True,
) -> ModularReport:
    """Run the modular checking procedure over ``nodes`` (default: all nodes).

    ``jobs > 1`` distributes node checks over a process pool; the per-node
    timing statistics are identical either way, only the wall-clock time
    changes.  Each worker process reuses its own incremental solver across
    the nodes it checks (disable with ``incremental=False``).
    """
    selected = tuple(nodes) if nodes is not None else annotated.nodes
    for node in selected:
        if node not in annotated.nodes:
            raise VerificationError(f"unknown node {node!r}")

    started = _time.perf_counter()
    if jobs > 1:
        from repro.core.parallel import check_nodes_in_parallel

        reports = check_nodes_in_parallel(
            annotated,
            selected,
            delay=delay,
            jobs=jobs,
            conditions=conditions,
            fail_fast=fail_fast,
            incremental=incremental,
        )
    else:
        reports = [
            check_node(
                annotated,
                node,
                delay=delay,
                conditions=conditions,
                fail_fast=fail_fast,
                incremental=incremental,
            )
            for node in selected
        ]
    wall_time = _time.perf_counter() - started
    return merge_reports(reports, wall_time=wall_time, parallelism=max(1, jobs))


def assert_verified(report: ModularReport) -> None:
    """Raise :class:`VerificationError` with diagnostics unless ``report`` passed."""
    if report.passed:
        return
    details = "\n".join(example.describe() for example in report.counterexamples())
    raise VerificationError(
        f"modular verification failed at nodes {report.failed_nodes}:\n{details}"
    )
