"""The modular checking procedure (Algorithm 1: ``CheckMod``).

For every node of an annotated network, encode and discharge the initial,
inductive and safety conditions.  Node checks are completely independent —
the paper calls them "embarrassingly parallel" — so they can be run either
sequentially or on a fork-based process pool (see
:mod:`repro.core.parallel`).  Timing is collected per node so the harness can
report the totals, medians and 99th percentiles the paper plots.
"""

from __future__ import annotations

import time as _time
from typing import Iterable, Sequence

from repro.core.annotations import AnnotatedNetwork
from repro.core.conditions import CONDITION_KINDS, node_conditions
from repro.core.results import ConditionResult, ModularReport, NodeReport, merge_reports
from repro.errors import VerificationError


def check_node(
    annotated: AnnotatedNetwork,
    node: str,
    delay: int = 0,
    conditions: Sequence[str] = CONDITION_KINDS,
    fail_fast: bool = True,
) -> NodeReport:
    """Check one node's verification conditions.

    ``conditions`` restricts which of the three conditions are checked (the
    harness uses this for ablations).  With ``fail_fast`` the remaining
    conditions are skipped after the first failure, mirroring Algorithm 1,
    which returns the first counterexample it finds.
    """
    unknown = set(conditions) - set(CONDITION_KINDS)
    if unknown:
        raise VerificationError(f"unknown condition kinds {sorted(unknown)}")
    started = _time.perf_counter()
    results: list[ConditionResult] = []
    for condition in node_conditions(annotated, node, delay=delay):
        if condition.kind not in conditions:
            continue
        result = condition.check()
        results.append(result)
        if fail_fast and not result.holds:
            break
    return NodeReport(node=node, results=results, duration=_time.perf_counter() - started)


def check_modular(
    annotated: AnnotatedNetwork,
    nodes: Iterable[str] | None = None,
    delay: int = 0,
    jobs: int = 1,
    conditions: Sequence[str] = CONDITION_KINDS,
    fail_fast: bool = True,
) -> ModularReport:
    """Run the modular checking procedure over ``nodes`` (default: all nodes).

    ``jobs > 1`` distributes node checks over a process pool; the per-node
    timing statistics are identical either way, only the wall-clock time
    changes.
    """
    selected = tuple(nodes) if nodes is not None else annotated.nodes
    for node in selected:
        if node not in annotated.nodes:
            raise VerificationError(f"unknown node {node!r}")

    started = _time.perf_counter()
    if jobs > 1:
        from repro.core.parallel import check_nodes_in_parallel

        reports = check_nodes_in_parallel(
            annotated,
            selected,
            delay=delay,
            jobs=jobs,
            conditions=conditions,
            fail_fast=fail_fast,
        )
    else:
        reports = [
            check_node(annotated, node, delay=delay, conditions=conditions, fail_fast=fail_fast)
            for node in selected
        ]
    wall_time = _time.perf_counter() - started
    return merge_reports(reports, wall_time=wall_time, parallelism=max(1, jobs))


def assert_verified(report: ModularReport) -> None:
    """Raise :class:`VerificationError` with diagnostics unless ``report`` passed."""
    if report.passed:
        return
    details = "\n".join(example.describe() for example in report.counterexamples())
    raise VerificationError(
        f"modular verification failed at nodes {report.failed_nodes}:\n{details}"
    )
