"""The modular checking procedure (Algorithm 1: ``CheckMod``).

For every node of an annotated network, encode and discharge the initial,
inductive and safety conditions.  Node checks are completely independent —
the paper calls them "embarrassingly parallel" — so they can be run either
sequentially or on a fork-based process pool (see
:mod:`repro.core.parallel`).  Timing is collected per node so the harness can
report the totals, medians and 99th percentiles the paper plots.

By default the conditions are discharged on the per-process incremental SMT
backend (:func:`repro.smt.process_solver`): the three conditions of a node —
and consecutive nodes checked by the same worker — share encoded structure
and learned clauses.  Pass ``incremental=False`` (or an explicit ``solver``)
to fall back to a fresh SAT instance per condition; the verdicts are
identical either way, only the cost differs (see the ablation benchmarks).

**Symmetry reduction.**  ``check_modular(..., symmetry="classes")`` first
partitions the nodes into equivalence classes (:mod:`repro.core.symmetry`) —
via benchmark-supplied metadata hints or a generic canonical-form hash of
each node's conditions — then discharges the conditions of one
representative per class and propagates the verdict (with a positionally
translated counterexample) to the remaining members.  All of a class is
discharged in one SAT scope, so encoded clauses and learned clauses are
shared across the entire class.  ``symmetry="spot-check"`` additionally
re-verifies one deterministically chosen extra member per class and raises
if its verdict disagrees with the representative's — the guard against a
wrong canonicalization or hint.  Verdicts are identical across all three
modes; only the number of discharged conditions (and the wall time) differs.
"""

from __future__ import annotations

import random
import time as _time
from typing import Any, Iterable, Sequence

from repro.core.annotations import AnnotatedNetwork
from repro.core.conditions import CONDITION_KINDS, VerificationCondition, node_conditions
from repro.core.results import ConditionResult, ModularReport, NodeReport, merge_reports
from repro.core.symmetry import SYMMETRY_MODES, SymmetryClass, partition_nodes, translate_counterexample
from repro.errors import VerificationError
from repro.smt.incremental import (
    process_cache_statistics,
    process_solver,
    subtract_cache_statistics,
)


def _discharge(
    conditions: Iterable[VerificationCondition],
    kinds: Sequence[str],
    fail_fast: bool,
    solver: Any,
) -> list[ConditionResult]:
    """Discharge ``conditions`` (restricted to ``kinds``) on ``solver``."""
    results: list[ConditionResult] = []
    for condition in conditions:
        if condition.kind not in kinds:
            continue
        result = condition.check(solver=solver)
        results.append(result)
        if fail_fast and not result.holds:
            break
    return results


def _acquire_solver(solver: Any | None, incremental: bool) -> tuple[Any | None, bool]:
    """The backend for one node/class batch, opening a fresh SAT scope.

    When the caller pinned no solver and asked for the incremental backend,
    the shared per-process solver is used with a new scope: the batch's
    conditions share the scope's clause database and learned clauses, while
    the process solver's encoding caches persist across batches (and whole
    runs).  The second element reports whether the checker *owns* the
    returned backend (acquired it here rather than receiving it pinned).
    """
    if solver is None and incremental:
        solver = process_solver()
        solver.new_scope()
        return solver, True
    return solver, False


def _recover_solver(solver: Any | None, owned: bool) -> None:
    """Reset an internally-acquired backend after an exception escaped.

    Without this, a crashed check (a user interface raising, an interrupted
    solve) could leave the per-process solver's SAT trail or assertion
    frames inconsistent and silently poison every later node's verdict.
    Caller-pinned solvers are left alone: ``recover()`` drops every frame
    above the root, which would destroy assertions the caller pushed for
    its own purposes — their cleanup policy is theirs to choose.
    """
    if not owned:
        return
    recover = getattr(solver, "recover", None)
    if recover is not None:
        recover()


def check_node(
    annotated: AnnotatedNetwork,
    node: str,
    delay: int = 0,
    conditions: Sequence[str] = CONDITION_KINDS,
    fail_fast: bool = True,
    solver: Any | None = None,
    incremental: bool = True,
) -> NodeReport:
    """Check one node's verification conditions.

    ``conditions`` restricts which of the three conditions are checked (the
    harness uses this for ablations).  With ``fail_fast`` the remaining
    conditions are skipped after the first failure, mirroring Algorithm 1,
    which returns the first counterexample it finds.

    ``solver`` pins the SMT backend for all of the node's conditions; when
    omitted, the shared per-process incremental solver is used unless
    ``incremental=False`` requests fresh per-condition SAT instances.  If a
    condition raises, the shared backend is restored to a clean state before
    the exception propagates, so subsequent checks stay sound.
    """
    unknown = set(conditions) - set(CONDITION_KINDS)
    if unknown:
        raise VerificationError(f"unknown condition kinds {sorted(unknown)}")
    solver, owned = _acquire_solver(solver, incremental)
    started = _time.perf_counter()
    try:
        results = _discharge(
            node_conditions(annotated, node, delay=delay), conditions, fail_fast, solver
        )
    except BaseException:
        _recover_solver(solver, owned)
        raise
    return NodeReport(node=node, results=results, duration=_time.perf_counter() - started)


def check_class(
    annotated: AnnotatedNetwork,
    symmetry_class: SymmetryClass,
    delay: int = 0,
    conditions: Sequence[str] = CONDITION_KINDS,
    fail_fast: bool = True,
    solver: Any | None = None,
    incremental: bool = True,
) -> list[NodeReport]:
    """Check one symmetry class: discharge the representative, reuse the rest.

    Returns a report per member, in member order.  The representative's
    conditions are built with class-canonical naming and discharged in one
    SAT scope; every other member receives the representative's verdicts as
    propagated :class:`ConditionResult` records (duration 0, counterexamples
    translated by the positional neighbour correspondence).  When the class
    carries a ``spot_member``, that member's conditions are rebuilt from
    scratch and discharged in the *same* scope — with a correct
    canonicalization this re-assumes the identical terms (nearly free, and
    it exercises the scope sharing); with a wrong metadata hint the verdicts
    can diverge, which raises :class:`VerificationError` instead of silently
    propagating an unsound verdict.
    """
    representative = symmetry_class.representative
    solver, owned = _acquire_solver(solver, incremental)
    topology = annotated.network.topology

    started = _time.perf_counter()
    try:
        built = symmetry_class.conditions
        if built is None or symmetry_class.conditions_delay != delay:
            # No cached conditions (metadata-hint path), or the cache was
            # built for a different delay than this check requests.
            built = tuple(node_conditions(annotated, representative, delay=delay, naming="class"))
        results = _discharge(built, conditions, fail_fast, solver)
    except BaseException:
        _recover_solver(solver, owned)
        raise
    reports = [
        NodeReport(node=representative, results=results, duration=_time.perf_counter() - started)
    ]

    representative_preds = topology.predecessors(representative)
    for member in symmetry_class.members[1:]:
        if member == symmetry_class.spot_member:
            reports.append(
                _spot_check_member(
                    annotated,
                    symmetry_class,
                    member,
                    results,
                    delay,
                    conditions,
                    fail_fast,
                    solver,
                    owned,
                )
            )
            continue
        member_started = _time.perf_counter()
        member_results = [
            ConditionResult(
                node=member,
                condition=result.condition,
                holds=result.holds,
                duration=0.0,
                counterexample=(
                    None
                    if result.counterexample is None
                    else translate_counterexample(
                        result.counterexample,
                        member,
                        representative_preds,
                        topology.predecessors(member),
                    )
                ),
                propagated_from=representative,
            )
            for result in results
        ]
        reports.append(
            NodeReport(
                node=member,
                results=member_results,
                duration=_time.perf_counter() - member_started,
            )
        )
    return reports


def _spot_check_member(
    annotated: AnnotatedNetwork,
    symmetry_class: SymmetryClass,
    member: str,
    representative_results: list[ConditionResult],
    delay: int,
    conditions: Sequence[str],
    fail_fast: bool,
    solver: Any,
    owned: bool,
) -> NodeReport:
    """Fully re-verify one class member and compare against the representative."""
    member_started = _time.perf_counter()
    try:
        member_results = _discharge(
            node_conditions(annotated, member, delay=delay, naming="class"),
            conditions,
            fail_fast,
            solver,
        )
    except BaseException:
        _recover_solver(solver, owned)
        raise
    expected = [(result.condition, result.holds) for result in representative_results]
    observed = [(result.condition, result.holds) for result in member_results]
    if expected != observed:
        raise VerificationError(
            f"symmetry spot-check failed: class member {member!r} decided {observed} "
            f"but representative {symmetry_class.representative!r} decided {expected}; "
            "the symmetry classes (metadata hints?) are unsound for this network"
        )
    return NodeReport(
        node=member, results=member_results, duration=_time.perf_counter() - member_started
    )


def check_modular(
    annotated: AnnotatedNetwork,
    nodes: Iterable[str] | None = None,
    delay: int = 0,
    jobs: int = 1,
    conditions: Sequence[str] = CONDITION_KINDS,
    fail_fast: bool = True,
    incremental: bool = True,
    symmetry: str = "off",
    spot_check_seed: int = 0,
) -> ModularReport:
    """Run the modular checking procedure over ``nodes`` (default: all nodes).

    ``jobs > 1`` distributes checks over a process pool; the verdicts are
    identical either way, only the wall-clock time changes.  Each worker
    process reuses its own incremental solver across the batches it checks
    (disable with ``incremental=False``).

    ``symmetry`` selects the reduction mode: ``"off"`` checks every node,
    ``"classes"`` discharges one representative per equivalence class and
    propagates verdicts, ``"spot-check"`` additionally re-verifies one
    deterministically chosen member per class (seeded by
    ``spot_check_seed``) as a guard against wrong symmetry hints.  With
    symmetry on, parallel work is partitioned by class rather than by node,
    so each worker's encoding caches stay hot on one structural shape at a
    time.

    Report ordering is deterministic: node reports appear in the order of
    ``nodes`` (or ``annotated.nodes``) regardless of symmetry mode, job
    count or scheduling, so counterexample selection is reproducible.
    """
    if symmetry not in SYMMETRY_MODES:
        raise VerificationError(f"unknown symmetry mode {symmetry!r}; choose one of {SYMMETRY_MODES}")
    selected = tuple(nodes) if nodes is not None else annotated.nodes
    for node in selected:
        if node not in annotated.nodes:
            raise VerificationError(f"unknown node {node!r}")

    started = _time.perf_counter()
    class_count: int | None = None
    cache_before: dict[str, int] | None = None
    cache_delta: dict[str, int] | None = None

    if symmetry == "off":
        if jobs > 1:
            # Worker-process cache counters are not observable from here, so
            # no snapshot is taken (the report carries backend_cache=None).
            from repro.core.parallel import check_nodes_in_parallel

            reports = check_nodes_in_parallel(
                annotated,
                selected,
                delay=delay,
                jobs=jobs,
                conditions=conditions,
                fail_fast=fail_fast,
                incremental=incremental,
            )
        else:
            if incremental:
                cache_before = process_cache_statistics()
            reports = [
                check_node(
                    annotated,
                    node,
                    delay=delay,
                    conditions=conditions,
                    fail_fast=fail_fast,
                    incremental=incremental,
                )
                for node in selected
            ]
    else:
        classes = partition_nodes(annotated, selected, delay=delay, conditions=conditions)
        class_count = len(classes)
        if symmetry == "spot-check":
            rng = random.Random(spot_check_seed)
            for symmetry_class in classes:
                if len(symmetry_class) > 1:
                    symmetry_class.spot_member = rng.choice(symmetry_class.members[1:])
        if jobs > 1:
            from repro.core.parallel import check_classes_in_parallel

            reports, cache_delta = check_classes_in_parallel(
                annotated,
                classes,
                delay=delay,
                jobs=jobs,
                conditions=conditions,
                fail_fast=fail_fast,
                incremental=incremental,
            )
        else:
            if incremental:
                cache_before = process_cache_statistics()
            reports = [
                report
                for symmetry_class in classes
                for report in check_class(
                    annotated,
                    symmetry_class,
                    delay=delay,
                    conditions=conditions,
                    fail_fast=fail_fast,
                    incremental=incremental,
                )
            ]
        # Classes interleave the node order; restore the selection order so
        # reports (and counterexample enumeration) are reproducible.
        order = {node: index for index, node in enumerate(selected)}
        reports.sort(key=lambda report: order[report.node])

    if cache_before is not None:
        cache_delta = subtract_cache_statistics(process_cache_statistics(), cache_before)
    wall_time = _time.perf_counter() - started
    return merge_reports(
        reports,
        wall_time=wall_time,
        parallelism=max(1, jobs),
        symmetry=symmetry,
        symmetry_classes=class_count,
        backend_cache=cache_delta,
    )


def assert_verified(report: ModularReport) -> None:
    """Raise :class:`VerificationError` with diagnostics unless ``report`` passed."""
    if report.passed:
        return
    details = "\n".join(example.describe() for example in report.counterexamples())
    raise VerificationError(
        f"modular verification failed at nodes {report.failed_nodes}:\n{details}"
    )
