"""Lexer for the routing-policy configuration language.

The surface syntax is deliberately simple — braces, semicolons, identifiers
(which may contain dashes, dots and colons, as Junos names do), numbers and
``#``/``/* */`` comments — so the lexer is a straightforward single-pass
scanner with precise line/column tracking for error messages.
"""

from __future__ import annotations

from repro.config.tokens import Token, TokenKind
from repro.errors import ConfigSyntaxError

#: Characters allowed inside identifiers after the first character.
_IDENTIFIER_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.:")


class Lexer:
    """Scans policy-DSL source text into a token stream."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> list[Token]:
        """Scan the whole input, returning tokens terminated by an EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind == TokenKind.EOF:
                return tokens

    # -- scanning ---------------------------------------------------------------

    def _peek(self) -> str:
        if self.position >= len(self.source):
            return ""
        return self.source[self.position]

    def _advance(self) -> str:
        character = self.source[self.position]
        self.position += 1
        if character == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return character

    def _skip_trivia(self) -> None:
        while self.position < len(self.source):
            character = self._peek()
            if character in " \t\r\n":
                self._advance()
            elif character == "#":
                while self.position < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif character == "/" and self.source[self.position : self.position + 2] == "/*":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        start_line, start_column = self.line, self.column
        self._advance()
        self._advance()
        while self.position < len(self.source):
            if self.source[self.position : self.position + 2] == "*/":
                self._advance()
                self._advance()
                return
            self._advance()
        raise ConfigSyntaxError("unterminated block comment", start_line, start_column)

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        if self.position >= len(self.source):
            return Token(TokenKind.EOF, "", line, column)
        character = self._peek()
        if character == "{":
            self._advance()
            return Token(TokenKind.LEFT_BRACE, "{", line, column)
        if character == "}":
            self._advance()
            return Token(TokenKind.RIGHT_BRACE, "}", line, column)
        if character == ";":
            self._advance()
            return Token(TokenKind.SEMICOLON, ";", line, column)
        if character == '"':
            return self._scan_string(line, column)
        if character.isdigit():
            return self._scan_number(line, column)
        if character.isalpha() or character == "_":
            return self._scan_identifier(line, column)
        raise ConfigSyntaxError(f"unexpected character {character!r}", line, column)

    def _scan_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        characters: list[str] = []
        while True:
            if self.position >= len(self.source):
                raise ConfigSyntaxError("unterminated string literal", line, column)
            character = self._advance()
            if character == '"':
                return Token(TokenKind.STRING, "".join(characters), line, column)
            characters.append(character)

    def _scan_number(self, line: int, column: int) -> Token:
        digits: list[str] = []
        while self.position < len(self.source) and self._peek().isdigit():
            digits.append(self._advance())
        # Values such as community members ("65535:666") start with digits but
        # continue with identifier characters; treat those as identifiers.
        if self.position < len(self.source) and self._peek() in _IDENTIFIER_CHARS:
            while self.position < len(self.source) and self._peek() in _IDENTIFIER_CHARS:
                digits.append(self._advance())
            return Token(TokenKind.IDENTIFIER, "".join(digits), line, column)
        return Token(TokenKind.NUMBER, "".join(digits), line, column)

    def _scan_identifier(self, line: int, column: int) -> Token:
        characters = [self._advance()]
        while self.position < len(self.source) and self._peek() in _IDENTIFIER_CHARS:
            characters.append(self._advance())
        return Token(TokenKind.IDENTIFIER, "".join(characters), line, column)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper around :class:`Lexer`."""
    return Lexer(source).tokenize()
