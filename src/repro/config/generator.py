"""Synthetic Internet2-style wide-area-network configuration generator.

The paper's WAN experiment verifies an isolation property ("BlockToExternal")
on Internet2's real Junos configuration — over 100,000 lines of proprietary
configuration with 1,552 routing policies, 10 internal routers and 253
external peers.  Those files cannot be shipped here, so this module generates
a *synthetic* configuration with the same structure in our policy DSL:

* a configurable number of internal backbone routers, connected in a ring
  plus chords (roughly Internet2's Abilene backbone shape);
* a configurable number of external peers of three classes (commercial,
  research/education and customer), each attached to one backbone router;
* per-class import policies (bogon filtering, class community tagging, local
  preference setting) and a shared export policy towards external peers that
  filters routes carrying the ``BTE`` ("block to external") community; and
* internal-mesh policies that keep communities intact.

The generated text is deterministic for a given parameter set, so benchmarks
and tests are reproducible.  The ``buggy`` flag produces a variant whose
export policy on one session forgets the BTE filter — used to demonstrate
counterexample reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError

#: The community whose leakage the BlockToExternal property forbids.
BTE_COMMUNITY = "BTE"

PEER_CLASSES = ("commercial", "research", "customer")

#: Abstract prefix numbers considered "bogons" (never valid to import).
BOGON_PREFIXES = (250, 251, 252)

#: Abstract prefix numbers owned by the backbone.
INTERNAL_PREFIXES = (10, 11, 12, 13)


@dataclass(frozen=True)
class WanParameters:
    """Size parameters of the generated WAN."""

    internal_routers: int = 10
    external_peers: int = 40
    #: Ring chords: each internal router also connects to the router this many
    #: positions ahead (besides its ring neighbours), giving Internet2-like
    #: redundancy.
    chord_stride: int = 3
    buggy: bool = False

    def __post_init__(self) -> None:
        if self.internal_routers < 3:
            raise BenchmarkError("the WAN needs at least three internal routers")
        if self.external_peers < 1:
            raise BenchmarkError("the WAN needs at least one external peer")


def internal_name(index: int) -> str:
    return f"wan{index}"


def external_name(index: int) -> str:
    return f"peer{index}"


def peer_class(index: int) -> str:
    return PEER_CLASSES[index % len(PEER_CLASSES)]


def generate_wan_config(parameters: WanParameters = WanParameters()) -> str:
    """Generate the configuration text for the synthetic WAN."""
    sections: list[str] = []
    sections.append(_header(parameters))
    sections.append(_declarations())
    sections.append(_policies(parameters))
    sections.append(_internal_routers(parameters))
    return "\n".join(sections) + "\n"


# -- pieces of the generated file -------------------------------------------------


def _header(parameters: WanParameters) -> str:
    return (
        "# Synthetic Internet2-style wide-area network\n"
        f"# internal routers: {parameters.internal_routers}, "
        f"external peers: {parameters.external_peers}\n"
    )


def _declarations() -> str:
    lines = [
        f"community {BTE_COMMUNITY} members 65535:666;",
        "community COMMERCIAL members 65535:100;",
        "community RESEARCH members 65535:101;",
        "community CUSTOMER members 65535:102;",
        "community LOW-PRIORITY members 65535:200;",
        "",
        "prefix-list internal-prefixes {",
    ]
    lines += [f"    {prefix};" for prefix in INTERNAL_PREFIXES]
    lines += ["}", "", "prefix-list bogons {"]
    lines += [f"    {prefix};" for prefix in BOGON_PREFIXES]
    lines += ["}", ""]
    return "\n".join(lines)


def _policies(parameters: WanParameters) -> str:
    policies = []

    # Import from an external peer, by class.
    class_settings = {
        "commercial": ("COMMERCIAL", 120),
        "research": ("RESEARCH", 140),
        "customer": ("CUSTOMER", 160),
    }
    for class_name, (community, preference) in class_settings.items():
        policies.append(
            f"""policy-statement import-from-{class_name} {{
    term reject-bogons {{
        from {{ prefix-list bogons; }}
        then {{ reject; }}
    }}
    term reject-internal-spoof {{
        from {{ prefix-list internal-prefixes; }}
        then {{ reject; }}
    }}
    term classify {{
        then {{
            set local-preference {preference};
            add community {community};
            accept;
        }}
    }}
}}"""
        )

    # Import across the internal mesh: keep everything.
    policies.append(
        """policy-statement import-internal {
    term keep {
        then { accept; }
    }
}"""
    )

    # Export across the internal mesh: keep everything (including BTE).
    policies.append(
        """policy-statement export-internal {
    term keep {
        then { accept; }
    }
}"""
    )

    # Export towards external peers: never leak BTE-tagged routes, strip the
    # low-priority marker, accept the rest.
    policies.append(
        f"""policy-statement export-to-external {{
    term block-bte {{
        from {{ community {BTE_COMMUNITY}; }}
        then {{ reject; }}
    }}
    term strip-low-priority {{
        from {{ community LOW-PRIORITY; }}
        then {{
            remove community LOW-PRIORITY;
            accept;
        }}
    }}
    term announce {{
        then {{ accept; }}
    }}
}}"""
    )

    # The deliberately buggy export policy (forgets the BTE filter).
    if parameters.buggy:
        policies.append(
            """policy-statement export-to-external-buggy {
    term announce {
        then { accept; }
    }
}"""
        )

    # Internal routers mark some customer routes as do-not-export.
    policies.append(
        f"""policy-statement tag-no-export {{
    term tag-customer-routes {{
        from {{ community CUSTOMER; }}
        then {{
            add community {BTE_COMMUNITY};
            accept;
        }}
    }}
    term keep {{
        then {{ accept; }}
    }}
}}"""
    )

    return "\n\n".join(policies) + "\n"


def _internal_routers(parameters: WanParameters) -> str:
    count = parameters.internal_routers
    blocks: list[str] = []
    peers_of: dict[int, list[int]] = {index: [] for index in range(count)}
    for peer_index in range(parameters.external_peers):
        peers_of[peer_index % count].append(peer_index)

    for index in range(count):
        lines = [f"router {internal_name(index)} {{"]
        lines.append(f"    announce prefix {INTERNAL_PREFIXES[index % len(INTERNAL_PREFIXES)]};")
        neighbors = {(index + 1) % count, (index - 1) % count, (index + parameters.chord_stride) % count}
        neighbors.discard(index)
        for neighbor in sorted(neighbors):
            lines.append(
                f"    neighbor {internal_name(neighbor)} "
                "{ import import-internal; export export-internal; }"
            )
        for peer_index in peers_of[index]:
            export = "export-to-external"
            if parameters.buggy and index == 0 and peer_index == 0:
                export = "export-to-external-buggy"
            lines.append(
                f"    neighbor {external_name(peer_index)} "
                f"{{ import import-from-{peer_class(peer_index)}; export {export}; }}"
            )
        lines.append("}")
        blocks.append("\n".join(lines))

    return "\n\n".join(blocks) + "\n"
