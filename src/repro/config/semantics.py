"""Semantic analysis for parsed policy configurations.

The analyser checks the well-formedness rules the compiler relies on:

* community, prefix-list, policy and router names are unique;
* every name referenced by a match condition, action, import/export clause or
  neighbour declaration is either declared or (for neighbours) consistent
  with being an external peer;
* every policy term ends in a terminal action (``accept`` or ``reject``), so
  policy evaluation is a simple first-match cascade; and
* neighbour sessions are symmetric enough to build a topology from (an edge
  is created for each declared session; a session declared by only one side
  is allowed and treated as unidirectional towards the declaring side's peer).

The result is a :class:`ResolvedConfig` with name-indexed tables that the
compiler consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.ast import ConfigFile, PolicyStatement, PrefixListDecl, RouterDecl, SourceLocation
from repro.errors import ConfigSemanticError


@dataclass
class ResolvedConfig:
    """A validated configuration with name-resolution tables."""

    config: ConfigFile
    communities: dict[str, str] = field(default_factory=dict)
    prefix_lists: dict[str, PrefixListDecl] = field(default_factory=dict)
    policies: dict[str, PolicyStatement] = field(default_factory=dict)
    routers: dict[str, RouterDecl] = field(default_factory=dict)
    #: Routers referenced as neighbours but never declared (implicit externals).
    implicit_externals: tuple[str, ...] = ()

    @property
    def community_names(self) -> tuple[str, ...]:
        return tuple(self.communities)

    @property
    def internal_routers(self) -> tuple[str, ...]:
        return tuple(name for name, decl in self.routers.items() if not decl.external)

    @property
    def external_routers(self) -> tuple[str, ...]:
        declared = tuple(name for name, decl in self.routers.items() if decl.external)
        return declared + self.implicit_externals

    @property
    def all_nodes(self) -> tuple[str, ...]:
        return tuple(self.routers) + self.implicit_externals

    def prefixes_in_list(self, name: str) -> tuple[int, ...]:
        return self.prefix_lists[name].prefixes


def analyze(config: ConfigFile) -> ResolvedConfig:
    """Validate ``config`` and build the resolution tables."""
    resolved = ResolvedConfig(config=config)

    _index_unique(resolved.communities, [(c.name, c.value) for c in config.communities], "community")
    _index_unique(resolved.prefix_lists, [(p.name, p) for p in config.prefix_lists], "prefix-list")
    _index_unique(resolved.policies, [(p.name, p) for p in config.policies], "policy-statement")
    _index_unique(resolved.routers, [(r.name, r) for r in config.routers], "router")

    for policy in config.policies:
        _check_policy(policy, resolved)

    implicit: list[str] = []
    for router in config.routers:
        for neighbor in router.neighbors:
            if neighbor.name == router.name:
                raise ConfigSemanticError(
                    f"router {router.name!r} declares itself as a neighbour"
                )
            for policy_name in (neighbor.import_policy, neighbor.export_policy):
                if policy_name is not None and policy_name not in resolved.policies:
                    raise ConfigSemanticError(
                        f"router {router.name!r} references undeclared policy {policy_name!r}"
                    )
            if neighbor.name not in resolved.routers and neighbor.name not in implicit:
                implicit.append(neighbor.name)
    resolved.implicit_externals = tuple(implicit)
    return resolved


def _index_unique(table: dict, entries: list[tuple[str, object]], kind: str) -> None:
    for name, value in entries:
        if name in table:
            raise ConfigSemanticError(f"duplicate {kind} declaration {name!r}")
        table[name] = value


@dataclass(frozen=True)
class ConfigFinding:
    """One config-DSL lint finding (hygiene, not well-formedness).

    Unlike the :class:`~repro.errors.ConfigSemanticError` conditions above,
    a finding never prevents compilation: the configuration means something,
    it just probably doesn't mean what its author intended.  Findings are
    surfaced through the static-analysis layer (:mod:`repro.analysis`),
    which maps each ``kind`` to a stable diagnostic code and raises
    :class:`~repro.errors.AnalysisError` in strict mode — keeping
    :class:`~repro.errors.ConfigSyntaxError` strictly about syntax.
    """

    kind: str  # one of FINDING_KINDS
    message: str
    #: Human-readable context, e.g. ``"policy 'export-to-external'"``.
    source: str
    location: SourceLocation | None = None


#: The config-lint finding vocabulary.
FINDING_KINDS = ("unreachable-term", "unused-community", "unused-prefix-list", "shadowed-name")


def lint(resolved: ResolvedConfig) -> tuple[ConfigFinding, ...]:
    """Hygiene lint over a validated configuration.

    Reports, in source order: policy terms shadowed by an earlier
    catch-all terminal term (first-match evaluation never reaches them),
    community and prefix-list declarations nothing references, and names
    declared in more than one namespace (legal — the namespaces are
    disjoint — but a reliable sign of a copy-paste mistake).
    """
    findings: list[ConfigFinding] = []
    findings.extend(_unreachable_terms(resolved))
    findings.extend(_unused_definitions(resolved))
    findings.extend(_shadowed_names(resolved))
    return tuple(findings)


def _unreachable_terms(resolved: ResolvedConfig) -> list[ConfigFinding]:
    findings: list[ConfigFinding] = []
    for policy in resolved.policies.values():
        for index, term in enumerate(policy.terms):
            if term.matches or term.terminal_action is None:
                continue
            # ``term`` matches every route and terminates: later terms are dead.
            for later in policy.terms[index + 1 :]:
                findings.append(
                    ConfigFinding(
                        kind="unreachable-term",
                        message=(
                            f"term {later.name!r} of policy {policy.name!r} is "
                            f"unreachable: term {term.name!r} before it matches every "
                            f"route and ends in {term.terminal_action.kind!r}"
                        ),
                        source=f"policy {policy.name!r}",
                        location=later.location,
                    )
                )
            break
    return findings


def _unused_definitions(resolved: ResolvedConfig) -> list[ConfigFinding]:
    used_communities: set[str] = set()
    used_prefix_lists: set[str] = set()
    for policy in resolved.policies.values():
        for term in policy.terms:
            for match in term.matches:
                if match.kind == "community":
                    used_communities.add(match.argument)
                elif match.kind == "prefix-list":
                    used_prefix_lists.add(match.argument)
            for action in term.actions:
                if action.kind in ("add-community", "remove-community"):
                    used_communities.add(action.argument)
    findings: list[ConfigFinding] = []
    for declaration in resolved.config.communities:
        if declaration.name not in used_communities:
            findings.append(
                ConfigFinding(
                    kind="unused-community",
                    message=(
                        f"community {declaration.name!r} is declared but never "
                        "matched or set by any policy"
                    ),
                    source=f"community {declaration.name!r}",
                    location=declaration.location,
                )
            )
    for prefix_list in resolved.config.prefix_lists:
        if prefix_list.name not in used_prefix_lists:
            findings.append(
                ConfigFinding(
                    kind="unused-prefix-list",
                    message=(
                        f"prefix-list {prefix_list.name!r} is declared but never "
                        "matched by any policy"
                    ),
                    source=f"prefix-list {prefix_list.name!r}",
                    location=prefix_list.location,
                )
            )
    return findings


def _shadowed_names(resolved: ResolvedConfig) -> list[ConfigFinding]:
    namespaces: list[tuple[str, dict]] = [
        ("community", resolved.communities),
        ("prefix-list", resolved.prefix_lists),
        ("policy-statement", resolved.policies),
        ("router", resolved.routers),
    ]
    owners: dict[str, list[str]] = {}
    for namespace, table in namespaces:
        for name in table:
            owners.setdefault(name, []).append(namespace)
    findings: list[ConfigFinding] = []
    for name, kinds in owners.items():
        if len(kinds) < 2:
            continue
        findings.append(
            ConfigFinding(
                kind="shadowed-name",
                message=(
                    f"name {name!r} is declared in {len(kinds)} namespaces "
                    f"({', '.join(kinds)}); distinct names avoid confusing "
                    "references"
                ),
                source=f"name {name!r}",
                location=None,
            )
        )
    return findings


def _check_policy(policy: PolicyStatement, resolved: ResolvedConfig) -> None:
    if not policy.terms:
        raise ConfigSemanticError(f"policy-statement {policy.name!r} has no terms")
    seen_terms: set[str] = set()
    for term in policy.terms:
        if term.name in seen_terms:
            raise ConfigSemanticError(
                f"policy-statement {policy.name!r} has duplicate term {term.name!r}"
            )
        seen_terms.add(term.name)
        if term.terminal_action is None:
            raise ConfigSemanticError(
                f"term {term.name!r} of policy {policy.name!r} never accepts or rejects"
            )
        for match in term.matches:
            if match.kind == "community" and match.argument not in resolved.communities:
                raise ConfigSemanticError(
                    f"term {term.name!r} of policy {policy.name!r} matches undeclared "
                    f"community {match.argument!r}"
                )
            if match.kind == "prefix-list" and match.argument not in resolved.prefix_lists:
                raise ConfigSemanticError(
                    f"term {term.name!r} of policy {policy.name!r} matches undeclared "
                    f"prefix-list {match.argument!r}"
                )
        for action in term.actions:
            if action.kind in ("add-community", "remove-community"):
                if action.argument not in resolved.communities:
                    raise ConfigSemanticError(
                        f"term {term.name!r} of policy {policy.name!r} uses undeclared "
                        f"community {action.argument!r}"
                    )
