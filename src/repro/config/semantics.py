"""Semantic analysis for parsed policy configurations.

The analyser checks the well-formedness rules the compiler relies on:

* community, prefix-list, policy and router names are unique;
* every name referenced by a match condition, action, import/export clause or
  neighbour declaration is either declared or (for neighbours) consistent
  with being an external peer;
* every policy term ends in a terminal action (``accept`` or ``reject``), so
  policy evaluation is a simple first-match cascade; and
* neighbour sessions are symmetric enough to build a topology from (an edge
  is created for each declared session; a session declared by only one side
  is allowed and treated as unidirectional towards the declaring side's peer).

The result is a :class:`ResolvedConfig` with name-indexed tables that the
compiler consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.ast import ConfigFile, PolicyStatement, PrefixListDecl, RouterDecl
from repro.errors import ConfigSemanticError


@dataclass
class ResolvedConfig:
    """A validated configuration with name-resolution tables."""

    config: ConfigFile
    communities: dict[str, str] = field(default_factory=dict)
    prefix_lists: dict[str, PrefixListDecl] = field(default_factory=dict)
    policies: dict[str, PolicyStatement] = field(default_factory=dict)
    routers: dict[str, RouterDecl] = field(default_factory=dict)
    #: Routers referenced as neighbours but never declared (implicit externals).
    implicit_externals: tuple[str, ...] = ()

    @property
    def community_names(self) -> tuple[str, ...]:
        return tuple(self.communities)

    @property
    def internal_routers(self) -> tuple[str, ...]:
        return tuple(name for name, decl in self.routers.items() if not decl.external)

    @property
    def external_routers(self) -> tuple[str, ...]:
        declared = tuple(name for name, decl in self.routers.items() if decl.external)
        return declared + self.implicit_externals

    @property
    def all_nodes(self) -> tuple[str, ...]:
        return tuple(self.routers) + self.implicit_externals

    def prefixes_in_list(self, name: str) -> tuple[int, ...]:
        return self.prefix_lists[name].prefixes


def analyze(config: ConfigFile) -> ResolvedConfig:
    """Validate ``config`` and build the resolution tables."""
    resolved = ResolvedConfig(config=config)

    _index_unique(resolved.communities, [(c.name, c.value) for c in config.communities], "community")
    _index_unique(resolved.prefix_lists, [(p.name, p) for p in config.prefix_lists], "prefix-list")
    _index_unique(resolved.policies, [(p.name, p) for p in config.policies], "policy-statement")
    _index_unique(resolved.routers, [(r.name, r) for r in config.routers], "router")

    for policy in config.policies:
        _check_policy(policy, resolved)

    implicit: list[str] = []
    for router in config.routers:
        for neighbor in router.neighbors:
            if neighbor.name == router.name:
                raise ConfigSemanticError(
                    f"router {router.name!r} declares itself as a neighbour"
                )
            for policy_name in (neighbor.import_policy, neighbor.export_policy):
                if policy_name is not None and policy_name not in resolved.policies:
                    raise ConfigSemanticError(
                        f"router {router.name!r} references undeclared policy {policy_name!r}"
                    )
            if neighbor.name not in resolved.routers and neighbor.name not in implicit:
                implicit.append(neighbor.name)
    resolved.implicit_externals = tuple(implicit)
    return resolved


def _index_unique(table: dict, entries: list[tuple[str, object]], kind: str) -> None:
    for name, value in entries:
        if name in table:
            raise ConfigSemanticError(f"duplicate {kind} declaration {name!r}")
        table[name] = value


def _check_policy(policy: PolicyStatement, resolved: ResolvedConfig) -> None:
    if not policy.terms:
        raise ConfigSemanticError(f"policy-statement {policy.name!r} has no terms")
    seen_terms: set[str] = set()
    for term in policy.terms:
        if term.name in seen_terms:
            raise ConfigSemanticError(
                f"policy-statement {policy.name!r} has duplicate term {term.name!r}"
            )
        seen_terms.add(term.name)
        if term.terminal_action is None:
            raise ConfigSemanticError(
                f"term {term.name!r} of policy {policy.name!r} never accepts or rejects"
            )
        for match in term.matches:
            if match.kind == "community" and match.argument not in resolved.communities:
                raise ConfigSemanticError(
                    f"term {term.name!r} of policy {policy.name!r} matches undeclared "
                    f"community {match.argument!r}"
                )
            if match.kind == "prefix-list" and match.argument not in resolved.prefix_lists:
                raise ConfigSemanticError(
                    f"term {term.name!r} of policy {policy.name!r} matches undeclared "
                    f"prefix-list {match.argument!r}"
                )
        for action in term.actions:
            if action.kind in ("add-community", "remove-community"):
                if action.argument not in resolved.communities:
                    raise ConfigSemanticError(
                        f"term {term.name!r} of policy {policy.name!r} uses undeclared "
                        f"community {action.argument!r}"
                    )
