"""Compiler from policy-DSL configurations to verifiable network instances.

The compiler lowers a :class:`~repro.config.semantics.ResolvedConfig` into the
routing-algebra model used by the verifier:

* the declared communities become the finite community universe of a
  :func:`~repro.routing.bgp.bgp_route_family`;
* each ``policy-statement`` becomes a function over optional symbolic BGP
  routes (first-match term cascade, default reject);
* each BGP session (``router X { neighbor Y { import I; export E; } }``)
  contributes a directed edge ``Y → X`` whose transfer function composes Y's
  export policy towards X, the implicit AS-path increment, and X's import
  policy from Y; and
* ``announce prefix N`` statements define the initial routes of internal
  routers, while external routers (declared ``external`` or merely referenced)
  get fully symbolic initial announcements, optionally constrained by the
  caller.

This is the analogue of the paper's "convert the configuration files to
Timepiece's model by extracting the policy details using Batfish" step,
applied to our synthetic Internet2-style configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.config.ast import Action, MatchCondition, PolicyStatement, PolicyTerm
from repro.config.semantics import ResolvedConfig
from repro.errors import ConfigSemanticError
from repro.routing.algebra import Network, SymbolicVariable
from repro.routing.bgp import BgpRouteFamily, bgp_merge, bgp_route_family
from repro.routing.topology import Edge, Topology
from repro.symbolic import SymBV, SymBool, SymOption, ite_value

#: Route-field widths used for compiled WAN configurations.
WAN_WIDTHS = {
    "prefix_width": 8,
    "ad_width": 4,
    "lp_width": 8,
    "med_width": 4,
    "path_width": 5,
}

PolicyFunction = Callable[[SymOption], SymOption]


@dataclass
class CompiledConfig:
    """The output of the compiler."""

    network: Network
    family: BgpRouteFamily
    resolved: ResolvedConfig
    #: Compiled policy functions by name (exposed for unit testing).
    policies: dict[str, PolicyFunction]
    #: The symbolic initial announcements of external routers.
    external_announcements: dict[str, SymOption]
    #: The symbolic initial routes of internal routers, when requested.
    internal_announcements: dict[str, SymOption]

    @property
    def internal_nodes(self) -> tuple[str, ...]:
        return self.resolved.internal_routers

    @property
    def external_nodes(self) -> tuple[str, ...]:
        return self.resolved.external_routers


class PolicyCompiler:
    """Compiles one policy statement into a route-transforming function."""

    def __init__(self, resolved: ResolvedConfig, family: BgpRouteFamily) -> None:
        self._resolved = resolved
        self._family = family

    def compile(self, policy: PolicyStatement) -> PolicyFunction:
        terms = list(policy.terms)

        def apply(route: SymOption) -> SymOption:
            return self._evaluate_terms(route, terms)

        apply.__name__ = f"policy_{policy.name}"
        return apply

    # -- term cascade -------------------------------------------------------------

    def _evaluate_terms(self, route: SymOption, terms: list[PolicyTerm]) -> SymOption:
        rejected = self._family.route.none()
        if not terms:
            # Default action when no term matches: reject (Junos import default).
            return rejected
        term, rest = terms[0], terms[1:]
        matches = self._compile_matches(term.matches, route)
        outcome = self._apply_term(term, route)
        return ite_value(route.is_some & matches, outcome, self._evaluate_terms(route, rest))

    def _apply_term(self, term: PolicyTerm, route: SymOption) -> SymOption:
        terminal = term.terminal_action
        assert terminal is not None, "semantic analysis guarantees a terminal action"
        if terminal.kind == "reject":
            return self._family.route.none()
        transformed = route
        for action in term.actions:
            transformed = self._apply_action(action, transformed)
        return transformed

    def _compile_matches(self, matches: tuple[MatchCondition, ...], route: SymOption) -> SymBool:
        condition = SymBool.true()
        payload = route.payload
        for match in matches:
            if match.kind == "community":
                condition = condition & payload.communities.contains(match.argument)
            elif match.kind == "prefix":
                condition = condition & (payload.prefix == int(match.argument))
            elif match.kind == "prefix-list":
                prefixes = self._resolved.prefixes_in_list(match.argument)
                in_list = SymBool.false()
                for prefix in prefixes:
                    in_list = in_list | (payload.prefix == prefix)
                condition = condition & in_list
            else:
                raise ConfigSemanticError(f"unknown match kind {match.kind!r}")
        return condition

    def _apply_action(self, action: Action, route: SymOption) -> SymOption:
        if action.is_terminal:
            return route
        if action.kind == "set-lp":
            value = int(action.argument or 0)
            return route.map(
                lambda payload: payload.with_fields(lp=SymBV.constant(value, payload.lp.width))
            )
        if action.kind == "set-med":
            value = int(action.argument or 0)
            return route.map(
                lambda payload: payload.with_fields(med=SymBV.constant(value, payload.med.width))
            )
        if action.kind == "add-community":
            name = action.argument or ""
            return route.map(
                lambda payload: payload.with_fields(communities=payload.communities.add(name))
            )
        if action.kind == "remove-community":
            name = action.argument or ""
            return route.map(
                lambda payload: payload.with_fields(communities=payload.communities.remove(name))
            )
        if action.kind == "prepend":
            count = int(action.argument or 1)
            return route.map(
                lambda payload: payload.with_fields(
                    as_path_length=payload.as_path_length.saturating_add(count)
                )
            )
        raise ConfigSemanticError(f"unknown action kind {action.kind!r}")


def compile_config(
    resolved: ResolvedConfig,
    symbolic_internal_initials: bool = False,
    external_constraint: Callable[[SymOption], SymBool] | None = None,
    widths: dict[str, int] | None = None,
) -> CompiledConfig:
    """Lower a resolved configuration to a :class:`~repro.routing.algebra.Network`.

    ``symbolic_internal_initials`` gives every internal router an arbitrary
    (symbolic) initial route, as the BlockToExternal experiment requires ("if
    the internal nodes initially have any possible route").  Otherwise internal
    routers start from their ``announce`` statements (or no route).
    ``external_constraint`` restricts the symbolic announcements of external
    routers (e.g. "does not carry the BTE community").
    """
    family = bgp_route_family(
        communities=tuple(resolved.communities), **(widths or WAN_WIDTHS)
    )

    policy_compiler = PolicyCompiler(resolved, family)
    policies = {name: policy_compiler.compile(policy) for name, policy in resolved.policies.items()}

    topology = Topology(nodes=resolved.all_nodes)
    import_policy: dict[Edge, str | None] = {}
    export_policy: dict[Edge, str | None] = {}
    for router in resolved.routers.values():
        for neighbor in router.neighbors:
            # The session brings routes from the neighbour into this router...
            inbound: Edge = (neighbor.name, router.name)
            topology.add_edge(*inbound)
            import_policy[inbound] = neighbor.import_policy
            # ...and sends this router's routes to the neighbour.
            outbound: Edge = (router.name, neighbor.name)
            topology.add_edge(*outbound)
            export_policy[outbound] = neighbor.export_policy

    def transfer_for(edge: Edge) -> Callable[[SymOption], SymOption]:
        exporter = export_policy.get(edge)
        importer = import_policy.get(edge)

        def apply(route: SymOption) -> SymOption:
            outgoing = policies[exporter](route) if exporter else route
            moved = outgoing.map(
                lambda payload: payload.with_fields(
                    as_path_length=payload.as_path_length.saturating_add(1)
                )
            )
            return policies[importer](moved) if importer else moved

        return apply

    symbolics: list[SymbolicVariable] = []
    external_announcements: dict[str, SymOption] = {}
    internal_announcements: dict[str, SymOption] = {}

    for external in resolved.external_routers:
        announcement = family.route.fresh(f"announce.{external}")
        constraint = family.route.constraint(announcement)
        if external_constraint is not None:
            constraint = constraint & external_constraint(announcement)
        symbolics.append(
            SymbolicVariable(name=f"announce.{external}", value=announcement, constraint=constraint)
        )
        external_announcements[external] = announcement

    if symbolic_internal_initials:
        for internal in resolved.internal_routers:
            announcement = family.route.fresh(f"initial.{internal}")
            symbolics.append(
                SymbolicVariable(
                    name=f"initial.{internal}",
                    value=announcement,
                    constraint=family.route.constraint(announcement),
                )
            )
            internal_announcements[internal] = announcement

    def initial(node: str) -> SymOption:
        if node in external_announcements:
            return external_announcements[node]
        if node in internal_announcements:
            return internal_announcements[node]
        router = resolved.routers.get(node)
        if router is not None and router.announced_prefixes:
            return family.route.some(
                family.default_announcement(prefix=router.announced_prefixes[0])
            )
        return family.route.none()

    network = Network(
        topology=topology,
        route_shape=family.route,
        initial_routes=initial,
        transfer_functions=transfer_for,
        merge=bgp_merge,
        symbolics=tuple(symbolics),
    )
    return CompiledConfig(
        network=network,
        family=family,
        resolved=resolved,
        policies=policies,
        external_announcements=external_announcements,
        internal_announcements=internal_announcements,
    )


def load_config(
    source: str,
    symbolic_internal_initials: bool = False,
    external_constraint: Callable[[SymOption], SymBool] | None = None,
    widths: dict[str, int] | None = None,
) -> CompiledConfig:
    """Parse, analyse and compile configuration text in one call."""
    from repro.config.parser import parse_config
    from repro.config.semantics import analyze

    return compile_config(
        analyze(parse_config(source)),
        symbolic_internal_initials=symbolic_internal_initials,
        external_constraint=external_constraint,
        widths=widths,
    )
