"""The policy-DSL frontend: parse, analyse and compile router configurations.

This package stands in for the Junos-configuration + Batfish-extraction
pipeline of the paper's wide-area-network experiment (see DESIGN.md §2).  A
configuration written in a small Junos-inspired DSL is parsed
(:func:`parse_config`), validated (:func:`analyze`) and compiled
(:func:`compile_config` / :func:`load_config`) into a
:class:`~repro.routing.algebra.Network` whose transfer functions execute the
configured policies symbolically.  :func:`generate_wan_config` produces
synthetic Internet2-style configurations of configurable size.
"""

from repro.config.ast import (
    Action,
    CommunityDecl,
    ConfigFile,
    MatchCondition,
    NeighborDecl,
    PolicyStatement,
    PolicyTerm,
    PrefixListDecl,
    RouterDecl,
)
from repro.config.compiler import CompiledConfig, PolicyCompiler, compile_config, load_config
from repro.config.generator import (
    BOGON_PREFIXES,
    BTE_COMMUNITY,
    INTERNAL_PREFIXES,
    PEER_CLASSES,
    WanParameters,
    external_name,
    generate_wan_config,
    internal_name,
    peer_class,
)
from repro.config.lexer import Lexer, tokenize
from repro.config.parser import Parser, parse_config
from repro.config.semantics import ResolvedConfig, analyze
from repro.config.tokens import Token, TokenKind

__all__ = [
    "Token",
    "TokenKind",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_config",
    "ConfigFile",
    "CommunityDecl",
    "PrefixListDecl",
    "PolicyStatement",
    "PolicyTerm",
    "MatchCondition",
    "Action",
    "RouterDecl",
    "NeighborDecl",
    "ResolvedConfig",
    "analyze",
    "CompiledConfig",
    "PolicyCompiler",
    "compile_config",
    "load_config",
    "WanParameters",
    "generate_wan_config",
    "BTE_COMMUNITY",
    "PEER_CLASSES",
    "BOGON_PREFIXES",
    "INTERNAL_PREFIXES",
    "internal_name",
    "external_name",
    "peer_class",
]
