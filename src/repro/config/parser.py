"""Recursive-descent parser for the routing-policy configuration language.

Grammar (informally)::

    config        := declaration*
    declaration   := community | prefix-list | policy-statement | router
    community     := "community" NAME "members" VALUE ";"
    prefix-list   := "prefix-list" NAME "{" (NUMBER ";")* "}"
    policy        := "policy-statement" NAME "{" term* "}"
    term          := "term" NAME "{" ["from" "{" match* "}"] "then" "{" action* "}" "}"
    match         := ("community" NAME | "prefix-list" NAME | "prefix" NUMBER) ";"
    action        := "accept" ";" | "reject" ";"
                   | "set" ("local-preference" | "med") NUMBER ";"
                   | ("add" | "remove") "community" NAME ";"
                   | "prepend" "as-path" NUMBER ";"
    router        := "router" NAME "{" ["external" ";"] announce* neighbor* "}"
    announce      := "announce" "prefix" NUMBER ";"
    neighbor      := "neighbor" NAME "{" ["import" NAME ";"] ["export" NAME ";"] "}"
"""

from __future__ import annotations

from repro.config.ast import (
    Action,
    CommunityDecl,
    ConfigFile,
    MatchCondition,
    NeighborDecl,
    PolicyStatement,
    PolicyTerm,
    PrefixListDecl,
    RouterDecl,
    SourceLocation,
)
from repro.config.lexer import tokenize
from repro.config.tokens import Token, TokenKind
from repro.errors import ConfigSyntaxError


class Parser:
    """Parses a token stream into a :class:`ConfigFile`."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers -------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != TokenKind.EOF:
            self._index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ConfigSyntaxError:
        token = token or self._peek()
        return ConfigSyntaxError(message, token.line, token.column)

    def _expect(self, kind: TokenKind, description: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise self._error(f"expected {description}, found {token.text or 'end of input'!r}")
        return self._advance()

    def _expect_word(self, word: str) -> Token:
        token = self._peek()
        if not token.is_word(word):
            raise self._error(f"expected {word!r}, found {token.text or 'end of input'!r}")
        return self._advance()

    def _expect_name(self, description: str = "a name") -> Token:
        return self._expect(TokenKind.IDENTIFIER, description)

    def _expect_number(self, description: str = "a number") -> int:
        token = self._expect(TokenKind.NUMBER, description)
        return int(token.text)

    def _location(self, token: Token) -> SourceLocation:
        return SourceLocation(token.line, token.column)

    # -- entry point ------------------------------------------------------------------

    def parse(self) -> ConfigFile:
        config = ConfigFile()
        while True:
            token = self._peek()
            if token.kind == TokenKind.EOF:
                return config
            if token.is_word("community"):
                config.communities.append(self._parse_community())
            elif token.is_word("prefix-list"):
                config.prefix_lists.append(self._parse_prefix_list())
            elif token.is_word("policy-statement"):
                config.policies.append(self._parse_policy())
            elif token.is_word("router"):
                config.routers.append(self._parse_router())
            else:
                raise self._error(
                    f"expected a declaration (community, prefix-list, policy-statement "
                    f"or router), found {token.text!r}"
                )

    # -- declarations -------------------------------------------------------------------

    def _parse_community(self) -> CommunityDecl:
        keyword = self._expect_word("community")
        name = self._expect_name("a community name")
        self._expect_word("members")
        value = self._expect_name("a community value")
        self._expect(TokenKind.SEMICOLON, "';'")
        return CommunityDecl(name=name.text, value=value.text, location=self._location(keyword))

    def _parse_prefix_list(self) -> PrefixListDecl:
        keyword = self._expect_word("prefix-list")
        name = self._expect_name("a prefix-list name")
        self._expect(TokenKind.LEFT_BRACE, "'{'")
        prefixes: list[int] = []
        while not self._peek().kind == TokenKind.RIGHT_BRACE:
            prefixes.append(self._expect_number("a prefix"))
            self._expect(TokenKind.SEMICOLON, "';'")
        self._expect(TokenKind.RIGHT_BRACE, "'}'")
        return PrefixListDecl(
            name=name.text, prefixes=tuple(prefixes), location=self._location(keyword)
        )

    def _parse_policy(self) -> PolicyStatement:
        keyword = self._expect_word("policy-statement")
        name = self._expect_name("a policy name")
        self._expect(TokenKind.LEFT_BRACE, "'{'")
        terms: list[PolicyTerm] = []
        while self._peek().is_word("term"):
            terms.append(self._parse_term())
        self._expect(TokenKind.RIGHT_BRACE, "'}'")
        return PolicyStatement(name=name.text, terms=tuple(terms), location=self._location(keyword))

    def _parse_term(self) -> PolicyTerm:
        keyword = self._expect_word("term")
        name = self._expect_name("a term name")
        self._expect(TokenKind.LEFT_BRACE, "'{'")
        matches: tuple[MatchCondition, ...] = ()
        if self._peek().is_word("from"):
            matches = self._parse_from_block()
        self._expect_word("then")
        actions = self._parse_then_block()
        self._expect(TokenKind.RIGHT_BRACE, "'}'")
        return PolicyTerm(
            name=name.text, matches=matches, actions=actions, location=self._location(keyword)
        )

    def _parse_from_block(self) -> tuple[MatchCondition, ...]:
        self._expect_word("from")
        self._expect(TokenKind.LEFT_BRACE, "'{'")
        matches: list[MatchCondition] = []
        while self._peek().kind != TokenKind.RIGHT_BRACE:
            matches.append(self._parse_match())
        self._expect(TokenKind.RIGHT_BRACE, "'}'")
        return tuple(matches)

    def _parse_match(self) -> MatchCondition:
        token = self._peek()
        if token.is_word("community"):
            self._advance()
            name = self._expect_name("a community name")
            self._expect(TokenKind.SEMICOLON, "';'")
            return MatchCondition("community", name.text, self._location(token))
        if token.is_word("prefix-list"):
            self._advance()
            name = self._expect_name("a prefix-list name")
            self._expect(TokenKind.SEMICOLON, "';'")
            return MatchCondition("prefix-list", name.text, self._location(token))
        if token.is_word("prefix"):
            self._advance()
            value = self._expect_number("a prefix")
            self._expect(TokenKind.SEMICOLON, "';'")
            return MatchCondition("prefix", str(value), self._location(token))
        raise self._error(
            f"expected a match condition (community, prefix-list or prefix), found {token.text!r}"
        )

    def _parse_then_block(self) -> tuple[Action, ...]:
        self._expect(TokenKind.LEFT_BRACE, "'{'")
        actions: list[Action] = []
        while self._peek().kind != TokenKind.RIGHT_BRACE:
            actions.append(self._parse_action())
        self._expect(TokenKind.RIGHT_BRACE, "'}'")
        return tuple(actions)

    def _parse_action(self) -> Action:
        token = self._peek()
        if token.is_word("accept") or token.is_word("reject"):
            self._advance()
            self._expect(TokenKind.SEMICOLON, "';'")
            return Action(token.text, None, self._location(token))
        if token.is_word("set"):
            self._advance()
            attribute = self._peek()
            if attribute.is_word("local-preference"):
                self._advance()
                value = self._expect_number("a local-preference value")
                self._expect(TokenKind.SEMICOLON, "';'")
                return Action("set-lp", str(value), self._location(token))
            if attribute.is_word("med"):
                self._advance()
                value = self._expect_number("a MED value")
                self._expect(TokenKind.SEMICOLON, "';'")
                return Action("set-med", str(value), self._location(token))
            raise self._error(
                f"expected 'local-preference' or 'med' after 'set', found {attribute.text!r}"
            )
        if token.is_word("add") or token.is_word("remove"):
            self._advance()
            self._expect_word("community")
            name = self._expect_name("a community name")
            self._expect(TokenKind.SEMICOLON, "';'")
            return Action(f"{token.text}-community", name.text, self._location(token))
        if token.is_word("prepend"):
            self._advance()
            self._expect_word("as-path")
            count = self._expect_number("a prepend count")
            self._expect(TokenKind.SEMICOLON, "';'")
            return Action("prepend", str(count), self._location(token))
        raise self._error(f"expected an action, found {token.text!r}")

    def _parse_router(self) -> RouterDecl:
        keyword = self._expect_word("router")
        name = self._expect_name("a router name")
        self._expect(TokenKind.LEFT_BRACE, "'{'")
        external = False
        announced: list[int] = []
        neighbors: list[NeighborDecl] = []
        while self._peek().kind != TokenKind.RIGHT_BRACE:
            token = self._peek()
            if token.is_word("external"):
                self._advance()
                self._expect(TokenKind.SEMICOLON, "';'")
                external = True
            elif token.is_word("announce"):
                self._advance()
                self._expect_word("prefix")
                announced.append(self._expect_number("a prefix"))
                self._expect(TokenKind.SEMICOLON, "';'")
            elif token.is_word("neighbor"):
                neighbors.append(self._parse_neighbor())
            else:
                raise self._error(
                    f"expected 'external', 'announce' or 'neighbor', found {token.text!r}"
                )
        self._expect(TokenKind.RIGHT_BRACE, "'}'")
        return RouterDecl(
            name=name.text,
            external=external,
            announced_prefixes=tuple(announced),
            neighbors=tuple(neighbors),
            location=self._location(keyword),
        )

    def _parse_neighbor(self) -> NeighborDecl:
        keyword = self._expect_word("neighbor")
        name = self._expect_name("a neighbour name")
        self._expect(TokenKind.LEFT_BRACE, "'{'")
        import_policy: str | None = None
        export_policy: str | None = None
        while self._peek().kind != TokenKind.RIGHT_BRACE:
            token = self._peek()
            if token.is_word("import"):
                self._advance()
                import_policy = self._expect_name("a policy name").text
                self._expect(TokenKind.SEMICOLON, "';'")
            elif token.is_word("export"):
                self._advance()
                export_policy = self._expect_name("a policy name").text
                self._expect(TokenKind.SEMICOLON, "';'")
            else:
                raise self._error(f"expected 'import' or 'export', found {token.text!r}")
        self._expect(TokenKind.RIGHT_BRACE, "'}'")
        return NeighborDecl(
            name=name.text,
            import_policy=import_policy,
            export_policy=export_policy,
            location=self._location(keyword),
        )


def parse_config(source: str) -> ConfigFile:
    """Parse configuration text into an AST."""
    return Parser(tokenize(source)).parse()
