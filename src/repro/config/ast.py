"""Abstract syntax for the routing-policy configuration language.

A configuration file consists of four kinds of top-level declarations:

* ``community NAME members VALUE;`` — declares a BGP community;
* ``prefix-list NAME { N; N; ... }`` — declares a set of abstract prefixes;
* ``policy-statement NAME { term ... }`` — declares a route policy, a list of
  match/action terms evaluated first-match-first; and
* ``router NAME { ... }`` — declares a router, its announced prefixes and its
  neighbours with the import/export policies applied on each session.

The AST is deliberately plain data (frozen dataclasses) so the semantic
analyser and compiler can be tested independently of parsing.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SourceLocation:
    """Line/column of the construct, for error messages."""

    line: int
    column: int


@dataclass(frozen=True)
class CommunityDecl:
    """``community NAME members VALUE;``"""

    name: str
    value: str
    location: SourceLocation


@dataclass(frozen=True)
class PrefixListDecl:
    """``prefix-list NAME { 10; 20; ... }``"""

    name: str
    prefixes: tuple[int, ...]
    location: SourceLocation


# -- policy statements ----------------------------------------------------------


@dataclass(frozen=True)
class MatchCondition:
    """A single ``from`` condition."""

    kind: str  # "community" | "prefix-list" | "prefix"
    argument: str
    location: SourceLocation


@dataclass(frozen=True)
class Action:
    """A single ``then`` action."""

    kind: str  # "accept" | "reject" | "set-lp" | "set-med" | "add-community"
    #           | "remove-community" | "prepend"
    argument: str | None
    location: SourceLocation

    @property
    def is_terminal(self) -> bool:
        return self.kind in ("accept", "reject")


@dataclass(frozen=True)
class PolicyTerm:
    """``term NAME { from {...} then {...} }``"""

    name: str
    matches: tuple[MatchCondition, ...]
    actions: tuple[Action, ...]
    location: SourceLocation

    @property
    def terminal_action(self) -> Action | None:
        for action in self.actions:
            if action.is_terminal:
                return action
        return None


@dataclass(frozen=True)
class PolicyStatement:
    """``policy-statement NAME { term...; }``"""

    name: str
    terms: tuple[PolicyTerm, ...]
    location: SourceLocation


# -- routers -------------------------------------------------------------------


@dataclass(frozen=True)
class NeighborDecl:
    """``neighbor NAME { import POLICY; export POLICY; }``"""

    name: str
    import_policy: str | None
    export_policy: str | None
    location: SourceLocation


@dataclass(frozen=True)
class RouterDecl:
    """``router NAME { [external;] [announce prefix N;] neighbor...; }``"""

    name: str
    external: bool
    announced_prefixes: tuple[int, ...]
    neighbors: tuple[NeighborDecl, ...]
    location: SourceLocation


@dataclass
class ConfigFile:
    """A parsed configuration: all declarations in source order."""

    communities: list[CommunityDecl] = field(default_factory=list)
    prefix_lists: list[PrefixListDecl] = field(default_factory=list)
    policies: list[PolicyStatement] = field(default_factory=list)
    routers: list[RouterDecl] = field(default_factory=list)

    def policy_names(self) -> list[str]:
        return [policy.name for policy in self.policies]

    def router_names(self) -> list[str]:
        return [router.name for router in self.routers]

    def statistics(self) -> dict[str, int]:
        """Simple size metrics, reported by the WAN benchmark harness."""
        return {
            "communities": len(self.communities),
            "prefix_lists": len(self.prefix_lists),
            "policies": len(self.policies),
            "terms": sum(len(policy.terms) for policy in self.policies),
            "routers": len(self.routers),
            "sessions": sum(len(router.neighbors) for router in self.routers),
        }
