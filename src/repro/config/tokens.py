"""Token definitions for the routing-policy configuration language.

The language is a small, Junos-inspired DSL used to stand in for the
Internet2 configuration files of the paper's wide-area-network experiment
(the real files are proprietary-adjacent and require Batfish to parse; see
DESIGN.md §2 for the substitution).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class TokenKind(Enum):
    """Lexical categories of the policy DSL."""

    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    LEFT_BRACE = "{"
    RIGHT_BRACE = "}"
    SEMICOLON = ";"
    EOF = "eof"


#: Words with special meaning.  They are lexed as identifiers and recognised
#: by the parser, so they may still be used as names where unambiguous.
KEYWORDS = frozenset(
    {
        "community",
        "members",
        "prefix-list",
        "policy-statement",
        "term",
        "from",
        "then",
        "accept",
        "reject",
        "set",
        "add",
        "remove",
        "local-preference",
        "med",
        "prepend",
        "as-path",
        "prefix",
        "router",
        "neighbor",
        "import",
        "export",
        "announce",
        "external",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based line/column)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_word(self, word: str) -> bool:
        """True when this token is the identifier ``word``."""
        return self.kind == TokenKind.IDENTIFIER and self.text == word

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"
