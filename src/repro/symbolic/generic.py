"""Generic operations over any symbolic value.

The modelling layer has six value kinds (booleans, bitvectors, enums,
options, finite sets and records).  Network policies need two operations that
work uniformly across all of them:

* :func:`ite_value` — a symbolic if-then-else that selects whole values; and
* :func:`values_equal` — structural equality as a :class:`SymBool`.

Scalar kinds are handled here directly; composite kinds implement the
``_select``/``_eq_value`` protocol and are dispatched to dynamically, which
keeps the module import graph acyclic.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SymbolicError
from repro.smt import builder
from repro.symbolic.values import SymBV, SymBool, SymEnum


def _lift_like(value: Any, reference: Any) -> Any:
    """Lift a plain Python ``bool``/``int`` to the symbolic kind of ``reference``."""
    if isinstance(value, SymBool) or isinstance(value, SymBV) or isinstance(value, SymEnum):
        return value
    if isinstance(reference, SymBool) and isinstance(value, bool):
        return SymBool.constant(value)
    if isinstance(reference, SymBV) and isinstance(value, (int, bool)) and not isinstance(value, SymBV):
        return SymBV.constant(int(value), reference.width)
    if isinstance(reference, SymEnum) and isinstance(value, str):
        return reference.enum_type.constant(value)
    return value


def ite_value(cond: SymBool, then_value: Any, else_value: Any) -> Any:
    """Return a symbolic value equal to ``then_value`` when ``cond`` holds.

    Works over every symbolic value kind, including nested records/options.
    Plain Python ``bool``/``int``/``str`` operands are lifted against the
    other branch, so policies may freely mix literals with symbolic values.
    """
    then_value = _lift_like(then_value, else_value)
    else_value = _lift_like(else_value, then_value)
    if isinstance(then_value, SymBool):
        return SymBool(builder.ite(cond.term, then_value.term, SymBool.lift(else_value).term))
    if isinstance(then_value, SymBV):
        if not isinstance(else_value, (SymBV, int)):
            raise SymbolicError(f"ite branches disagree: {then_value!r} vs {else_value!r}")
        coerced = then_value._coerce(else_value)
        return SymBV(builder.ite(cond.term, then_value.term, coerced.term))
    if isinstance(then_value, SymEnum):
        if not isinstance(else_value, SymEnum) or else_value.enum_type is not then_value.enum_type:
            raise SymbolicError("ite branches must be members of the same enum")
        return SymEnum(then_value.enum_type, ite_value(cond, then_value.index, else_value.index))
    if hasattr(then_value, "_select"):
        return then_value._select(cond, else_value)
    raise SymbolicError(f"cannot build an ite over values of type {type(then_value).__name__}")


def values_equal(left: Any, right: Any) -> SymBool:
    """Structural equality of two symbolic values of the same kind."""
    left = _lift_like(left, right)
    right = _lift_like(right, left)
    if isinstance(left, (SymBool, SymBV, SymEnum)):
        return left == right  # type: ignore[return-value]
    if hasattr(left, "_eq_value"):
        return left._eq_value(right)
    raise SymbolicError(f"cannot compare values of type {type(left).__name__}")
