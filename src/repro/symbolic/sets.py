"""Symbolic finite sets over a fixed universe of named elements.

BGP communities are modelled in the paper as a ``set<string>`` (Table 3).
Because the set of community strings that any given benchmark manipulates is
known statically, we encode a set as one membership boolean per universe
element — the standard finite-set encoding used by Minesweeper and NV.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import SymbolicError
from repro.smt.model import Model
from repro.symbolic.context import fresh_name
from repro.symbolic.values import SymBool, all_of


class SymSet:
    """A symbolic subset of a fixed, ordered universe of element names."""

    __slots__ = ("universe", "_membership")

    def __init__(self, universe: tuple[str, ...], membership: Mapping[str, SymBool]) -> None:
        if set(universe) != set(membership):
            raise SymbolicError("membership map must cover exactly the universe")
        self.universe = tuple(universe)
        self._membership = {name: membership[name] for name in self.universe}

    # -- construction -----------------------------------------------------------

    @staticmethod
    def empty(universe: Iterable[str]) -> "SymSet":
        names = tuple(universe)
        return SymSet(names, {name: SymBool.false() for name in names})

    @staticmethod
    def of(universe: Iterable[str], members: Iterable[str]) -> "SymSet":
        names = tuple(universe)
        wanted = set(members)
        unknown = wanted - set(names)
        if unknown:
            raise SymbolicError(f"elements {sorted(unknown)} are not in the set universe")
        return SymSet(names, {name: SymBool.constant(name in wanted) for name in names})

    @staticmethod
    def fresh(universe: Iterable[str], prefix: str = "set") -> "SymSet":
        names = tuple(universe)
        base = fresh_name(prefix)
        return SymSet(names, {name: SymBool.variable(f"{base}.{name}") for name in names})

    # -- queries ----------------------------------------------------------------

    def contains(self, element: str) -> SymBool:
        self._check_element(element)
        return self._membership[element]

    def __contains__(self, element: str) -> SymBool:  # type: ignore[override]
        return self.contains(element)

    def is_empty(self) -> SymBool:
        return all_of(~flag for flag in self._membership.values())

    def is_subset_of(self, other: "SymSet") -> SymBool:
        self._check_universe(other)
        return all_of(
            self._membership[name].implies(other._membership[name]) for name in self.universe
        )

    # -- updates ----------------------------------------------------------------

    def add(self, element: str) -> "SymSet":
        self._check_element(element)
        updated = dict(self._membership)
        updated[element] = SymBool.true()
        return SymSet(self.universe, updated)

    def remove(self, element: str) -> "SymSet":
        self._check_element(element)
        updated = dict(self._membership)
        updated[element] = SymBool.false()
        return SymSet(self.universe, updated)

    def union(self, other: "SymSet") -> "SymSet":
        self._check_universe(other)
        return SymSet(
            self.universe,
            {name: self._membership[name] | other._membership[name] for name in self.universe},
        )

    def intersection(self, other: "SymSet") -> "SymSet":
        self._check_universe(other)
        return SymSet(
            self.universe,
            {name: self._membership[name] & other._membership[name] for name in self.universe},
        )

    def difference(self, other: "SymSet") -> "SymSet":
        self._check_universe(other)
        return SymSet(
            self.universe,
            {name: self._membership[name] & ~other._membership[name] for name in self.universe},
        )

    # -- generic protocol ---------------------------------------------------------

    def _select(self, cond: SymBool, other: "SymSet") -> "SymSet":
        self._check_universe(other)
        return SymSet(
            self.universe,
            {
                name: cond.ite(self._membership[name], other._membership[name])
                for name in self.universe
            },
        )

    def _eq_value(self, other: "SymSet") -> SymBool:
        self._check_universe(other)
        return all_of(
            self._membership[name].iff(other._membership[name]) for name in self.universe
        )

    def __eq__(self, other: object) -> SymBool:  # type: ignore[override]
        if not isinstance(other, SymSet):
            return SymBool.false()
        return self._eq_value(other)

    def __ne__(self, other: object) -> SymBool:  # type: ignore[override]
        return ~self._eq_value(other)  # type: ignore[arg-type]

    def __hash__(self) -> int:
        return hash((self.universe, tuple(flag.term for flag in self._membership.values())))

    # -- inspection ---------------------------------------------------------------

    def is_concrete(self) -> bool:
        return all(flag.is_concrete() for flag in self._membership.values())

    def concrete_value(self) -> frozenset[str]:
        return frozenset(
            name for name, flag in self._membership.items() if flag.concrete_value()
        )

    def eval(self, model: Model) -> frozenset[str]:
        return frozenset(name for name, flag in self._membership.items() if flag.eval(model))

    def __repr__(self) -> str:
        return f"SymSet({list(self.universe)!r})"

    # -- helpers ------------------------------------------------------------------

    def _check_element(self, element: str) -> None:
        if element not in self._membership:
            raise SymbolicError(f"element {element!r} is not in the set universe {self.universe}")

    def _check_universe(self, other: "SymSet") -> None:
        if self.universe != other.universe:
            raise SymbolicError("set operations require identical universes")
