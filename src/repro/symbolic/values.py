"""Scalar symbolic values: booleans, bitvectors and enumerations.

These classes play the role of Zen's ``Zen<T>`` wrappers in the original
Timepiece implementation: they let network models be written with ordinary
Python operators while building SMT terms underneath.  The same code runs on
fully concrete inputs (constant terms) — the smart constructors fold
constants — which is how the concrete simulator and the verifier share one
definition of every policy.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import SymbolicError
from repro.smt import builder
from repro.smt.model import Model
from repro.smt.sorts import BOOL, BitVecSort
from repro.smt.terms import Term
from repro.symbolic.context import fresh_name


class SymBool:
    """A symbolic boolean."""

    __slots__ = ("term",)

    def __init__(self, term: Term) -> None:
        if term.sort != BOOL:
            raise SymbolicError(f"SymBool needs a boolean term, got sort {term.sort!r}")
        self.term = term

    # -- construction -----------------------------------------------------------

    @staticmethod
    def constant(value: bool) -> "SymBool":
        return SymBool(builder.bool_const(bool(value)))

    @staticmethod
    def true() -> "SymBool":
        return SymBool(builder.true())

    @staticmethod
    def false() -> "SymBool":
        return SymBool(builder.false())

    @staticmethod
    def fresh(prefix: str = "b") -> "SymBool":
        return SymBool(builder.bool_var(fresh_name(prefix)))

    @staticmethod
    def variable(name: str) -> "SymBool":
        return SymBool(builder.bool_var(name))

    @staticmethod
    def lift(value: "SymBool | bool") -> "SymBool":
        if isinstance(value, SymBool):
            return value
        if isinstance(value, bool):
            return SymBool.constant(value)
        raise SymbolicError(f"cannot lift {value!r} to SymBool")

    # -- logic ------------------------------------------------------------------

    def __and__(self, other: "SymBool | bool") -> "SymBool":
        return SymBool(builder.and_(self.term, SymBool.lift(other).term))

    __rand__ = __and__

    def __or__(self, other: "SymBool | bool") -> "SymBool":
        return SymBool(builder.or_(self.term, SymBool.lift(other).term))

    __ror__ = __or__

    def __xor__(self, other: "SymBool | bool") -> "SymBool":
        return SymBool(builder.xor(self.term, SymBool.lift(other).term))

    __rxor__ = __xor__

    def __invert__(self) -> "SymBool":
        return SymBool(builder.not_(self.term))

    def implies(self, other: "SymBool | bool") -> "SymBool":
        return SymBool(builder.implies(self.term, SymBool.lift(other).term))

    def iff(self, other: "SymBool | bool") -> "SymBool":
        return SymBool(builder.iff(self.term, SymBool.lift(other).term))

    def ite(self, then_value: "SymBool | bool", else_value: "SymBool | bool") -> "SymBool":
        return SymBool(
            builder.ite(self.term, SymBool.lift(then_value).term, SymBool.lift(else_value).term)
        )

    def __eq__(self, other: object) -> "SymBool":  # type: ignore[override]
        return self.iff(SymBool.lift(other))  # type: ignore[arg-type]

    def __ne__(self, other: object) -> "SymBool":  # type: ignore[override]
        return ~(self == other)  # type: ignore[operator]

    def __hash__(self) -> int:
        return hash(self.term)

    def __bool__(self) -> bool:
        """Pythonic truthiness only works for concrete values."""
        if self.term.is_bool_const():
            return self.term.bool_value()
        raise SymbolicError(
            "cannot convert a non-constant SymBool to a Python bool; "
            "use .ite(...) or builder combinators instead of `if`"
        )

    # -- inspection ---------------------------------------------------------------

    def is_concrete(self) -> bool:
        return self.term.is_bool_const()

    def concrete_value(self) -> bool:
        if not self.is_concrete():
            raise SymbolicError(f"SymBool is not concrete: {self.term!r}")
        return self.term.bool_value()

    def eval(self, model: Model) -> bool:
        return bool(model.evaluate(self.term))

    def __repr__(self) -> str:
        return f"SymBool({self.term!r})"


def all_of(values: Iterable["SymBool | bool"]) -> SymBool:
    """Conjunction of an iterable of symbolic booleans."""
    return SymBool(builder.and_(*[SymBool.lift(v).term for v in values]))


def any_of(values: Iterable["SymBool | bool"]) -> SymBool:
    """Disjunction of an iterable of symbolic booleans."""
    return SymBool(builder.or_(*[SymBool.lift(v).term for v in values]))


class SymBV:
    """A symbolic fixed-width unsigned bitvector."""

    __slots__ = ("term",)

    def __init__(self, term: Term) -> None:
        if not isinstance(term.sort, BitVecSort):
            raise SymbolicError(f"SymBV needs a bitvector term, got sort {term.sort!r}")
        self.term = term

    # -- construction -----------------------------------------------------------

    @staticmethod
    def constant(value: int, width: int) -> "SymBV":
        return SymBV(builder.bv_const(value, width))

    @staticmethod
    def fresh(width: int, prefix: str = "x") -> "SymBV":
        return SymBV(builder.bv_var(fresh_name(prefix), width))

    @staticmethod
    def variable(name: str, width: int) -> "SymBV":
        return SymBV(builder.bv_var(name, width))

    @property
    def width(self) -> int:
        return self.term.width()

    def _coerce(self, other: "SymBV | int") -> "SymBV":
        if isinstance(other, SymBV):
            if other.width != self.width:
                raise SymbolicError(f"width mismatch: {self.width} vs {other.width}")
            return other
        if isinstance(other, int):
            return SymBV.constant(other, self.width)
        raise SymbolicError(f"cannot coerce {other!r} to SymBV")

    # -- arithmetic ---------------------------------------------------------------

    def __add__(self, other: "SymBV | int") -> "SymBV":
        return SymBV(builder.bv_add(self.term, self._coerce(other).term))

    __radd__ = __add__

    def __sub__(self, other: "SymBV | int") -> "SymBV":
        return SymBV(builder.bv_sub(self.term, self._coerce(other).term))

    def saturating_add(self, other: "SymBV | int") -> "SymBV":
        """Addition clamped at the maximum representable value."""
        return SymBV(builder.bv_saturating_add(self.term, self._coerce(other).term))

    def min(self, other: "SymBV | int") -> "SymBV":
        return SymBV(builder.bv_min(self.term, self._coerce(other).term))

    def max(self, other: "SymBV | int") -> "SymBV":
        return SymBV(builder.bv_max(self.term, self._coerce(other).term))

    # -- comparisons --------------------------------------------------------------

    def __lt__(self, other: "SymBV | int") -> SymBool:
        return SymBool(builder.bv_ult(self.term, self._coerce(other).term))

    def __le__(self, other: "SymBV | int") -> SymBool:
        return SymBool(builder.bv_ule(self.term, self._coerce(other).term))

    def __gt__(self, other: "SymBV | int") -> SymBool:
        return SymBool(builder.bv_ugt(self.term, self._coerce(other).term))

    def __ge__(self, other: "SymBV | int") -> SymBool:
        return SymBool(builder.bv_uge(self.term, self._coerce(other).term))

    def __eq__(self, other: object) -> SymBool:  # type: ignore[override]
        if not isinstance(other, (SymBV, int)):
            return SymBool.false()
        return SymBool(builder.eq(self.term, self._coerce(other).term))

    def __ne__(self, other: object) -> SymBool:  # type: ignore[override]
        return ~(self == other)  # type: ignore[operator]

    def __hash__(self) -> int:
        return hash(self.term)

    def ite(self, cond: SymBool, other: "SymBV | int") -> "SymBV":
        """``cond ? self : other`` (kept for symmetry; prefer :func:`ite_value`)."""
        return SymBV(builder.ite(cond.term, self.term, self._coerce(other).term))

    # -- inspection ---------------------------------------------------------------

    def is_concrete(self) -> bool:
        return self.term.is_bv_const()

    def concrete_value(self) -> int:
        if not self.is_concrete():
            raise SymbolicError(f"SymBV is not concrete: {self.term!r}")
        return self.term.bv_value()

    def eval(self, model: Model) -> int:
        return int(model.evaluate(self.term))

    def __repr__(self) -> str:
        return f"SymBV({self.term!r})"


class EnumType:
    """A finite enumeration, encoded as a bitvector of minimal width.

    Instances are shared descriptors (one per enumeration), while the values
    flowing through models are :class:`SymEnum` objects referring back to
    their :class:`EnumType`.
    """

    def __init__(self, name: str, members: Sequence[str]) -> None:
        if not members:
            raise SymbolicError(f"enum {name!r} needs at least one member")
        if len(set(members)) != len(members):
            raise SymbolicError(f"enum {name!r} has duplicate members")
        self.name = name
        self.members = tuple(members)
        self.width = max(1, (len(members) - 1).bit_length())

    def index_of(self, member: str) -> int:
        try:
            return self.members.index(member)
        except ValueError:
            raise SymbolicError(f"{member!r} is not a member of enum {self.name!r}") from None

    def constant(self, member: str) -> "SymEnum":
        return SymEnum(self, SymBV.constant(self.index_of(member), self.width))

    def fresh(self, prefix: str | None = None) -> "SymEnum":
        value = SymBV.fresh(self.width, prefix or self.name)
        return SymEnum(self, value)

    def variable(self, name: str) -> "SymEnum":
        return SymEnum(self, SymBV.variable(name, self.width))

    def in_range(self, value: "SymEnum") -> SymBool:
        """Constraint that a symbolic enum encodes one of the declared members."""
        return value.index < len(self.members)

    def __repr__(self) -> str:
        return f"EnumType({self.name!r}, {list(self.members)!r})"


class SymEnum:
    """A symbolic member of an :class:`EnumType`."""

    __slots__ = ("enum_type", "index")

    def __init__(self, enum_type: EnumType, index: SymBV) -> None:
        if index.width != enum_type.width:
            raise SymbolicError(
                f"enum {enum_type.name!r} expects width {enum_type.width}, got {index.width}"
            )
        self.enum_type = enum_type
        self.index = index

    def is_member(self, member: str) -> SymBool:
        return self.index == self.enum_type.index_of(member)

    def __eq__(self, other: object) -> SymBool:  # type: ignore[override]
        if isinstance(other, str):
            return self.is_member(other)
        if isinstance(other, SymEnum):
            if other.enum_type is not self.enum_type:
                raise SymbolicError("cannot compare members of different enums")
            return self.index == other.index
        return SymBool.false()

    def __ne__(self, other: object) -> SymBool:  # type: ignore[override]
        return ~(self == other)  # type: ignore[operator]

    def __hash__(self) -> int:
        return hash((self.enum_type.name, self.index.term))

    def is_concrete(self) -> bool:
        return self.index.is_concrete()

    def concrete_value(self) -> str:
        position = self.index.concrete_value()
        if position >= len(self.enum_type.members):
            raise SymbolicError(f"enum index {position} out of range for {self.enum_type.name!r}")
        return self.enum_type.members[position]

    def eval(self, model: Model) -> str:
        position = self.index.eval(model)
        members = self.enum_type.members
        return members[position] if position < len(members) else members[-1]

    def __repr__(self) -> str:
        return f"SymEnum({self.enum_type.name}, {self.index.term!r})"
