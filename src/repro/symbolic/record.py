"""Symbolic records with named fields.

Routes in realistic protocols are records (the paper's eBGP route has seven
fields — Table 3).  A :class:`SymRecord` is an immutable bundle of named
symbolic values with attribute-style access (``route.lp``), functional update
(:meth:`with_fields`) and the generic ``_select``/``_eq_value`` protocol so
whole routes can be selected by merge functions.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import SymbolicError
from repro.smt.model import Model
from repro.symbolic.generic import _lift_like, ite_value, values_equal
from repro.symbolic.values import SymBool, all_of


class SymRecord:
    """An immutable record of named symbolic fields."""

    __slots__ = ("_type_name", "_fields")

    def __init__(self, type_name: str, fields: Mapping[str, Any]) -> None:
        if not fields:
            raise SymbolicError(f"record {type_name!r} must have at least one field")
        object.__setattr__(self, "_type_name", type_name)
        object.__setattr__(self, "_fields", dict(fields))

    # -- field access -------------------------------------------------------------

    @property
    def type_name(self) -> str:
        return self._type_name

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(self._fields)

    def field(self, name: str) -> Any:
        try:
            return self._fields[name]
        except KeyError:
            raise SymbolicError(
                f"record {self._type_name!r} has no field {name!r}; "
                f"fields are {list(self._fields)}"
            ) from None

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.field(name)

    def __setattr__(self, name: str, value: Any) -> None:
        raise SymbolicError("records are immutable; use with_fields(...) instead")

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(self._fields.items())

    def with_fields(self, **updates: Any) -> "SymRecord":
        """A copy of this record with the given fields replaced.

        Plain Python ``bool``/``int``/``str`` values are lifted to the symbolic
        kind of the field they replace, so policies can write
        ``route.with_fields(lp=200, tag=True)``.
        """
        unknown = set(updates) - set(self._fields)
        if unknown:
            raise SymbolicError(
                f"record {self._type_name!r} has no fields {sorted(unknown)}"
            )
        merged = dict(self._fields)
        for name, value in updates.items():
            merged[name] = _lift_like(value, self._fields[name])
        return SymRecord(self._type_name, merged)

    # -- generic protocol -----------------------------------------------------------

    def _check_compatible(self, other: "SymRecord") -> None:
        if not isinstance(other, SymRecord) or other.field_names != self.field_names:
            raise SymbolicError(
                f"incompatible records: {self._type_name!r} vs "
                f"{getattr(other, '_type_name', type(other).__name__)!r}"
            )

    def _select(self, cond: SymBool, other: "SymRecord") -> "SymRecord":
        self._check_compatible(other)
        return SymRecord(
            self._type_name,
            {name: ite_value(cond, value, other._fields[name]) for name, value in self._fields.items()},
        )

    def _eq_value(self, other: "SymRecord") -> SymBool:
        self._check_compatible(other)
        return all_of(
            values_equal(value, other._fields[name]) for name, value in self._fields.items()
        )

    def __eq__(self, other: object) -> SymBool:  # type: ignore[override]
        if not isinstance(other, SymRecord):
            return SymBool.false()
        return self._eq_value(other)

    def __ne__(self, other: object) -> SymBool:  # type: ignore[override]
        return ~self._eq_value(other)  # type: ignore[arg-type]

    def __hash__(self) -> int:
        return hash((self._type_name, tuple(self._fields)))

    # -- inspection -------------------------------------------------------------------

    def is_concrete(self) -> bool:
        return all(_is_concrete(value) for value in self._fields.values())

    def eval(self, model: Model) -> dict[str, Any]:
        """Evaluate every field under a model, returning plain Python values."""
        return {name: _eval(value, model) for name, value in self._fields.items()}

    def concrete_value(self) -> dict[str, Any]:
        """Extract plain Python values from a fully concrete record."""
        return {name: _concrete(value) for name, value in self._fields.items()}

    def __repr__(self) -> str:
        return f"SymRecord({self._type_name}, fields={list(self._fields)})"


def _is_concrete(value: Any) -> bool:
    probe = getattr(value, "is_concrete", None)
    if probe is None:
        raise SymbolicError(f"field value {value!r} does not support concreteness checks")
    return bool(probe())


def _eval(value: Any, model: Model) -> Any:
    probe = getattr(value, "eval", None)
    if probe is None:
        raise SymbolicError(f"field value {value!r} does not support model evaluation")
    return probe(model)


def _concrete(value: Any) -> Any:
    probe = getattr(value, "concrete_value", None)
    if probe is None:
        raise SymbolicError(f"field value {value!r} does not support concrete extraction")
    return probe()
