"""The symbolic modelling layer (the analogue of Microsoft's Zen library).

Network models — initial routes, transfer functions, merge functions,
interfaces and properties — are written once over the symbolic value classes
exported here.  Running them on constant inputs folds to concrete values
(that is how the simulator works); running them on fresh symbolic variables
produces SMT terms for the verification conditions.
"""

from repro.symbolic.context import exact_names, fresh_name, reset_fresh_names
from repro.symbolic.generic import ite_value, values_equal
from repro.symbolic.option import SymOption
from repro.symbolic.record import SymRecord
from repro.symbolic.sets import SymSet
from repro.symbolic.shapes import (
    BitVecShape,
    BoolShape,
    EnumShape,
    OptionShape,
    RecordShape,
    SetShape,
    Shape,
    enum,
    record,
)
from repro.symbolic.values import EnumType, SymBV, SymBool, SymEnum, all_of, any_of

__all__ = [
    "exact_names",
    "fresh_name",
    "reset_fresh_names",
    "ite_value",
    "values_equal",
    "SymBool",
    "SymBV",
    "SymEnum",
    "EnumType",
    "SymOption",
    "SymRecord",
    "SymSet",
    "all_of",
    "any_of",
    "Shape",
    "BoolShape",
    "BitVecShape",
    "EnumShape",
    "OptionShape",
    "RecordShape",
    "SetShape",
    "record",
    "enum",
]
