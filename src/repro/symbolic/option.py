"""Symbolic optional values.

Routing algebras use a distinguished "no route" element (written ``∞`` in the
paper).  We model routes as ``Option[payload]``: a symbolic boolean
``is_some`` plus a payload value that is meaningful only when ``is_some``
holds.  This mirrors Zen's ``Option<T>`` and keeps merge/transfer functions
total.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SymbolicError
from repro.smt.model import Model
from repro.symbolic.generic import ite_value, values_equal
from repro.symbolic.values import SymBool


class SymOption:
    """A symbolic value that is either absent (``∞``) or a payload."""

    __slots__ = ("is_some", "payload")

    def __init__(self, is_some: SymBool | bool, payload: Any) -> None:
        self.is_some = SymBool.lift(is_some)
        self.payload = payload

    # -- construction -----------------------------------------------------------

    @staticmethod
    def some(payload: Any) -> "SymOption":
        return SymOption(SymBool.true(), payload)

    @staticmethod
    def none(filler_payload: Any) -> "SymOption":
        """The absent value.  ``filler_payload`` is an arbitrary don't-care payload."""
        return SymOption(SymBool.false(), filler_payload)

    # -- queries ----------------------------------------------------------------

    @property
    def is_none(self) -> SymBool:
        return ~self.is_some

    def value_or(self, default: Any) -> Any:
        return ite_value(self.is_some, self.payload, default)

    def match(self, if_none: Any, if_some: Callable[[Any], Any]) -> Any:
        """Case analysis producing any symbolic value kind."""
        return ite_value(self.is_some, if_some(self.payload), if_none)

    def map(self, mapper: Callable[[Any], Any]) -> "SymOption":
        """Apply ``mapper`` to the payload, preserving absence."""
        return SymOption(self.is_some, mapper(self.payload))

    def bind(self, mapper: Callable[[Any], "SymOption"]) -> "SymOption":
        """Monadic bind: absent stays absent, present may become absent."""
        mapped = mapper(self.payload)
        if not isinstance(mapped, SymOption):
            raise SymbolicError("bind mapper must return a SymOption")
        return SymOption(self.is_some & mapped.is_some, mapped.payload)

    def where(self, predicate: Callable[[Any], SymBool]) -> "SymOption":
        """Drop the payload (become ``∞``) unless ``predicate`` holds of it."""
        return SymOption(self.is_some & predicate(self.payload), self.payload)

    # -- generic protocol ---------------------------------------------------------

    def _select(self, cond: SymBool, other: "SymOption") -> "SymOption":
        if not isinstance(other, SymOption):
            raise SymbolicError("ite branches must both be options")
        return SymOption(
            cond.ite(self.is_some, other.is_some),
            ite_value(cond, self.payload, other.payload),
        )

    def _eq_value(self, other: "SymOption") -> SymBool:
        if not isinstance(other, SymOption):
            raise SymbolicError("cannot compare an option with a non-option")
        payloads_equal = values_equal(self.payload, other.payload)
        return self.is_some.iff(other.is_some) & (self.is_none | payloads_equal)

    def __eq__(self, other: object) -> SymBool:  # type: ignore[override]
        if not isinstance(other, SymOption):
            return SymBool.false()
        return self._eq_value(other)

    def __ne__(self, other: object) -> SymBool:  # type: ignore[override]
        return ~self._eq_value(other)  # type: ignore[arg-type]

    def __hash__(self) -> int:
        return hash((self.is_some.term, id(self.payload)))

    # -- inspection ---------------------------------------------------------------

    def is_concrete(self) -> bool:
        if not self.is_some.is_concrete():
            return False
        if not self.is_some.concrete_value():
            return True
        return _payload_is_concrete(self.payload)

    def eval(self, model: Model) -> Any:
        """Evaluate under a model to ``None`` or the payload's Python value."""
        if not self.is_some.eval(model):
            return None
        return _payload_eval(self.payload, model)

    def __repr__(self) -> str:
        return f"SymOption(is_some={self.is_some!r})"


def _payload_is_concrete(payload: Any) -> bool:
    probe = getattr(payload, "is_concrete", None)
    if probe is None:
        raise SymbolicError(f"payload {payload!r} does not support concreteness checks")
    return bool(probe())


def _payload_eval(payload: Any, model: Model) -> Any:
    probe = getattr(payload, "eval", None)
    if probe is None:
        raise SymbolicError(f"payload {payload!r} does not support model evaluation")
    return probe(model)
