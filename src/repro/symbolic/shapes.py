"""Shapes: runtime type descriptors for symbolic values.

A *shape* describes the structure of a symbolic value kind — boolean,
bitvector of a given width, enumeration, option, finite set or record — and
provides the operations the verification engine needs uniformly across all
of them:

* :meth:`Shape.fresh` — allocate a fresh symbolic value (used for the
  per-neighbour routes in the inductive condition and for network-level
  symbolic variables);
* :meth:`Shape.constant` — lift a plain Python value;
* :meth:`Shape.default` — an arbitrary but fixed concrete value (used as the
  don't-care payload of absent options);
* :meth:`Shape.constraint` — a well-formedness predicate (e.g. an enum index
  must denote a declared member);
* :meth:`Shape.eval` — read a Python value back out of a solver model, for
  counterexample reporting.

Shapes are to this library what Zen's type representation is to Timepiece.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.errors import SymbolicError
from repro.smt.model import Model
from repro.symbolic.option import SymOption
from repro.symbolic.record import SymRecord
from repro.symbolic.sets import SymSet
from repro.symbolic.values import EnumType, SymBV, SymBool, SymEnum, all_of


class Shape:
    """Base class for shapes."""

    def fresh(self, prefix: str) -> Any:
        raise NotImplementedError

    def constant(self, value: Any) -> Any:
        raise NotImplementedError

    def default(self) -> Any:
        raise NotImplementedError

    def constraint(self, value: Any) -> SymBool:
        """Well-formedness constraint; true for most shapes."""
        return SymBool.true()

    def eval(self, value: Any, model: Model) -> Any:
        raise NotImplementedError


class BoolShape(Shape):
    """Shape of symbolic booleans."""

    def fresh(self, prefix: str) -> SymBool:
        return SymBool.fresh(prefix)

    def constant(self, value: Any) -> SymBool:
        return SymBool.lift(bool(value))

    def default(self) -> SymBool:
        return SymBool.false()

    def eval(self, value: SymBool, model: Model) -> bool:
        return value.eval(model)

    def __repr__(self) -> str:
        return "BoolShape()"


class BitVecShape(Shape):
    """Shape of symbolic unsigned bitvectors of a fixed width."""

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise SymbolicError(f"bitvector width must be positive, got {width}")
        self.width = width

    def fresh(self, prefix: str) -> SymBV:
        return SymBV.fresh(self.width, prefix)

    def constant(self, value: Any) -> SymBV:
        return SymBV.constant(int(value), self.width)

    def default(self) -> SymBV:
        return SymBV.constant(0, self.width)

    def eval(self, value: SymBV, model: Model) -> int:
        return value.eval(model)

    def __repr__(self) -> str:
        return f"BitVecShape({self.width})"


class EnumShape(Shape):
    """Shape of symbolic members of an :class:`EnumType`."""

    def __init__(self, enum_type: EnumType) -> None:
        self.enum_type = enum_type

    def fresh(self, prefix: str) -> SymEnum:
        return self.enum_type.fresh(prefix)

    def constant(self, value: Any) -> SymEnum:
        return self.enum_type.constant(str(value))

    def default(self) -> SymEnum:
        return self.enum_type.constant(self.enum_type.members[0])

    def constraint(self, value: SymEnum) -> SymBool:
        return self.enum_type.in_range(value)

    def eval(self, value: SymEnum, model: Model) -> str:
        return value.eval(model)

    def __repr__(self) -> str:
        return f"EnumShape({self.enum_type.name})"


class SetShape(Shape):
    """Shape of symbolic finite sets over a fixed universe."""

    def __init__(self, universe: Iterable[str]) -> None:
        self.universe = tuple(universe)

    def fresh(self, prefix: str) -> SymSet:
        return SymSet.fresh(self.universe, prefix)

    def constant(self, value: Any) -> SymSet:
        return SymSet.of(self.universe, value)

    def default(self) -> SymSet:
        return SymSet.empty(self.universe)

    def eval(self, value: SymSet, model: Model) -> frozenset[str]:
        return value.eval(model)

    def __repr__(self) -> str:
        return f"SetShape({list(self.universe)!r})"


class RecordShape(Shape):
    """Shape of symbolic records with the given named fields."""

    def __init__(self, type_name: str, fields: Mapping[str, Shape]) -> None:
        if not fields:
            raise SymbolicError(f"record shape {type_name!r} needs at least one field")
        self.type_name = type_name
        self.fields = dict(fields)

    def fresh(self, prefix: str) -> SymRecord:
        return SymRecord(
            self.type_name,
            {name: shape.fresh(f"{prefix}.{name}") for name, shape in self.fields.items()},
        )

    def constant(self, value: Any) -> SymRecord:
        if not isinstance(value, Mapping):
            raise SymbolicError(f"record constant must be a mapping, got {type(value).__name__}")
        missing = set(self.fields) - set(value)
        if missing:
            raise SymbolicError(f"record constant missing fields {sorted(missing)}")
        return SymRecord(
            self.type_name,
            {name: shape.constant(value[name]) for name, shape in self.fields.items()},
        )

    def default(self) -> SymRecord:
        return SymRecord(
            self.type_name, {name: shape.default() for name, shape in self.fields.items()}
        )

    def constraint(self, value: SymRecord) -> SymBool:
        return all_of(
            shape.constraint(value.field(name)) for name, shape in self.fields.items()
        )

    def eval(self, value: SymRecord, model: Model) -> dict[str, Any]:
        return {name: shape.eval(value.field(name), model) for name, shape in self.fields.items()}

    def __repr__(self) -> str:
        return f"RecordShape({self.type_name!r}, fields={list(self.fields)})"


class OptionShape(Shape):
    """Shape of optional values over an inner shape."""

    def __init__(self, inner: Shape) -> None:
        self.inner = inner

    def fresh(self, prefix: str) -> SymOption:
        return SymOption(SymBool.fresh(f"{prefix}.some"), self.inner.fresh(f"{prefix}.value"))

    def constant(self, value: Any) -> SymOption:
        if value is None:
            return SymOption.none(self.inner.default())
        return SymOption.some(self.inner.constant(value))

    def none(self) -> SymOption:
        """The concrete absent value (the paper's ``∞``)."""
        return SymOption.none(self.inner.default())

    def some(self, value: Any) -> SymOption:
        """A present value built from a Python value or a symbolic payload."""
        if isinstance(value, (SymBool, SymBV, SymEnum, SymRecord, SymSet)):
            return SymOption.some(value)
        return SymOption.some(self.inner.constant(value))

    def default(self) -> SymOption:
        return self.none()

    def constraint(self, value: SymOption) -> SymBool:
        return value.is_none | self.inner.constraint(value.payload)

    def eval(self, value: SymOption, model: Model) -> Any:
        if not value.is_some.eval(model):
            return None
        return self.inner.eval(value.payload, model)

    def __repr__(self) -> str:
        return f"OptionShape({self.inner!r})"


def record(type_name: str, **fields: Shape) -> RecordShape:
    """Convenience constructor: ``record("Route", lp=BitVecShape(8), ...)``."""
    return RecordShape(type_name, fields)


def enum(name: str, members: Sequence[str]) -> EnumShape:
    """Convenience constructor for an enumeration shape."""
    return EnumShape(EnumType(name, members))
