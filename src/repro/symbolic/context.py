"""Fresh-name management for symbolic variables.

Every symbolic variable created by the modelling layer gets a globally unique
name derived from a caller-supplied prefix.  Uniqueness matters because the
underlying SMT terms are identified purely by name: two distinct "fresh"
routes must never collide.

The counter is process-global (the solver pipeline is stateless between
queries), but can be reset for reproducible tests.

Callers that manage uniqueness themselves — the verification-condition
encoder names its per-query variables deterministically so that identical
sub-structure hash-conses to identical terms across queries — can suspend
the counter with the :func:`exact_names` context manager, under which
prefixes are used verbatim.
"""

from __future__ import annotations

import itertools
import re
from contextlib import contextmanager
from typing import Iterator

_counter: Iterator[int] = itertools.count()

_exact_depth = 0

#: Characters allowed in a name prefix; anything else is replaced by ``_``.
_SAFE_PREFIX = re.compile(r"[^A-Za-z0-9_.$\-]")


def fresh_name(prefix: str = "sym") -> str:
    """Return a variable name starting with ``prefix``.

    Outside an :func:`exact_names` block the name is made globally unique by
    appending a process-wide counter (after sanitising the prefix); inside
    one, the prefix is returned **verbatim** — unsanitised, because lossy
    sanitisation could collapse two distinct names into one — and the caller
    is responsible for uniqueness within its query and for avoiding the
    bit-blaster's ``#`` separator.
    """
    if _exact_depth:
        return prefix
    cleaned = _SAFE_PREFIX.sub("_", prefix) or "sym"
    return f"{cleaned}!{next(_counter)}"


@contextmanager
def exact_names() -> Iterator[None]:
    """Use name prefixes verbatim (no ``!N`` suffix) inside the block.

    Intended for encoders that scope variable names to a single solver query
    and pick prefixes that cannot collide within it.  Deterministic names
    make structurally identical queries produce *identical* hash-consed
    terms, which is what lets the incremental SMT backend reuse bit-blasting
    and CNF encoding across queries.
    """
    global _exact_depth
    _exact_depth += 1
    try:
        yield
    finally:
        _exact_depth -= 1


def reset_fresh_names() -> None:
    """Reset the fresh-name counter (tests only — never during solving)."""
    global _counter
    _counter = itertools.count()
