"""Fresh-name management for symbolic variables.

Every symbolic variable created by the modelling layer gets a globally unique
name derived from a caller-supplied prefix.  Uniqueness matters because the
underlying SMT terms are identified purely by name: two distinct "fresh"
routes must never collide.

The counter is process-global (the solver pipeline is stateless between
queries), but can be reset for reproducible tests.
"""

from __future__ import annotations

import itertools
import re
from typing import Iterator

_counter: Iterator[int] = itertools.count()

#: Characters allowed in a name prefix; anything else is replaced by ``_``.
_SAFE_PREFIX = re.compile(r"[^A-Za-z0-9_.$\-]")


def fresh_name(prefix: str = "sym") -> str:
    """Return a globally unique variable name starting with ``prefix``."""
    cleaned = _SAFE_PREFIX.sub("_", prefix) or "sym"
    return f"{cleaned}!{next(_counter)}"


def reset_fresh_names() -> None:
    """Reset the fresh-name counter (tests only — never during solving)."""
    global _counter
    _counter = itertools.count()
