"""Experiment runner: sweeps, timing collection and result records.

The harness turns the paper's evaluation into reproducible parameter sweeps.
An :class:`ExperimentResult` captures one (benchmark, size) point with the
four numbers the paper reports — Timepiece total wall time, per-node median
and 99th percentile, and the monolithic baseline's total time (or timeout) —
and the sweep functions return lists of such points, which
:mod:`repro.harness.tables` renders into the rows/series of Figures 1 and 14
and the Internet2 paragraph.

Engines are selected by :mod:`repro.verify` strategy objects: every sweep
takes a ``modular`` strategy and/or a ``monolithic`` strategy (``None``
skips that engine) and runs each point through a
:class:`~repro.verify.Session`, streaming per-condition events to an
optional ``on_event`` observer.  Benchmarks are constructed through
:mod:`repro.networks.registry`, the single validated build path.

The legacy :class:`SweepSettings` record is a deprecated shim that converts
its knobs into the equivalent strategy pair.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.annotations import AnnotatedNetwork
from repro.core.results import ConditionResult, ModularReport, MonolithicReport
from repro.networks import registry
from repro.verify import Modular, Monolithic, Session

#: Streaming observer: called with every ConditionResult as it is produced.
EventObserver = Callable[[ConditionResult], None]


@dataclass
class ExperimentResult:
    """One data point of an experiment sweep."""

    experiment: str
    benchmark: str
    #: Topology size in nodes (the x-axis of Figures 1 and 14).
    nodes: int
    #: Extra parameters of this point (e.g. the fattree pod count ``k``).
    parameters: dict[str, object] = field(default_factory=dict)
    modular: ModularReport | None = None
    monolithic: MonolithicReport | None = None

    @property
    def modular_wall_time(self) -> float | None:
        return self.modular.wall_time if self.modular is not None else None

    @property
    def modular_median(self) -> float | None:
        return self.modular.median_node_time if self.modular is not None else None

    @property
    def modular_p99(self) -> float | None:
        return self.modular.p99_node_time if self.modular is not None else None

    @property
    def monolithic_wall_time(self) -> float | None:
        if self.monolithic is None:
            return None
        return self.monolithic.wall_time

    @property
    def monolithic_timed_out(self) -> bool:
        return self.monolithic is not None and self.monolithic.timed_out

    def as_row(self) -> dict[str, object]:
        """A flat dictionary used by the table printers."""
        return {
            "experiment": self.experiment,
            "benchmark": self.benchmark,
            "nodes": self.nodes,
            **self.parameters,
            "tp_total_s": _rounded(self.modular_wall_time),
            "tp_median_s": _rounded(self.modular_median),
            "tp_p99_s": _rounded(self.modular_p99),
            "tp_pass": None if self.modular is None else self.modular.passed,
            "tp_symmetry": None if self.modular is None else self.modular.symmetry,
            "tp_classes": None if self.modular is None else self.modular.symmetry_classes,
            "tp_discharged": None if self.modular is None else self.modular.conditions_discharged,
            "tp_conditions": None if self.modular is None else self.modular.conditions_checked,
            "tp_delta": None if self.modular is None else self.modular.delta,
            "tp_reused": None if self.modular is None else self.modular.conditions_reused,
            "tp_recheck": None if self.modular is None else self.modular.conditions_recheck,
            "tp_stopped": None if self.modular is None else self.modular.stopped_early,
            "tp_skipped": None if self.modular is None else self.modular.conditions_skipped,
            "ms_total_s": _rounded(self.monolithic_wall_time),
            "ms_outcome": self._monolithic_outcome(),
        }

    def to_json(self) -> dict[str, object]:
        """A JSON-serialisable record of this point, full reports included.

        The modular report's ``backend_cache`` counters ride along (both
        nested under ``modular`` and surfaced at the top level), so
        ``BENCH_*.json`` trajectories can track cache hit-rates across PRs.
        """
        return {
            "experiment": self.experiment,
            "benchmark": self.benchmark,
            "nodes": self.nodes,
            "parameters": dict(self.parameters),
            "row": self.as_row(),
            "modular": None if self.modular is None else self.modular.to_json(),
            "monolithic": None if self.monolithic is None else self.monolithic.to_json(),
            "backend_cache": None if self.modular is None else self.modular.backend_cache,
        }

    def _monolithic_outcome(self) -> str:
        return "skipped" if self.monolithic is None else self.monolithic.verdict


def _rounded(value: float | None) -> float | None:
    return None if value is None else round(value, 3)


def results_to_json(results: Sequence[ExperimentResult]) -> list[dict[str, object]]:
    """The harness' machine-readable output: one record per sweep point."""
    return [result.to_json() for result in results]


#: The default strategies of every sweep (the paper's configuration).
DEFAULT_MODULAR = Modular()
DEFAULT_MONOLITHIC = Monolithic(timeout=60.0)


@dataclass
class SweepSettings:
    """Deprecated shim: legacy sweep knobs, now a strategy-pair factory.

    Use :class:`repro.verify.Modular` / :class:`repro.verify.Monolithic`
    strategy objects instead — they carry every engine knob (including
    ``backend`` and ``spot_check_seed``, which this record never plumbed
    through).
    """

    #: Wall-clock budget for each monolithic check (the paper used 2 hours).
    monolithic_timeout: float = 60.0
    #: Process count for modular checks (1 = sequential).
    jobs: int = 1
    #: Skip the monolithic baseline entirely (for quick modular-only sweeps).
    run_monolithic: bool = True
    #: Skip the modular run (for monolithic-only ablations).
    run_modular: bool = True
    #: Symmetry-reduction mode for modular checks ("off" | "classes" | "spot-check").
    symmetry: str = "off"

    def __post_init__(self) -> None:
        warnings.warn(
            "SweepSettings is deprecated; pass repro.verify Modular/Monolithic "
            "strategies to the sweep helpers instead",
            DeprecationWarning,
            stacklevel=2,
        )

    def strategies(self) -> tuple[Modular | None, Monolithic | None]:
        """The equivalent strategy pair."""
        modular = (
            # The legacy sweep treated jobs <= 0 as "run sequentially".
            Modular(symmetry=self.symmetry, parallel=max(1, self.jobs))
            if self.run_modular
            else None
        )
        monolithic = Monolithic(timeout=self.monolithic_timeout) if self.run_monolithic else None
        return modular, monolithic


def _resolve_strategies(
    modular: Modular | None,
    monolithic: Monolithic | None,
    settings: SweepSettings | None,
) -> tuple[Modular | None, Monolithic | None]:
    if settings is None and isinstance(modular, SweepSettings):
        # Legacy callers passed SweepSettings positionally in the slot the
        # strategy pair now occupies; honour it so the deprecation shim
        # keeps its compatibility promise.  Anything else riding along in
        # the next positional slot (the old signatures' ``experiment``)
        # cannot be placed and must not be silently dropped.
        if not isinstance(monolithic, (Monolithic, type(None))):
            raise TypeError(
                "legacy positional SweepSettings call also passed "
                f"{monolithic!r} positionally; pass experiment/parameters by "
                "keyword (or migrate to Modular/Monolithic strategies)"
            )
        settings = modular
    if settings is not None:
        return settings.strategies()
    return modular, monolithic


def run_point(
    experiment: str,
    benchmark_name: str,
    annotated: AnnotatedNetwork,
    nodes: int,
    modular: Modular | None = DEFAULT_MODULAR,
    monolithic: Monolithic | None = DEFAULT_MONOLITHIC,
    parameters: dict[str, object] | None = None,
    on_event: EventObserver | None = None,
    settings: SweepSettings | None = None,
    lint: str | None = None,
) -> ExperimentResult:
    """Run one (benchmark, size) point under the given strategies.

    Each non-``None`` strategy runs in its own :class:`Session`, and every
    engine's stream is routed through ``on_event`` — modular events arrive
    per condition as batches are discharged (live even for parallel runs),
    the monolithic baseline emits its single whole-network verdict event —
    so ``--progress`` consumers see baseline verdicts too.  ``settings`` is
    the deprecated legacy knob record and overrides both strategies when
    passed.  ``lint`` ("warn" | "strict") runs the static-analysis passes
    once, before the first engine dispatches (strict mode raises
    :class:`~repro.errors.AnalysisError` with zero solver work).
    """
    if isinstance(modular, SweepSettings):
        # Legacy positional call run_point(exp, name, annotated, nodes,
        # settings, parameters): settings lands in the modular slot (handled
        # by _resolve_strategies) and parameters in the monolithic slot.
        if parameters is None and isinstance(monolithic, dict):
            parameters = monolithic
        monolithic = None
    modular, monolithic = _resolve_strategies(modular, monolithic, settings)
    result = ExperimentResult(
        experiment=experiment,
        benchmark=benchmark_name,
        nodes=nodes,
        parameters=dict(parameters or {}),
    )
    if modular is not None:
        result.modular = _observed_run(annotated, modular, on_event, lint=lint)
        # Lint once per point: the network is the same for the baseline run.
        lint = None
    if monolithic is not None:
        result.monolithic = _observed_run(annotated, monolithic, on_event, lint=lint)
    return result


def _observed_run(annotated, strategy, on_event: EventObserver | None, lint: str | None = None):
    """One engine run with its event stream routed through the observer."""
    with Session(annotated, strategy) as session:
        for event in session.stream(lint=lint):
            if on_event is not None:
                on_event(event)
        return session.report


def sweep_fattree(
    policy: str,
    pod_counts: Sequence[int],
    all_pairs: bool = False,
    modular: Modular | None = DEFAULT_MODULAR,
    monolithic: Monolithic | None = DEFAULT_MONOLITHIC,
    experiment: str = "figure14",
    on_event: EventObserver | None = None,
    settings: SweepSettings | None = None,
    lint: str | None = None,
) -> list[ExperimentResult]:
    """Sweep one fattree benchmark over a list of pod counts ``k``."""
    modular, monolithic = _resolve_strategies(modular, monolithic, settings)
    results: list[ExperimentResult] = []
    for pods in pod_counts:
        benchmark = registry.build(f"fattree/{policy}", pods=pods, all_pairs=all_pairs)
        results.append(
            run_point(
                experiment,
                benchmark.name,
                benchmark.annotated,
                nodes=benchmark.node_count,
                modular=modular,
                monolithic=monolithic,
                parameters={"pods": pods},
                on_event=on_event,
                lint=lint,
            )
        )
    return results


def sweep_wan(
    peer_counts: Sequence[int],
    internal_routers: int = 10,
    modular: Modular | None = DEFAULT_MODULAR,
    monolithic: Monolithic | None = DEFAULT_MONOLITHIC,
    experiment: str = "internet2",
    on_event: EventObserver | None = None,
    settings: SweepSettings | None = None,
    lint: str | None = None,
) -> list[ExperimentResult]:
    """Sweep the BlockToExternal benchmark over external-peer counts."""
    modular, monolithic = _resolve_strategies(modular, monolithic, settings)
    results: list[ExperimentResult] = []
    for peers in peer_counts:
        benchmark = registry.build(
            "wan/block_to_external", internal_routers=internal_routers, external_peers=peers
        )
        results.append(
            run_point(
                experiment,
                benchmark.name,
                benchmark.annotated,
                nodes=benchmark.node_count,
                modular=modular,
                monolithic=monolithic,
                parameters={"internal": internal_routers, "external": peers},
                on_event=on_event,
                lint=lint,
            )
        )
    return results


def scaling_comparison(
    policy: str,
    pod_counts: Sequence[int],
    modular: Modular | None = DEFAULT_MODULAR,
    monolithic: Monolithic | None = DEFAULT_MONOLITHIC,
    on_event: EventObserver | None = None,
    settings: SweepSettings | None = None,
    lint: str | None = None,
) -> list[ExperimentResult]:
    """The Figure 1 sweep: modular vs monolithic time as the fattree grows."""
    modular, monolithic = _resolve_strategies(modular, monolithic, settings)
    return sweep_fattree(
        policy,
        pod_counts,
        all_pairs=False,
        modular=modular,
        monolithic=monolithic,
        experiment="figure1",
        on_event=on_event,
        lint=lint,
    )
