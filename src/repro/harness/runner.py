"""Experiment runner: sweeps, timing collection and result records.

The harness turns the paper's evaluation into reproducible parameter sweeps.
An :class:`ExperimentResult` captures one (benchmark, size) point with the
four numbers the paper reports — Timepiece total wall time, per-node median
and 99th percentile, and the monolithic baseline's total time (or timeout) —
and the sweep functions return lists of such points, which
:mod:`repro.harness.tables` renders into the rows/series of Figures 1 and 14
and the Internet2 paragraph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core import check_modular, check_monolithic
from repro.core.annotations import AnnotatedNetwork
from repro.core.results import ModularReport, MonolithicReport
from repro.errors import BenchmarkError
from repro.networks.benchmarks import FattreeBenchmark, build_benchmark
from repro.networks.wan import WanBenchmark, build_wan_benchmark
from repro.config.generator import WanParameters


@dataclass
class ExperimentResult:
    """One data point of an experiment sweep."""

    experiment: str
    benchmark: str
    #: Topology size in nodes (the x-axis of Figures 1 and 14).
    nodes: int
    #: Extra parameters of this point (e.g. the fattree pod count ``k``).
    parameters: dict[str, object] = field(default_factory=dict)
    modular: ModularReport | None = None
    monolithic: MonolithicReport | None = None

    @property
    def modular_wall_time(self) -> float | None:
        return self.modular.wall_time if self.modular is not None else None

    @property
    def modular_median(self) -> float | None:
        return self.modular.median_node_time if self.modular is not None else None

    @property
    def modular_p99(self) -> float | None:
        return self.modular.p99_node_time if self.modular is not None else None

    @property
    def monolithic_wall_time(self) -> float | None:
        if self.monolithic is None:
            return None
        return self.monolithic.wall_time

    @property
    def monolithic_timed_out(self) -> bool:
        return self.monolithic is not None and self.monolithic.timed_out

    def as_row(self) -> dict[str, object]:
        """A flat dictionary used by the table printers."""
        return {
            "experiment": self.experiment,
            "benchmark": self.benchmark,
            "nodes": self.nodes,
            **self.parameters,
            "tp_total_s": _rounded(self.modular_wall_time),
            "tp_median_s": _rounded(self.modular_median),
            "tp_p99_s": _rounded(self.modular_p99),
            "tp_pass": None if self.modular is None else self.modular.passed,
            "tp_symmetry": None if self.modular is None else self.modular.symmetry,
            "tp_classes": None if self.modular is None else self.modular.symmetry_classes,
            "tp_discharged": None if self.modular is None else self.modular.conditions_discharged,
            "tp_conditions": None if self.modular is None else self.modular.conditions_checked,
            "ms_total_s": _rounded(self.monolithic_wall_time),
            "ms_outcome": self._monolithic_outcome(),
        }

    def _monolithic_outcome(self) -> str:
        if self.monolithic is None:
            return "skipped"
        if self.monolithic.timed_out:
            return "timeout"
        return "pass" if self.monolithic.passed else "fail"


def _rounded(value: float | None) -> float | None:
    return None if value is None else round(value, 3)


@dataclass
class SweepSettings:
    """Settings shared by the sweep helpers."""

    #: Wall-clock budget for each monolithic check (the paper used 2 hours).
    monolithic_timeout: float = 60.0
    #: Process count for modular checks (1 = sequential).
    jobs: int = 1
    #: Skip the monolithic baseline entirely (for quick modular-only sweeps).
    run_monolithic: bool = True
    #: Skip the modular run (for monolithic-only ablations).
    run_modular: bool = True
    #: Symmetry-reduction mode for modular checks ("off" | "classes" | "spot-check").
    symmetry: str = "off"


def run_point(
    experiment: str,
    benchmark_name: str,
    annotated: AnnotatedNetwork,
    nodes: int,
    settings: SweepSettings,
    parameters: dict[str, object] | None = None,
) -> ExperimentResult:
    """Run one (benchmark, size) point with the given settings."""
    result = ExperimentResult(
        experiment=experiment,
        benchmark=benchmark_name,
        nodes=nodes,
        parameters=dict(parameters or {}),
    )
    if settings.run_modular:
        result.modular = check_modular(annotated, jobs=settings.jobs, symmetry=settings.symmetry)
    if settings.run_monolithic:
        result.monolithic = check_monolithic(annotated, timeout=settings.monolithic_timeout)
    return result


def sweep_fattree(
    policy: str,
    pod_counts: Sequence[int],
    all_pairs: bool = False,
    settings: SweepSettings | None = None,
    experiment: str = "figure14",
) -> list[ExperimentResult]:
    """Sweep one fattree benchmark over a list of pod counts ``k``."""
    settings = settings or SweepSettings()
    results: list[ExperimentResult] = []
    for pods in pod_counts:
        benchmark: FattreeBenchmark = build_benchmark(policy, pods, all_pairs=all_pairs)
        results.append(
            run_point(
                experiment,
                benchmark.name,
                benchmark.annotated,
                nodes=benchmark.node_count,
                settings=settings,
                parameters={"pods": pods},
            )
        )
    return results


def sweep_wan(
    peer_counts: Sequence[int],
    internal_routers: int = 10,
    settings: SweepSettings | None = None,
    experiment: str = "internet2",
) -> list[ExperimentResult]:
    """Sweep the BlockToExternal benchmark over external-peer counts."""
    settings = settings or SweepSettings()
    results: list[ExperimentResult] = []
    for peers in peer_counts:
        benchmark: WanBenchmark = build_wan_benchmark(
            WanParameters(internal_routers=internal_routers, external_peers=peers)
        )
        results.append(
            run_point(
                experiment,
                benchmark.name,
                benchmark.annotated,
                nodes=benchmark.node_count,
                settings=settings,
                parameters={"internal": internal_routers, "external": peers},
            )
        )
    return results


def scaling_comparison(
    policy: str,
    pod_counts: Sequence[int],
    settings: SweepSettings | None = None,
) -> list[ExperimentResult]:
    """The Figure 1 sweep: modular vs monolithic time as the fattree grows."""
    return sweep_fattree(policy, pod_counts, all_pairs=False, settings=settings, experiment="figure1")
