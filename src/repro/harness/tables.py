"""Render experiment results as the tables/series the paper reports.

The printers here regenerate, in text form, the data behind

* Figure 1  — modular vs monolithic verification time vs topology size;
* Figure 14 — the eight fattree policies (Tp total / median / p99 vs Ms);
* Table 2   — lines of code per benchmark definition; and
* Table 1   — ghost state per property.

They accept the :class:`~repro.harness.runner.ExperimentResult` records
produced by the sweep helpers and return plain strings, so benchmarks can
both print them and assert on their structure.
"""

from __future__ import annotations

import inspect
from typing import Callable, Iterable, Sequence

from repro.harness.runner import ExperimentResult
from repro.networks.ghost import ghost_state_catalog


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table (no external dependencies)."""
    materialised = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in materialised:
        lines.append("  ".join(value.ljust(widths[index]) for index, value in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def scaling_table(results: Sequence[ExperimentResult]) -> str:
    """The Figure 1 series: nodes vs modular and monolithic wall time."""
    headers = ("nodes", "pods", "Tp total [s]", "Ms total [s]", "Ms outcome")
    rows = [
        (
            result.nodes,
            result.parameters.get("pods"),
            result.modular_wall_time,
            result.monolithic_wall_time,
            result.as_row()["ms_outcome"],
        )
        for result in results
    ]
    return format_table(headers, rows)


def figure14_table(results: Sequence[ExperimentResult]) -> str:
    """One Figure 14 panel: Tp total / median / p99 and Ms total per size.

    ``Tp stopped``/``Tp skipped`` surface run-level ``stop_on_failure``: a
    run that halted after the first failing batch shows ``yes`` and the
    number of conditions that never received a verdict, so a partially
    verified point cannot be misread as a complete one.
    """
    headers = (
        "benchmark",
        "pods",
        "nodes",
        "Tp total [s]",
        "Tp median [s]",
        "Tp p99 [s]",
        "Tp pass",
        "Tp stopped",
        "Tp skipped",
        "Ms total [s]",
        "Ms outcome",
    )
    rows = []
    for result in results:
        row = result.as_row()
        rows.append(
            (
                row["benchmark"],
                row.get("pods"),
                row["nodes"],
                row["tp_total_s"],
                row["tp_median_s"],
                row["tp_p99_s"],
                row["tp_pass"],
                row["tp_stopped"],
                row["tp_skipped"],
                row["ms_total_s"],
                row["ms_outcome"],
            )
        )
    return format_table(headers, rows)


def internet2_table(results: Sequence[ExperimentResult]) -> str:
    """The Internet2 paragraph as a table: modular stats vs monolithic."""
    headers = (
        "internal",
        "external",
        "nodes",
        "Tp total [s]",
        "Tp median [s]",
        "Tp p99 [s]",
        "Ms total [s]",
        "Ms outcome",
    )
    rows = []
    for result in results:
        row = result.as_row()
        rows.append(
            (
                row.get("internal"),
                row.get("external"),
                row["nodes"],
                row["tp_total_s"],
                row["tp_median_s"],
                row["tp_p99_s"],
                row["ms_total_s"],
                row["ms_outcome"],
            )
        )
    return format_table(headers, rows)


def symmetry_table(results: Sequence[ExperimentResult]) -> str:
    """Verdict-avoidance effectiveness: symmetry classes and delta reuse.

    ``discharged`` counts conditions handed to the SMT backend,
    ``propagated`` verdicts copied from a class representative this run, and
    ``reused`` verdicts supplied by the delta store (``--delta reuse``)
    without any work this run; the three partition ``tp_conditions``.
    ``skipped`` counts conditions left without any verdict because
    run-level ``stop_on_failure`` halted the point early (0 otherwise) —
    it sits outside that partition.
    """
    headers = (
        "benchmark",
        "nodes",
        "symmetry",
        "classes",
        "discharged",
        "propagated",
        "delta",
        "reused",
        "skipped",
        "Tp total [s]",
    )
    rows = []
    for result in results:
        row = result.as_row()
        conditions = row["tp_conditions"]
        discharged = row["tp_discharged"]
        reused = row["tp_reused"]
        propagated = None if conditions is None else conditions - discharged - reused
        rows.append(
            (
                row["benchmark"],
                row["nodes"],
                row["tp_symmetry"],
                row["tp_classes"],
                discharged,
                propagated,
                row["tp_delta"],
                reused,
                row["tp_skipped"],
                row["tp_total_s"],
            )
        )
    return format_table(headers, rows)


#: The incremental-backend cache counters shown by :func:`cache_statistics_table`
#: (a subset of ``IncrementalSolver.cache_statistics`` keys, in print order).
CACHE_STATISTIC_KEYS = (
    "bitblast_hits",
    "bitblast_misses",
    "tseitin_hits",
    "tseitin_misses",
    "guard_hits",
    "scopes",
    "learned_retained",
    "learned_carried",
)


def cache_statistics_table(results: Sequence[ExperimentResult]) -> str:
    """Incremental-backend cache statistics per experiment point.

    Renders the counters :class:`~repro.core.results.ModularReport` collects
    from the incremental backend (bit-blast and Tseitin cache hits/misses,
    reused assertion guards, SAT scopes, learned clauses retained), so
    ablation claims about encoding reuse are measurable straight from the
    CLI.  Points without counters (fresh backend, per-node parallel runs)
    render as ``-``.
    """
    headers = ("benchmark", "nodes") + CACHE_STATISTIC_KEYS
    rows = []
    for result in results:
        cache = result.modular.backend_cache if result.modular is not None else None
        rows.append(
            (result.benchmark, result.nodes)
            + tuple(None if cache is None else cache.get(key, 0) for key in CACHE_STATISTIC_KEYS)
        )
    return format_table(headers, rows)


def ghost_state_table(node_count: int = 20, edge_count: int = 64) -> str:
    """Table 1: ghost state needed per property (bit counts for a sample size)."""
    headers = ("property", "added ghost state", f"bits (|V|={node_count}, |E|={edge_count})")
    rows = [
        (row.property_name, row.ghost_state, row.bits(node_count, edge_count))
        for row in ghost_state_catalog()
    ]
    return format_table(headers, rows)


# ---------------------------------------------------------------------------
# Table 2: lines of code per benchmark definition
# ---------------------------------------------------------------------------


def count_callable_lines(target: Callable | type | object) -> int:
    """Source lines of a function/class, as counted for Table 2."""
    try:
        source = inspect.getsource(target)  # type: ignore[arg-type]
    except (OSError, TypeError):
        return 0
    return sum(1 for line in source.splitlines() if line.strip() and not line.strip().startswith("#"))


def lines_of_code_table() -> str:
    """Table 2: lines of code defining each benchmark's network, interfaces and property.

    The numbers are measured from this repository's own sources, so the exact
    values differ from the paper's C# figures; the point being reproduced is
    the *relative* effort — interfaces and properties are an order of
    magnitude smaller than the network definitions they annotate.
    """
    from repro.networks import benchmarks as fattree_benchmarks
    from repro.networks import wan as wan_benchmark

    def total(module: object, names: Sequence[str]) -> int:
        return sum(count_callable_lines(getattr(module, name)) for name in names if hasattr(module, name))

    shared_network = total(
        fattree_benchmarks,
        (
            "_identity_transfer",
            "_destination_announcement",
            "_sp_initial",
            "_ap_destination",
            "_bgp_option_merge",
        ),
    )
    shared_interface = total(
        fattree_benchmarks, ("_symbolic_distance", "_symbolic_adjacency", "_length_within_distance")
    )

    rows = [
        ("Reach", shared_network + count_callable_lines(fattree_benchmarks.build_reach), shared_interface + 4, 2),
        ("Len", shared_network + count_callable_lines(fattree_benchmarks.build_length), shared_interface + 10, 4),
        ("Vf", shared_network + count_callable_lines(fattree_benchmarks.build_valley_freedom), shared_interface + 16, 2),
        ("Hijack", shared_network + count_callable_lines(fattree_benchmarks.build_hijack), shared_interface + 8, 4),
        (
            "BlockToExternal",
            count_callable_lines(wan_benchmark.build_wan_benchmark),
            count_callable_lines(wan_benchmark.block_to_external_predicate),
            count_callable_lines(wan_benchmark.block_to_external_predicate),
        ),
    ]
    headers = ("benchmark", "network LoC", "interface LoC", "property LoC")
    return format_table(headers, rows)
