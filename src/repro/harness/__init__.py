"""The experiment harness: sweeps, result records, table printers, CLI."""

from repro.harness.runner import (
    ExperimentResult,
    SweepSettings,
    run_point,
    scaling_comparison,
    sweep_fattree,
    sweep_wan,
)
from repro.harness.tables import (
    cache_statistics_table,
    figure14_table,
    format_table,
    ghost_state_table,
    internet2_table,
    lines_of_code_table,
    scaling_table,
    symmetry_table,
)

__all__ = [
    "ExperimentResult",
    "SweepSettings",
    "run_point",
    "sweep_fattree",
    "sweep_wan",
    "scaling_comparison",
    "format_table",
    "scaling_table",
    "figure14_table",
    "internet2_table",
    "ghost_state_table",
    "lines_of_code_table",
    "symmetry_table",
    "cache_statistics_table",
]
