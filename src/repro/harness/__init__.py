"""The experiment harness: sweeps, result records, table printers, CLI.

Sweeps are parameterised by :mod:`repro.verify` strategy objects (pass
``modular=Modular(...)`` / ``monolithic=Monolithic(...)``, or ``None`` to
skip an engine) and build their networks through
:mod:`repro.networks.registry`.  :class:`SweepSettings` is a deprecated
shim over the strategy pair.
"""

from repro.harness.runner import (
    DEFAULT_MODULAR,
    DEFAULT_MONOLITHIC,
    ExperimentResult,
    SweepSettings,
    results_to_json,
    run_point,
    scaling_comparison,
    sweep_fattree,
    sweep_wan,
)
from repro.harness.tables import (
    cache_statistics_table,
    figure14_table,
    format_table,
    ghost_state_table,
    internet2_table,
    lines_of_code_table,
    scaling_table,
    symmetry_table,
)

__all__ = [
    "DEFAULT_MODULAR",
    "DEFAULT_MONOLITHIC",
    "ExperimentResult",
    "SweepSettings",
    "results_to_json",
    "run_point",
    "sweep_fattree",
    "sweep_wan",
    "scaling_comparison",
    "format_table",
    "scaling_table",
    "figure14_table",
    "internet2_table",
    "ghost_state_table",
    "lines_of_code_table",
    "symmetry_table",
    "cache_statistics_table",
]
