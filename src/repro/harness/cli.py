"""Command-line entry point (``timepiece-bench``) for the experiment harness.

Examples::

    timepiece-bench figure1 --pods 4 8 --timeout 60
    timepiece-bench figure14 --policy reach --pods 4 8 12
    timepiece-bench figure14 --policy hijack --all-pairs --pods 4
    timepiece-bench figure14 --policy reach --symmetry spot-check --stats
    timepiece-bench internet2 --peers 20 40 --timeout 120
    timepiece-bench figure14 --policy reach --lint strict
    timepiece-bench lint
    timepiece-bench lint fattree/reach wan/block_to_external --json lint.json
    timepiece-bench benchmarks
    timepiece-bench table1
    timepiece-bench table2

Every subcommand prints the corresponding table from the paper's evaluation
(scaled-down defaults; pass larger ``--pods``/``--peers`` and ``--timeout``
values to push further).  Arguments are turned into
:mod:`repro.verify` strategy objects — the CLI holds no engine knobs of its
own — and benchmarks are built through :mod:`repro.networks.registry`.
``--json PATH`` additionally writes the sweep's machine-readable records
(including backend cache counters) for trajectory tracking.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.results import ConditionResult
from repro.errors import AnalysisError, BenchmarkError
from repro.harness.runner import (
    ExperimentResult,
    results_to_json,
    scaling_comparison,
    sweep_fattree,
    sweep_wan,
)
from repro.harness.tables import (
    cache_statistics_table,
    figure14_table,
    ghost_state_table,
    internet2_table,
    lines_of_code_table,
    scaling_table,
    symmetry_table,
)
from repro.networks import registry
from repro.verify import BACKENDS, DELTA_MODES, Modular, Monolithic, strategy


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="timepiece-bench",
        description="Regenerate the tables and figures of the Timepiece evaluation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure1 = subparsers.add_parser("figure1", help="modular vs monolithic scaling comparison")
    _add_sweep_arguments(figure1)
    figure1.add_argument("--policy", default="reach", help="fattree policy to sweep (default: reach)")

    figure14 = subparsers.add_parser("figure14", help="one Figure 14 panel (a policy sweep)")
    _add_sweep_arguments(figure14)
    figure14.add_argument("--policy", default="reach", help="reach | length | valley_freedom | hijack")
    figure14.add_argument("--all-pairs", action="store_true", help="use the symbolic-destination variant")

    internet2 = subparsers.add_parser("internet2", help="the BlockToExternal WAN experiment")
    internet2.add_argument("--peers", type=int, nargs="+", default=[20, 40])
    internet2.add_argument("--internal", type=int, default=10)
    _add_strategy_arguments(internet2)

    lint = subparsers.add_parser(
        "lint",
        help="static-analysis lint of registry benchmarks (no solver work)",
        description=(
            "Run the pre-solve static analysis passes over registry benchmarks "
            "and print their TP0xx diagnostics.  Exits 0 when every report is "
            "clean (info-severity notes allowed), 1 when any benchmark has "
            "error- or warning-severity findings, 2 on usage errors."
        ),
    )
    lint.add_argument(
        "benchmarks",
        nargs="*",
        metavar="BENCHMARK",
        help="registry benchmark names to lint (default: every registered benchmark)",
    )
    lint.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the lint reports (one record per benchmark) to PATH",
    )

    subparsers.add_parser("benchmarks", help="list the registered benchmarks and parameters")
    subparsers.add_parser("table1", help="ghost state per property (Table 1)")
    subparsers.add_parser("table2", help="lines of code per benchmark (Table 2)")
    return parser


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pods", type=int, nargs="+", default=[4, 8], help="fattree pod counts k")
    _add_strategy_arguments(parser)


def _add_strategy_arguments(parser: argparse.ArgumentParser) -> None:
    """The argv surface of the verification strategies (argv → strategy)."""
    parser.add_argument("--timeout", type=float, default=60.0, help="monolithic timeout in seconds")
    parser.add_argument("--jobs", type=int, default=1, help="parallel workers for modular checks")
    parser.add_argument("--skip-monolithic", action="store_true", help="only run the modular checks")
    parser.add_argument(
        "--symmetry",
        choices=["off", "classes", "spot-check"],
        default="off",
        help="symmetry reduction for modular checks (default: off)",
    )
    parser.add_argument(
        "--spot-check-seed",
        type=int,
        default=0,
        help="seed for the spot-check member choice (with --symmetry spot-check)",
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="incremental",
        help="modular SMT backend (default: incremental)",
    )
    parser.add_argument(
        "--delta",
        choices=list(DELTA_MODES),
        default="off",
        help=(
            "delta re-verification for modular checks (default: off): with "
            "'reuse', verdicts of conditions unchanged since the last "
            "recorded run are reused from the on-disk fingerprint store and "
            "only changed/new conditions are discharged"
        ),
    )
    parser.add_argument(
        "--delta-store",
        metavar="PATH",
        default=None,
        help=(
            "fingerprint store path for --delta reuse (default: a "
            "per-(network, strategy) file under .timepiece-delta/)"
        ),
    )
    parser.add_argument(
        "--stop-on-failure",
        action="store_true",
        help=(
            "stop scheduling further nodes/classes after the first failing "
            "batch (parallel runs stop dispatching queued work and terminate "
            "the pool; the report records how many conditions were skipped)"
        ),
    )
    parser.add_argument(
        "--lint",
        choices=["warn", "strict"],
        default=None,
        help=(
            "run the static-analysis passes before solving: 'warn' attaches "
            "diagnostics to the modular reports, 'strict' aborts the sweep "
            "(exit 1) on any error/warning finding before solver work"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="also print symmetry and incremental-backend cache statistics",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "stream per-condition progress lines to stderr as verdicts arrive "
            "(live even with --jobs > 1: each worker batch reports the moment "
            "it finishes)"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the sweep's machine-readable records (with cache counters) to PATH",
    )


def _modular_strategy(arguments: argparse.Namespace) -> Modular:
    """Build the modular strategy from argv via the strategy registry."""
    return strategy(
        "modular",
        symmetry=arguments.symmetry,
        backend=arguments.backend,
        # --jobs 0 has always meant "run sequentially".
        parallel=max(1, arguments.jobs),
        stop_on_failure=arguments.stop_on_failure,
        spot_check_seed=arguments.spot_check_seed,
        delta=arguments.delta,
        store=arguments.delta_store,
    )


def _monolithic_strategy(arguments: argparse.Namespace) -> Monolithic | None:
    if arguments.skip_monolithic:
        return None
    return strategy("monolithic", timeout=arguments.timeout)


def _observer(arguments: argparse.Namespace, modular: Modular):
    if not arguments.progress:
        return None
    print(f"strategy: {modular.describe()}", file=sys.stderr)

    def on_event(event: ConditionResult) -> None:
        status = "ok" if event.holds else "FAIL"
        origin = "" if event.propagated_from is None else f" (from {event.propagated_from})"
        reused = " [reused]" if event.reused else ""
        print(f"  {event.node} {event.condition}: {status}{origin}{reused}", file=sys.stderr)

    return on_event


def _emit(arguments: argparse.Namespace, results: list[ExperimentResult]) -> None:
    if getattr(arguments, "progress", False):
        # stop_on_failure epilogue: --progress streams verdicts as they
        # arrive, so a run the session reaped early must say so explicitly
        # (the stream simply ends otherwise) along with how many conditions
        # never received a verdict.
        for result in results:
            report = result.modular
            if report is not None and report.stopped_early:
                print(
                    f"  {result.benchmark}: stopped early on first failure "
                    f"({report.conditions_skipped} conditions skipped)",
                    file=sys.stderr,
                )
    if getattr(arguments, "stats", False):
        print()
        print(symmetry_table(results))
        print()
        print(cache_statistics_table(results))
    if getattr(arguments, "json", None):
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(results_to_json(results), handle, indent=2, sort_keys=True)
        print(f"wrote {arguments.json}")


def _lint_command(arguments: argparse.Namespace) -> int:
    """``timepiece-bench lint``: self-lint registry benchmarks, no solver."""
    from repro.analysis import lint_benchmark

    names = list(arguments.benchmarks) or list(registry.benchmark_names())
    reports = []
    for name in names:
        # Unknown names raise BenchmarkError -> usage error (exit 2) in main.
        report = lint_benchmark(registry.build(name))
        reports.append(report)
        print(report.describe())
    if arguments.json:
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump([report.to_json() for report in reports], handle, indent=2, sort_keys=True)
        print(f"wrote {arguments.json}")
    dirty = [report for report in reports if not report.clean]
    if dirty:
        names = ", ".join(report.target or "<unnamed>" for report in dirty)
        print(f"timepiece-bench: lint: findings in {names}", file=sys.stderr)
        return 1
    return 0


def _benchmarks_listing() -> str:
    lines = []
    for name in registry.benchmark_names():
        spec = registry.get_spec(name)
        parameters = ", ".join(
            f"{parameter.name}={parameter.default!r}" for parameter in spec.parameters
        )
        aliases = f" (alias: {', '.join(spec.aliases)})" if spec.aliases else ""
        lines.append(f"{name}{aliases}")
        lines.append(f"    {spec.description}")
        lines.append(f"    parameters: {parameters or 'none'}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    arguments = build_argument_parser().parse_args(argv)

    strategies: tuple[Modular, Monolithic | None] | None = None
    if arguments.command in ("figure1", "figure14", "internet2"):
        try:
            strategies = (_modular_strategy(arguments), _monolithic_strategy(arguments))
        except ValueError as error:
            # Strategy self-validation catches bad knob combinations argparse
            # cannot express (e.g. --backend persistent --jobs 2); report
            # them like any other usage error instead of a traceback.
            print(f"timepiece-bench: error: {error}", file=sys.stderr)
            return 2
    try:
        return _dispatch(arguments, strategies)
    except AnalysisError as error:
        # --lint strict: the static analysis rejected the target before any
        # solver work; the findings are the message.
        print(f"timepiece-bench: lint: {error}", file=sys.stderr)
        return 1
    except BenchmarkError as error:
        # Registry parameter validation rejects argv-driven benchmark
        # parameters (e.g. an odd --pods value).
        print(f"timepiece-bench: error: {error}", file=sys.stderr)
        return 2


def _dispatch(
    arguments: argparse.Namespace,
    strategies: tuple[Modular, Monolithic | None] | None,
) -> int:
    if strategies is not None:
        modular, monolithic = strategies
    if arguments.command == "figure1":
        results = scaling_comparison(
            arguments.policy,
            arguments.pods,
            modular=modular,
            monolithic=monolithic,
            on_event=_observer(arguments, modular),
            lint=arguments.lint,
        )
        print(scaling_table(results))
        _emit(arguments, results)
    elif arguments.command == "figure14":
        results = sweep_fattree(
            arguments.policy,
            arguments.pods,
            all_pairs=arguments.all_pairs,
            modular=modular,
            monolithic=monolithic,
            on_event=_observer(arguments, modular),
            lint=arguments.lint,
        )
        print(figure14_table(results))
        _emit(arguments, results)
    elif arguments.command == "internet2":
        results = sweep_wan(
            arguments.peers,
            internal_routers=arguments.internal,
            modular=modular,
            monolithic=monolithic,
            on_event=_observer(arguments, modular),
            lint=arguments.lint,
        )
        print(internet2_table(results))
        _emit(arguments, results)
    elif arguments.command == "lint":
        return _lint_command(arguments)
    elif arguments.command == "benchmarks":
        print(_benchmarks_listing())
    elif arguments.command == "table1":
        print(ghost_state_table())
    elif arguments.command == "table2":
        print(lines_of_code_table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
