"""Command-line entry point (``timepiece-bench``) for the experiment harness.

Examples::

    timepiece-bench figure1 --pods 4 8 --timeout 60
    timepiece-bench figure14 --policy reach --pods 4 8 12
    timepiece-bench figure14 --policy hijack --all-pairs --pods 4
    timepiece-bench internet2 --peers 20 40 --timeout 120
    timepiece-bench table1
    timepiece-bench table2

Every subcommand prints the corresponding table from the paper's evaluation
(scaled-down defaults; pass larger ``--pods``/``--peers`` and ``--timeout``
values to push further).
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.harness.runner import SweepSettings, scaling_comparison, sweep_fattree, sweep_wan
from repro.harness.tables import (
    cache_statistics_table,
    figure14_table,
    ghost_state_table,
    internet2_table,
    lines_of_code_table,
    scaling_table,
    symmetry_table,
)


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="timepiece-bench",
        description="Regenerate the tables and figures of the Timepiece evaluation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure1 = subparsers.add_parser("figure1", help="modular vs monolithic scaling comparison")
    _add_sweep_arguments(figure1)
    figure1.add_argument("--policy", default="reach", help="fattree policy to sweep (default: reach)")

    figure14 = subparsers.add_parser("figure14", help="one Figure 14 panel (a policy sweep)")
    _add_sweep_arguments(figure14)
    figure14.add_argument("--policy", default="reach", help="reach | length | valley_freedom | hijack")
    figure14.add_argument("--all-pairs", action="store_true", help="use the symbolic-destination variant")

    internet2 = subparsers.add_parser("internet2", help="the BlockToExternal WAN experiment")
    internet2.add_argument("--peers", type=int, nargs="+", default=[20, 40])
    internet2.add_argument("--internal", type=int, default=10)
    internet2.add_argument("--timeout", type=float, default=60.0)
    internet2.add_argument("--jobs", type=int, default=1)
    internet2.add_argument("--skip-monolithic", action="store_true")

    subparsers.add_parser("table1", help="ghost state per property (Table 1)")
    subparsers.add_parser("table2", help="lines of code per benchmark (Table 2)")
    return parser


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pods", type=int, nargs="+", default=[4, 8], help="fattree pod counts k")
    parser.add_argument("--timeout", type=float, default=60.0, help="monolithic timeout in seconds")
    parser.add_argument("--jobs", type=int, default=1, help="parallel workers for modular checks")
    parser.add_argument("--skip-monolithic", action="store_true", help="only run the modular checks")
    parser.add_argument(
        "--symmetry",
        choices=["off", "classes", "spot-check"],
        default="off",
        help="symmetry reduction for modular checks (default: off)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="also print symmetry and incremental-backend cache statistics",
    )


def _settings(arguments: argparse.Namespace) -> SweepSettings:
    return SweepSettings(
        monolithic_timeout=arguments.timeout,
        jobs=arguments.jobs,
        run_monolithic=not arguments.skip_monolithic,
        symmetry=getattr(arguments, "symmetry", "off"),
    )


def _print_statistics(arguments: argparse.Namespace, results) -> None:
    if not getattr(arguments, "stats", False):
        return
    print()
    print(symmetry_table(results))
    print()
    print(cache_statistics_table(results))


def main(argv: Sequence[str] | None = None) -> int:
    arguments = build_argument_parser().parse_args(argv)

    if arguments.command == "figure1":
        results = scaling_comparison(arguments.policy, arguments.pods, settings=_settings(arguments))
        print(scaling_table(results))
        _print_statistics(arguments, results)
    elif arguments.command == "figure14":
        results = sweep_fattree(
            arguments.policy,
            arguments.pods,
            all_pairs=arguments.all_pairs,
            settings=_settings(arguments),
        )
        print(figure14_table(results))
        _print_statistics(arguments, results)
    elif arguments.command == "internet2":
        results = sweep_wan(
            arguments.peers,
            internal_routers=arguments.internal,
            settings=SweepSettings(
                monolithic_timeout=arguments.timeout,
                jobs=arguments.jobs,
                run_monolithic=not arguments.skip_monolithic,
            ),
        )
        print(internet2_table(results))
    elif arguments.command == "table1":
        print(ghost_state_table())
    elif arguments.command == "table2":
        print(lines_of_code_table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
