"""Fattree data-centre topologies (Al-Fares et al., SIGCOMM 2008).

The paper's scaling evaluation uses ``k``-fattrees: ``k`` pods, each with
``k/2`` aggregation and ``k/2`` edge (top-of-rack) switches, plus ``(k/2)²``
core switches — ``1.25·k²`` nodes and ``k³`` directed edges in total.  This
module generates those topologies, tracks each node's *role* (core /
aggregation / edge) and pod, and computes the ``dist(v)`` function used for
witness times: the number of synchronous rounds before ``v`` hears a route
originated at a given destination edge node (§6, "Witness times").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError
from repro.routing.topology import Topology

CORE = "core"
AGGREGATION = "aggregation"
EDGE = "edge"

ROLES = (CORE, AGGREGATION, EDGE)


@dataclass(frozen=True)
class FattreeNode:
    """Metadata for one fattree switch."""

    name: str
    role: str
    #: Pod index for aggregation/edge nodes; ``None`` for core nodes.
    pod: int | None
    #: Index of the node within its tier (and pod, where applicable).
    index: int


class Fattree:
    """A ``k``-pod fattree topology plus role/pod metadata."""

    def __init__(self, pods: int) -> None:
        if pods < 2 or pods % 2 != 0:
            raise BenchmarkError(f"fattrees require an even pod count >= 2, got {pods}")
        self.pods = pods
        self.radix = pods // 2
        self.topology = Topology()
        self._nodes: dict[str, FattreeNode] = {}
        self._build()

    # -- construction -----------------------------------------------------------

    def _build(self) -> None:
        radix = self.radix
        for core_index in range(radix * radix):
            self._add_node(f"core-{core_index}", CORE, None, core_index)
        for pod in range(self.pods):
            for index in range(radix):
                self._add_node(f"agg-{pod}-{index}", AGGREGATION, pod, index)
                self._add_node(f"edge-{pod}-{index}", EDGE, pod, index)
            # Full bipartite graph between the pod's aggregation and edge tiers.
            for agg_index in range(radix):
                for edge_index in range(radix):
                    self.topology.add_undirected_edge(
                        f"agg-{pod}-{agg_index}", f"edge-{pod}-{edge_index}"
                    )
            # Aggregation switch i connects to core group i (radix cores each).
            for agg_index in range(radix):
                for offset in range(radix):
                    core_name = f"core-{agg_index * radix + offset}"
                    self.topology.add_undirected_edge(f"agg-{pod}-{agg_index}", core_name)

    def _add_node(self, name: str, role: str, pod: int | None, index: int) -> None:
        self.topology.add_node(name)
        self._nodes[name] = FattreeNode(name=name, role=role, pod=pod, index=index)

    # -- metadata ----------------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        """The fattree's own switches (benchmarks may attach extra nodes to the
        topology — e.g. the Hijack benchmark's hijacker — which are not listed
        here)."""
        return tuple(self._nodes)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def info(self, node: str) -> FattreeNode:
        try:
            return self._nodes[node]
        except KeyError:
            raise BenchmarkError(f"unknown fattree node {node!r}") from None

    def role(self, node: str) -> str:
        return self.info(node).role

    def pod_of(self, node: str) -> int | None:
        return self.info(node).pod

    @property
    def core_nodes(self) -> tuple[str, ...]:
        return tuple(n for n in self.nodes if self.role(n) == CORE)

    @property
    def aggregation_nodes(self) -> tuple[str, ...]:
        return tuple(n for n in self.nodes if self.role(n) == AGGREGATION)

    @property
    def edge_nodes(self) -> tuple[str, ...]:
        return tuple(n for n in self.nodes if self.role(n) == EDGE)

    def edge_nodes_of_pod(self, pod: int) -> tuple[str, ...]:
        return tuple(n for n in self.edge_nodes if self.pod_of(n) == pod)

    def aggregation_nodes_of_pod(self, pod: int) -> tuple[str, ...]:
        return tuple(n for n in self.aggregation_nodes if self.pod_of(n) == pod)

    def default_destination(self) -> str:
        """The edge node used as the fixed destination in Sp benchmarks."""
        return self.edge_nodes[-1]

    # -- down/up edges (valley-freedom policy) -------------------------------------

    def is_down_edge(self, source: str, target: str) -> bool:
        """True for edges pointing down the hierarchy (core→agg, agg→edge)."""
        order = {CORE: 2, AGGREGATION: 1, EDGE: 0}
        return order[self.role(source)] > order[self.role(target)]

    def is_up_edge(self, source: str, target: str) -> bool:
        """True for edges pointing up the hierarchy (edge→agg, agg→core)."""
        order = {CORE: 2, AGGREGATION: 1, EDGE: 0}
        return order[self.role(source)] < order[self.role(target)]

    # -- the dist(v) function -------------------------------------------------------

    def distance_to_destination(self, node: str, destination: str) -> int:
        """``dist(v)``: rounds before ``v`` first hears the route from ``destination``.

        Follows the five-case analysis of §6: 0 for the destination, 1 for
        aggregation switches in its pod, 2 for core switches and the other
        edge switches of its pod, 3 for aggregation switches of other pods,
        and 4 for edge switches of other pods.
        """
        if self.role(destination) != EDGE:
            raise BenchmarkError(f"destination {destination!r} must be an edge node")
        if node == destination:
            return 0
        node_info = self.info(node)
        dest_pod = self.pod_of(destination)
        if node_info.role == AGGREGATION and node_info.pod == dest_pod:
            return 1
        if node_info.role == CORE:
            return 2
        if node_info.role == EDGE and node_info.pod == dest_pod:
            return 2
        if node_info.role == AGGREGATION:
            return 3
        return 4

    def adjacent_to_destination(self, node: str, destination: str) -> bool:
        """The ``adj(v)`` predicate of the Vf benchmark.

        True for the destination itself and the aggregation switches of its
        pod: the nodes whose best route travels only *up* from the destination
        and therefore must not carry the "down" community.
        """
        if node == destination:
            return True
        node_info = self.info(node)
        return node_info.role == AGGREGATION and node_info.pod == self.pod_of(destination)

    def __repr__(self) -> str:
        return f"Fattree(pods={self.pods}, nodes={self.node_count})"


def fattree_symmetry_key(fattree: Fattree, destination: str):
    """A symmetry-class key function for single-destination fattree benchmarks.

    Fattrees are vertex-transitive within each tier once a destination edge
    node is fixed: every node's verification conditions are determined (up
    to node renaming) by its role and whether it shares the destination's
    pod — the same case analysis as ``dist(v)`` in §6.  The returned
    function maps a node to the key ``(role, in destination pod?, is the
    destination?)``, i.e. at most six classes per benchmark regardless of
    ``k``: the destination, its pod's other edge switches, its pod's
    aggregation switches, the cores, and the other pods' aggregation and
    edge tiers.  Nodes the fattree does not know (benchmark extras such as
    the Hijack benchmark's hijacker) map to ``None`` — a singleton class.

    The construction order of :meth:`Fattree._build` guarantees the
    positional predecessor correspondence the checker's counterexample
    translation relies on: within a class, the ``i``-th in-neighbour of one
    member plays the same structural role as the ``i``-th in-neighbour of
    any other (pods are built in pod order, tiers in index order).
    """
    if fattree.role(destination) != EDGE:
        raise BenchmarkError(f"destination {destination!r} must be an edge node")
    destination_pod = fattree.pod_of(destination)

    def key(node: str):
        info = fattree._nodes.get(node)
        if info is None:
            return None
        return ("fattree", info.role, info.pod == destination_pod, node == destination)

    return key


def fattree_size(pods: int) -> int:
    """Number of nodes of a ``pods``-fattree (the paper's ``1.25·k²``)."""
    return (pods * pods) // 4 + pods * pods


def pods_for_node_budget(max_nodes: int) -> list[int]:
    """All even pod counts whose fattree has at most ``max_nodes`` nodes."""
    sizes = []
    pods = 4
    while fattree_size(pods) <= max_nodes:
        sizes.append(pods)
        pods += 2
    return sizes
