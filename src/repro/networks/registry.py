"""The benchmark registry: every verifiable network behind one named path.

Harness sweeps, the CLI, the benchmark suite and the tests all used to
construct networks through ad-hoc dispatchers (``build_benchmark`` for
fattrees, direct builder calls for the WAN and ghost networks).  The
registry replaces them with a single namespace of ``family/property`` names —

* ``fattree/reach``, ``fattree/length``, ``fattree/valley_freedom``,
  ``fattree/hijack`` (the all-pairs ``Ap`` variants via ``all_pairs=True``);
* ``wan/block_to_external`` (alias ``wan/reach``): the synthetic Internet2;
* ``ghost/reach`` (alias of the Figure 10 ``fromw`` construction),
  ``ghost/no_transit``, ``ghost/waypoint``;

— each mapping to a builder with *declared, validated* parameters: unknown
parameter names, wrong types and out-of-range values are rejected with a
:class:`~repro.errors.BenchmarkError` naming the benchmark and the allowed
values, before any network is built.

Every build returns an object satisfying the small
:class:`BuiltBenchmark` contract (``name``, ``annotated``, ``node_count``,
``parameters``), whatever shape the underlying builder produces, so callers
can hand the result straight to :class:`repro.verify.Session`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.annotations import AnnotatedNetwork
from repro.errors import BenchmarkError


@dataclass(frozen=True)
class Parameter:
    """One declared, validated parameter of a registered benchmark."""

    name: str
    kind: type
    default: Any
    description: str = ""
    #: Optional extra validation; returns an error string or ``None``.
    check: Callable[[Any], str | None] | None = None

    def validate(self, benchmark: str, value: Any) -> Any:
        if self.kind is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if self.kind is not Any:
            # None is legal only for parameters whose declared default is
            # None (e.g. optional overrides); elsewhere it is a type error
            # like any other, reported before the check callback runs.
            allows_none = self.default is None
            if (value is None and not allows_none) or (
                value is not None
                and (
                    not isinstance(value, self.kind)
                    or (self.kind is int and isinstance(value, bool))
                )
            ):
                raise BenchmarkError(
                    f"benchmark {benchmark!r}: parameter {self.name!r} must be "
                    f"{self.kind.__name__}, got {type(value).__name__}"
                )
        if self.check is not None:
            problem = self.check(value)
            if problem is not None:
                raise BenchmarkError(
                    f"benchmark {benchmark!r}: parameter {self.name!r} {problem} "
                    f"(got {value!r})"
                )
        return value


@dataclass(frozen=True)
class BenchmarkSpec:
    """A registered benchmark: a named builder with declared parameters."""

    name: str
    builder: Callable[..., Any]
    description: str
    parameters: tuple[Parameter, ...] = ()
    aliases: tuple[str, ...] = ()

    def build(self, **overrides: Any) -> "BuiltBenchmark":
        declared = {parameter.name: parameter for parameter in self.parameters}
        unknown = set(overrides) - set(declared)
        if unknown:
            raise BenchmarkError(
                f"benchmark {self.name!r} has no parameters {sorted(unknown)}; "
                f"allowed: {sorted(declared) or 'none'}"
            )
        arguments = {}
        for parameter in self.parameters:
            value = overrides.get(parameter.name, parameter.default)
            arguments[parameter.name] = parameter.validate(self.name, value)
        built = self.builder(**arguments)
        if isinstance(built, AnnotatedNetwork):
            return BuiltBenchmark(
                name=self.name, annotated=built, parameters=dict(arguments), raw=built
            )
        return BuiltBenchmark(
            name=getattr(built, "name", self.name),
            annotated=built.annotated,
            parameters=dict(arguments),
            raw=built,
        )


@dataclass
class BuiltBenchmark:
    """The uniform result of :func:`build`: ready for a verification session."""

    name: str
    annotated: AnnotatedNetwork
    parameters: dict[str, Any] = field(default_factory=dict)
    #: The underlying builder result (e.g. a ``FattreeBenchmark``), for
    #: callers that need family-specific details.
    raw: Any = None

    @property
    def network(self):
        return self.annotated.network

    @property
    def node_count(self) -> int:
        return self.annotated.network.topology.node_count


_REGISTRY: dict[str, BenchmarkSpec] = {}
_ALIASES: dict[str, str] = {}


def register(spec: BenchmarkSpec) -> BenchmarkSpec:
    """Register a benchmark spec (and its aliases) by name."""
    if spec.name in _REGISTRY or spec.name in _ALIASES:
        raise BenchmarkError(f"benchmark {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        if alias in _REGISTRY or alias in _ALIASES:
            raise BenchmarkError(f"benchmark alias {alias!r} is already registered")
        _ALIASES[alias] = spec.name
    return spec


def benchmark_names(include_aliases: bool = False) -> tuple[str, ...]:
    """The registered benchmark names, sorted."""
    names = set(_REGISTRY)
    if include_aliases:
        names |= set(_ALIASES)
    return tuple(sorted(names))


def get_spec(name: str) -> BenchmarkSpec:
    """Look up a spec by name or alias; raises with the known names."""
    canonical = _ALIASES.get(name, name)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        raise BenchmarkError(
            f"unknown benchmark {name!r}; choose one of {list(benchmark_names(include_aliases=True))}"
        ) from None


def build(name: str, **parameters: Any) -> BuiltBenchmark:
    """Build a registered benchmark with validated parameters."""
    return get_spec(name).build(**parameters)


# ---------------------------------------------------------------------------
# Built-in registrations
# ---------------------------------------------------------------------------


def _positive(what: str) -> Callable[[Any], str | None]:
    return lambda value: None if value > 0 else f"must be a positive {what}"


def _even_pods(value: Any) -> str | None:
    if value < 2 or value % 2 != 0:
        return "must be an even pod count >= 2"
    return None


def _widths_check(value: Any) -> str | None:
    if value is None:
        return None
    if not isinstance(value, Mapping):
        return "must be a mapping of field-width overrides or None"
    return None


def _fattree_parameters() -> tuple[Parameter, ...]:
    return (
        Parameter("pods", int, 4, "fattree pod count k", _even_pods),
        Parameter("all_pairs", bool, False, "symbolic-destination (Ap) variant"),
        Parameter("widths", Any, None, "route field-width overrides", _widths_check),
    )


def _register_fattree(policy: str, description: str) -> None:
    from repro.networks import benchmarks as fattree

    builders = {
        "reach": fattree.build_reach,
        "length": fattree.build_length,
        "valley_freedom": fattree.build_valley_freedom,
        "hijack": fattree.build_hijack,
    }
    register(
        BenchmarkSpec(
            name=f"fattree/{policy}",
            builder=builders[policy],
            description=description,
            parameters=_fattree_parameters(),
        )
    )


def _build_wan(internal_routers: int, external_peers: int, buggy: bool):
    from repro.config.generator import WanParameters
    from repro.networks.wan import build_wan_benchmark

    return build_wan_benchmark(
        WanParameters(
            internal_routers=internal_routers, external_peers=external_peers, buggy=buggy
        )
    )


def _build_ghost_reach():
    from repro.networks.ghost import reachability_from_destination

    return reachability_from_destination()


def _build_ghost_no_transit():
    from repro.networks.ghost import no_transit_network

    return no_transit_network()


def _build_ghost_waypoint(waypoints: tuple[str, ...]):
    from repro.networks.ghost import unordered_waypoint_network

    return unordered_waypoint_network(waypoints=tuple(waypoints))


def _register_builtins() -> None:
    _register_fattree("reach", "every node eventually has a route (Reach)")
    _register_fattree("length", "bounded path length to the destination (Len)")
    _register_fattree("valley_freedom", "reachability under valley-freedom tagging (Vf)")
    _register_fattree("hijack", "route filtering against an adversarial peer (Hijack)")
    register(
        BenchmarkSpec(
            name="wan/block_to_external",
            builder=_build_wan,
            description="BlockToExternal on the synthetic Internet2 WAN",
            parameters=(
                Parameter(
                    "internal_routers",
                    int,
                    10,
                    "internal ring size",
                    lambda v: None if v >= 3 else "must be at least 3",
                ),
                Parameter(
                    "external_peers", int, 40, "external peer count", _positive("peer count")
                ),
                Parameter("buggy", bool, False, "plant the missing-export-filter bug"),
            ),
            aliases=("wan/reach",),
        )
    )
    register(
        BenchmarkSpec(
            name="ghost/reach",
            builder=_build_ghost_reach,
            description="the running example with the fromw ghost bit (Figure 10)",
        )
    )
    register(
        BenchmarkSpec(
            name="ghost/no_transit",
            builder=_build_ghost_no_transit,
            description="two providers and a customer that must not provide transit",
        )
    )
    register(
        BenchmarkSpec(
            name="ghost/waypoint",
            builder=_build_ghost_waypoint,
            description="a service chain whose routes must traverse every waypoint",
            parameters=(
                Parameter(
                    "waypoints",
                    tuple,
                    ("firewall", "scrubber"),
                    "waypoint node names, in chain order",
                    lambda v: None if len(v) >= 1 else "must name at least one waypoint",
                ),
            ),
        )
    )


_register_builtins()
