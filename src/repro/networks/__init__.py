"""Benchmark networks: fattrees (Reach/Len/Vf/Hijack), the synthetic WAN and
ghost-state constructions.

These are the networks of the paper's evaluation (§6).  Each builder returns
an :class:`~repro.core.annotations.AnnotatedNetwork` complete with the
interfaces and properties described in the paper, ready for a
:class:`repro.verify.Session` under any strategy.

Construct networks by name through :mod:`repro.networks.registry`
(``registry.build("fattree/reach", pods=4)``) — the single validated path
used by the harness, CLI, benchmarks and tests.
"""

from repro.networks import registry
from repro.networks.registry import BenchmarkSpec, BuiltBenchmark, benchmark_names

from repro.networks.benchmarks import (
    COMPACT_WIDTHS,
    DOWN_COMMUNITY,
    FATTREE_DIAMETER,
    HIJACKER,
    POLICIES,
    FattreeBenchmark,
    build_benchmark,
    build_hijack,
    build_length,
    build_reach,
    build_valley_freedom,
)
from repro.networks.fattree import (
    AGGREGATION,
    CORE,
    EDGE,
    Fattree,
    FattreeNode,
    fattree_size,
    pods_for_node_budget,
)
from repro.networks.ghost import (
    GhostStateRow,
    ghost_state_catalog,
    no_transit_network,
    reachability_from_destination,
    unordered_waypoint_network,
)
from repro.networks.wan import WanBenchmark, block_to_external_predicate, build_wan_benchmark

__all__ = [
    "BenchmarkSpec",
    "BuiltBenchmark",
    "benchmark_names",
    "registry",
    "Fattree",
    "FattreeNode",
    "fattree_size",
    "pods_for_node_budget",
    "CORE",
    "AGGREGATION",
    "EDGE",
    "FattreeBenchmark",
    "build_benchmark",
    "build_reach",
    "build_length",
    "build_valley_freedom",
    "build_hijack",
    "POLICIES",
    "COMPACT_WIDTHS",
    "FATTREE_DIAMETER",
    "DOWN_COMMUNITY",
    "HIJACKER",
    "WanBenchmark",
    "build_wan_benchmark",
    "block_to_external_predicate",
    "GhostStateRow",
    "ghost_state_catalog",
    "reachability_from_destination",
    "unordered_waypoint_network",
    "no_transit_network",
]
