"""The fattree benchmark suite of §6: Reach, Len, Vf and Hijack.

Each benchmark builds an annotated fattree network running an (abstracted)
eBGP policy and supplies the interfaces and properties described in the
paper:

========== ==========================================================================
Benchmark  Property
========== ==========================================================================
Reach      every node eventually (by the fattree diameter, 4) has a route
Len        every node eventually has a route of at most 4 hops
Vf         reachability under a valley-freedom policy (no up-down-up paths)
Hijack     every internal node eventually has an internal route for the symbolic
           prefix ``p`` despite an adversarial hijacker attached to the core
========== ==========================================================================

Every benchmark comes in two flavours, following the paper: ``Sp`` (a fixed
destination edge node) and ``Ap`` (an *all-pairs* variant where the
destination is a symbolic variable ranging over all edge nodes).  Witness
times are derived from each node's role via ``dist(v)``
(:meth:`repro.networks.fattree.Fattree.distance_to_destination`), exactly as
described in §6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core import (
    AnnotatedNetwork,
    DestinationSymmetry,
    TemporalPredicate,
    always_true,
    finally_,
    finally_dynamic,
    globally,
    until,
    until_dynamic,
)
from repro.errors import BenchmarkError
from repro.networks.fattree import Fattree, fattree_symmetry_key
from repro.routing.algebra import Network, SymbolicVariable
from repro.routing.bgp import (
    BgpPolicy,
    BgpRouteFamily,
    DEFAULT_ADMIN_DISTANCE,
    DEFAULT_LOCAL_PREFERENCE,
    bgp_better,
    bgp_route_family,
)
from repro.routing.simple import option_min_merge
from repro.routing.topology import Edge
from repro.symbolic import BoolShape, SymBV, SymBool, SymOption, any_of, ite_value

#: The fattree diameter: the largest witness time used by the Sp properties.
FATTREE_DIAMETER = 4

#: The community used by the valley-freedom policy to mark "down" moves.
DOWN_COMMUNITY = "down"

#: Name of the hijacker node attached to the core tier.
HIJACKER = "hijacker"

#: Compact route-field widths; the SAT backend is pure Python, so the
#: benchmarks default to narrower fields than a production router would use
#: (see DESIGN.md §5 — widths are parameters, not baked in).
COMPACT_WIDTHS = {
    "prefix_width": 8,
    "ad_width": 4,
    "lp_width": 8,
    "med_width": 4,
    "path_width": 4,
}

POLICIES = ("reach", "length", "valley_freedom", "hijack")


@dataclass
class FattreeBenchmark:
    """A fully-built benchmark instance, ready to check."""

    name: str
    policy: str
    all_pairs: bool
    fattree: Fattree
    family: BgpRouteFamily
    annotated: AnnotatedNetwork
    #: The concrete destination for Sp benchmarks, ``None`` for Ap.
    destination: str | None

    @property
    def network(self) -> Network:
        return self.annotated.network

    @property
    def node_count(self) -> int:
        return self.fattree.node_count + (1 if self.policy == "hijack" else 0)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _identity_transfer(family: BgpRouteFamily) -> Callable[[Edge], Callable[[SymOption], SymOption]]:
    policy = BgpPolicy()

    def for_edge(edge: Edge) -> Callable[[SymOption], SymOption]:
        return policy.apply

    return for_edge


def _destination_announcement(family: BgpRouteFamily, prefix: Any = 0, **ghost: Any) -> dict[str, Any]:
    return family.default_announcement(prefix=0, lp=DEFAULT_LOCAL_PREFERENCE, **ghost)


def _sp_initial(
    family: BgpRouteFamily, destination: str, announcement: dict[str, Any]
) -> Callable[[str], SymOption]:
    def initial(node: str) -> SymOption:
        if node == destination:
            return family.route.some(announcement)
        return family.route.none()

    return initial


def _ap_destination(
    fattree: Fattree, family: BgpRouteFamily, announcement: dict[str, Any]
) -> tuple[SymbolicVariable, Callable[[str], SymOption], dict[str, SymBV]]:
    """Build the symbolic destination choice for all-pairs benchmarks.

    Returns the symbolic variable, the initial-route function, and a map from
    edge-node name to its index constant (used to compare against the symbolic
    index when computing distances).
    """
    edge_nodes = fattree.edge_nodes
    # One extra bit so the bound ``len(edge_nodes)`` itself is representable —
    # otherwise the range constraint below would wrap around and become false,
    # making every all-pairs check vacuous.
    index_width = max(1, len(edge_nodes).bit_length())
    destination_index = SymBV.fresh(index_width, "dest")
    symbolic = SymbolicVariable(
        name="dest",
        value=destination_index,
        constraint=destination_index < len(edge_nodes),
    )
    index_of = {name: position for position, name in enumerate(edge_nodes)}

    concrete_route = family.route.some(announcement)
    absent = family.route.none()

    def initial(node: str) -> SymOption:
        if node not in index_of:
            return absent
        is_destination = destination_index == index_of[node]
        return ite_value(is_destination, concrete_route, absent)

    return symbolic, initial, {name: index_of[name] for name in edge_nodes}


def _symbolic_distance(
    fattree: Fattree,
    node: str,
    destination_index: SymBV,
    index_of: dict[str, int],
) -> Callable[[SymBV], SymBV]:
    """``dist(node)`` as a function of the symbolic destination.

    Returns a callable usable as the witness of :func:`until_dynamic`: given
    the symbolic time variable (for its width), it builds the ite-chain that
    selects the concrete distance matching the chosen destination.
    """

    def witness(time: SymBV) -> SymBV:
        width = time.width
        result = SymBV.constant(FATTREE_DIAMETER, width)
        for edge_node, position in index_of.items():
            distance = fattree.distance_to_destination(node, edge_node)
            result = ite_value(destination_index == position, SymBV.constant(distance, width), result)
        return result

    return witness


def _symbolic_adjacency(
    fattree: Fattree,
    node: str,
    destination_index: SymBV,
    index_of: dict[str, int],
) -> SymBool:
    """``adj(node)`` as a predicate over the symbolic destination."""
    matches = [
        destination_index == position
        for edge_node, position in index_of.items()
        if fattree.adjacent_to_destination(node, edge_node)
    ]
    if not matches:
        return SymBool.false()
    return any_of(matches)


def _ap_symmetry(fattree: Fattree) -> DestinationSymmetry:
    """The destination-permutation marker shared by every ``Ap`` builder."""
    return DestinationSymmetry(variable="dest", size=len(fattree.edge_nodes))


def _standard_annotated(
    fattree: Fattree,
    family: BgpRouteFamily,
    network: Network,
    interfaces: dict[str, TemporalPredicate],
    properties: dict[str, TemporalPredicate],
    destination: str | None = None,
) -> AnnotatedNetwork:
    # Single-destination benchmarks carry a fattree symmetry hint: witness
    # times (and hence interfaces) depend only on (role, same pod as the
    # destination, is the destination), so the symmetry-aware checker can
    # partition nodes without hashing their conditions.  All-pairs variants
    # bake per-node destination-index constants into every interface, so no
    # two nodes are isomorphic term-for-term — they carry a
    # DestinationSymmetry marker instead, and the symmetry layer quotients
    # them up to simultaneous destination-index permutation.
    symmetry_key = None if destination is None else fattree_symmetry_key(fattree, destination)
    destination_symmetry = _ap_symmetry(fattree) if destination is None else None
    return AnnotatedNetwork(
        network,
        interfaces,
        properties,
        symmetry_key=symmetry_key,
        destination_symmetry=destination_symmetry,
    )


# ---------------------------------------------------------------------------
# Reach
# ---------------------------------------------------------------------------


def inject_interface_failure(
    annotated: AnnotatedNetwork, node: str | None = None
) -> tuple[AnnotatedNetwork, str]:
    """A copy of ``annotated`` with one node's interface made unsatisfiable.

    The failure-injection recipe shared by the stop-on-failure ablation row
    and the CI parallel-streaming smoke: ``node`` (default: the middle node
    of the selection order) claims it never has a route, so its inductive
    condition — and typically its successors' — must fail.  Returns the
    poisoned network and the chosen node.
    """
    poisoned = node if node is not None else annotated.nodes[len(annotated.nodes) // 2]
    interfaces = {name: annotated.interface(name) for name in annotated.nodes}
    interfaces[poisoned] = globally(lambda r: r.is_none)
    properties = {name: annotated.node_property(name) for name in annotated.nodes}
    injected = AnnotatedNetwork(
        annotated.network,
        interfaces,
        properties,
        minimum_time_width=annotated.minimum_time_width,
    )
    return injected, poisoned


def build_reach(pods: int, all_pairs: bool = False, widths: dict[str, int] | None = None) -> FattreeBenchmark:
    """The Reach benchmark: plain shortest-path-style eBGP, reachability."""
    fattree = Fattree(pods)
    family = bgp_route_family(**(widths or COMPACT_WIDTHS))
    has_route = lambda route: route.is_some  # noqa: E731 - tiny predicate

    reach_property = finally_(FATTREE_DIAMETER, globally(has_route))
    properties = {node: reach_property for node in fattree.nodes}

    if not all_pairs:
        destination = fattree.default_destination()
        network = Network(
            topology=fattree.topology,
            route_shape=family.route,
            initial_routes=_sp_initial(family, destination, _destination_announcement(family)),
            transfer_functions=_identity_transfer(family),
            merge=_bgp_option_merge(),
        )
        interfaces = {
            node: finally_(
                fattree.distance_to_destination(node, destination), globally(has_route)
            )
            for node in fattree.nodes
        }
        annotated = _standard_annotated(
            fattree, family, network, interfaces, properties, destination=destination
        )
        return FattreeBenchmark("SpReach", "reach", False, fattree, family, annotated, destination)

    symbolic, initial, index_of = _ap_destination(fattree, family, _destination_announcement(family))
    network = Network(
        topology=fattree.topology,
        route_shape=family.route,
        initial_routes=initial,
        transfer_functions=_identity_transfer(family),
        merge=_bgp_option_merge(),
        symbolics=(symbolic,),
    )
    interfaces = {
        node: finally_dynamic(
            _symbolic_distance(fattree, node, symbolic.value, index_of),
            globally(has_route),
            max_witness=FATTREE_DIAMETER,
        )
        for node in fattree.nodes
    }
    annotated = _standard_annotated(fattree, family, network, interfaces, properties)
    return FattreeBenchmark("ApReach", "reach", True, fattree, family, annotated, None)


def _bgp_option_merge() -> Callable[[SymOption, SymOption], SymOption]:
    def merge(left: SymOption, right: SymOption) -> SymOption:
        return option_min_merge(left, right, bgp_better)

    return merge


# ---------------------------------------------------------------------------
# Len
# ---------------------------------------------------------------------------


def build_length(pods: int, all_pairs: bool = False, widths: dict[str, int] | None = None) -> FattreeBenchmark:
    """The Len benchmark: bounded path length to the destination."""
    fattree = Fattree(pods)
    family = bgp_route_family(**(widths or COMPACT_WIDTHS))

    def no_better_routes(route: SymOption) -> SymBool:
        payload = route.payload
        return route.is_none | (
            (payload.lp == DEFAULT_LOCAL_PREFERENCE) & (payload.ad == DEFAULT_ADMIN_DISTANCE)
        )

    def length_at_most(bound: int) -> Callable[[SymOption], SymBool]:
        return lambda route: route.is_some & (route.payload.as_path_length <= bound)

    length_property = finally_(FATTREE_DIAMETER, globally(length_at_most(FATTREE_DIAMETER)))
    properties = {node: length_property for node in fattree.nodes}

    if not all_pairs:
        destination = fattree.default_destination()
        network = Network(
            topology=fattree.topology,
            route_shape=family.route,
            initial_routes=_sp_initial(family, destination, _destination_announcement(family)),
            transfer_functions=_identity_transfer(family),
            merge=_bgp_option_merge(),
        )
        interfaces = {
            node: globally(no_better_routes).intersect(
                finally_(
                    fattree.distance_to_destination(node, destination),
                    globally(length_at_most(fattree.distance_to_destination(node, destination))),
                )
            )
            for node in fattree.nodes
        }
        annotated = _standard_annotated(
            fattree, family, network, interfaces, properties, destination=destination
        )
        return FattreeBenchmark("SpLen", "length", False, fattree, family, annotated, destination)

    symbolic, initial, index_of = _ap_destination(fattree, family, _destination_announcement(family))
    network = Network(
        topology=fattree.topology,
        route_shape=family.route,
        initial_routes=initial,
        transfer_functions=_identity_transfer(family),
        merge=_bgp_option_merge(),
        symbolics=(symbolic,),
    )

    def ap_interface(node: str) -> TemporalPredicate:
        distance_of = _symbolic_distance(fattree, node, symbolic.value, index_of)

        def bounded_length(route: SymOption, time: SymBV) -> SymBool:
            # path_length ≤ dist(node), where the distance depends on the
            # symbolic destination; compare by cases since the two bitvectors
            # have different widths and the distance is at most the diameter.
            distance = distance_of(time)
            return route.is_some & _length_within_distance(route.payload.as_path_length, distance)

        eventually_short = until_dynamic(
            distance_of,
            lambda route: SymBool.true(),
            TemporalPredicate(bounded_length, max_witness=FATTREE_DIAMETER),
            max_witness=FATTREE_DIAMETER,
        )
        return globally(no_better_routes).intersect(eventually_short)

    interfaces = {node: ap_interface(node) for node in fattree.nodes}
    annotated = _standard_annotated(fattree, family, network, interfaces, properties)
    return FattreeBenchmark("ApLen", "length", True, fattree, family, annotated, None)


def _length_within_distance(path_length: SymBV, distance: SymBV) -> SymBool:
    """``path_length ≤ distance`` across differing widths (distance ≤ diameter)."""
    result = SymBool.false()
    for value in range(FATTREE_DIAMETER + 1):
        result = result | ((distance == value) & (path_length <= value))
    return result


# ---------------------------------------------------------------------------
# Vf (valley freedom)
# ---------------------------------------------------------------------------


def build_valley_freedom(
    pods: int, all_pairs: bool = False, widths: dict[str, int] | None = None
) -> FattreeBenchmark:
    """The Vf benchmark: reachability under a valley-freedom tagging policy."""
    fattree = Fattree(pods)
    parameters = dict(widths or COMPACT_WIDTHS)
    family = bgp_route_family(communities=(DOWN_COMMUNITY,), **parameters)
    has_route = lambda route: route.is_some  # noqa: E731

    def transfer_for(edge: Edge) -> Callable[[SymOption], SymOption]:
        source, target = edge
        if fattree.is_down_edge(source, target):
            policy = BgpPolicy(add_communities=(DOWN_COMMUNITY,))
        elif fattree.is_up_edge(source, target):
            policy = BgpPolicy(deny_communities=(DOWN_COMMUNITY,))
        else:
            policy = BgpPolicy()
        return policy.apply

    reach_property = finally_(FATTREE_DIAMETER, globally(has_route))
    properties = {node: reach_property for node in fattree.nodes}

    def stable_payload(node_distance: int, must_be_clean: SymBool) -> Callable[[SymOption], SymBool]:
        def predicate(route: SymOption) -> SymBool:
            payload = route.payload
            clean = ~payload.communities.contains(DOWN_COMMUNITY)
            return (
                route.is_some
                & (payload.lp == DEFAULT_LOCAL_PREFERENCE)
                & (payload.ad == DEFAULT_ADMIN_DISTANCE)
                & (payload.as_path_length == node_distance)
                & (must_be_clean.implies(clean))
            )

        return predicate

    if not all_pairs:
        destination = fattree.default_destination()
        network = Network(
            topology=fattree.topology,
            route_shape=family.route,
            initial_routes=_sp_initial(family, destination, _destination_announcement(family)),
            transfer_functions=transfer_for,
            merge=_bgp_option_merge(),
        )
        interfaces = {}
        for node in fattree.nodes:
            distance = fattree.distance_to_destination(node, destination)
            adjacent = SymBool.constant(fattree.adjacent_to_destination(node, destination))
            interfaces[node] = until(
                distance,
                lambda route: route.is_none,
                globally(stable_payload(distance, adjacent)),
            )
        annotated = _standard_annotated(
            fattree, family, network, interfaces, properties, destination=destination
        )
        return FattreeBenchmark("SpVf", "valley_freedom", False, fattree, family, annotated, destination)

    symbolic, initial, index_of = _ap_destination(fattree, family, _destination_announcement(family))
    network = Network(
        topology=fattree.topology,
        route_shape=family.route,
        initial_routes=initial,
        transfer_functions=transfer_for,
        merge=_bgp_option_merge(),
        symbolics=(symbolic,),
    )

    def ap_interface(node: str) -> TemporalPredicate:
        distance_of = _symbolic_distance(fattree, node, symbolic.value, index_of)
        adjacent = _symbolic_adjacency(fattree, node, symbolic.value, index_of)

        def after(route: SymOption, time: SymBV) -> SymBool:
            payload = route.payload
            clean = ~payload.communities.contains(DOWN_COMMUNITY)
            distance = distance_of(time)
            length_matches = _compare_path_length(payload.as_path_length, distance)
            return (
                route.is_some
                & (payload.lp == DEFAULT_LOCAL_PREFERENCE)
                & (payload.ad == DEFAULT_ADMIN_DISTANCE)
                & length_matches
                & (adjacent.implies(clean))
            )

        return until_dynamic(
            distance_of,
            lambda route: route.is_none,
            TemporalPredicate(after, max_witness=FATTREE_DIAMETER),
            max_witness=FATTREE_DIAMETER,
        )

    interfaces = {node: ap_interface(node) for node in fattree.nodes}
    annotated = _standard_annotated(fattree, family, network, interfaces, properties)
    return FattreeBenchmark("ApVf", "valley_freedom", True, fattree, family, annotated, None)


def _compare_path_length(path_length: SymBV, distance: SymBV) -> SymBool:
    """``path_length == distance`` across differing widths (distance ≤ diameter)."""
    if path_length.width == distance.width:
        return path_length == distance
    # The distance is at most the fattree diameter (4), so compare by case.
    result = SymBool.false()
    for value in range(FATTREE_DIAMETER + 1):
        result = result | ((distance == value) & (path_length == value))
    return result


# ---------------------------------------------------------------------------
# Hijack
# ---------------------------------------------------------------------------


def build_hijack(pods: int, all_pairs: bool = False, widths: dict[str, int] | None = None) -> FattreeBenchmark:
    """The Hijack benchmark: route filtering against an adversarial peer.

    A ``hijacker`` node is attached to every core switch and may announce any
    route (its initial route is symbolic, marked with the ``external`` ghost
    bit).  The destination announces the symbolic prefix ``p``; core switches
    drop routes for ``p`` learned from the hijacker.  The property states that
    every internal node eventually holds a route for ``p`` that is not via the
    hijacker.
    """
    fattree = Fattree(pods)
    parameters = dict(widths or COMPACT_WIDTHS)
    family = bgp_route_family(ghost_fields={"external": BoolShape()}, **parameters)

    topology = fattree.topology
    for core in fattree.core_nodes:
        topology.add_undirected_edge(HIJACKER, core)

    prefix_width = parameters["prefix_width"]
    internal_prefix = SymBV.fresh(prefix_width, "prefix")
    prefix_symbolic = SymbolicVariable(name="prefix", value=internal_prefix)

    hijacker_route = family.route.fresh("hijack_announcement")
    hijacker_symbolic = SymbolicVariable(
        name="hijack_announcement",
        value=hijacker_route,
        constraint=family.route.constraint(hijacker_route)
        & (hijacker_route.is_none | hijacker_route.payload.external),
    )

    def transfer_for(edge: Edge) -> Callable[[SymOption], SymOption]:
        source, target = edge
        if source == HIJACKER:
            # Core switches filter hijacker routes for the internal prefix.
            policy = BgpPolicy(guard=lambda payload: payload.prefix != internal_prefix)
        else:
            policy = BgpPolicy()
        return policy.apply

    def merge(left: SymOption, right: SymOption) -> SymOption:
        # Routes for the internal prefix win over routes for other prefixes
        # (the per-prefix RIB abstraction), then the usual decision process.
        def better(a: Any, b: Any) -> SymBool:
            a_internal = a.prefix == internal_prefix
            b_internal = b.prefix == internal_prefix
            return (a_internal & ~b_internal) | ((a_internal == b_internal) & bgp_better(a, b))

        return option_min_merge(left, right, better)

    def internal_route(route: SymOption) -> SymBool:
        return route.is_some & (route.payload.prefix == internal_prefix) & ~route.payload.external

    def no_hijack(route: SymOption) -> SymBool:
        return route.is_none | (route.payload.prefix == internal_prefix).implies(
            ~route.payload.external
        )

    hijack_property = finally_(FATTREE_DIAMETER, globally(internal_route))
    properties: dict[str, TemporalPredicate] = {
        node: hijack_property for node in fattree.nodes
    }
    properties[HIJACKER] = always_true()

    def announcement() -> dict[str, Any]:
        values = family.default_announcement(external=False)
        return values

    def make_initial(sp_destination: str | None, ap_initial: Callable[[str], SymOption] | None):
        concrete = dict(announcement())

        def initial(node: str) -> SymOption:
            if node == HIJACKER:
                return hijacker_route
            if ap_initial is not None:
                base = ap_initial(node)
            elif node == sp_destination:
                base = family.route.some(concrete)
            else:
                base = family.route.none()
            # The destination advertises the symbolic prefix p.
            return base.map(lambda payload: payload.with_fields(prefix=internal_prefix))

        return initial

    if not all_pairs:
        destination = fattree.default_destination()
        network = Network(
            topology=topology,
            route_shape=family.route,
            initial_routes=make_initial(destination, None),
            transfer_functions=transfer_for,
            merge=merge,
            symbolics=(prefix_symbolic, hijacker_symbolic),
        )
        interfaces: dict[str, TemporalPredicate] = {}
        for node in fattree.nodes:
            distance = fattree.distance_to_destination(node, destination)
            interfaces[node] = finally_(distance, globally(internal_route)).intersect(
                globally(no_hijack)
            )
        interfaces[HIJACKER] = always_true()
        annotated = _standard_annotated(
            fattree, family, network, interfaces, properties, destination=destination
        )
        return FattreeBenchmark("SpHijack", "hijack", False, fattree, family, annotated, destination)

    symbolic, ap_initial, index_of = _ap_destination(fattree, family, announcement())
    network = Network(
        topology=topology,
        route_shape=family.route,
        initial_routes=make_initial(None, ap_initial),
        transfer_functions=transfer_for,
        merge=merge,
        symbolics=(symbolic, prefix_symbolic, hijacker_symbolic),
    )
    interfaces = {}
    for node in fattree.nodes:
        distance_of = _symbolic_distance(fattree, node, symbolic.value, index_of)
        interfaces[node] = finally_dynamic(
            distance_of, globally(internal_route), max_witness=FATTREE_DIAMETER
        ).intersect(globally(no_hijack))
    interfaces[HIJACKER] = always_true()
    annotated = AnnotatedNetwork(
        network, interfaces, properties, destination_symmetry=_ap_symmetry(fattree)
    )
    return FattreeBenchmark("ApHijack", "hijack", True, fattree, family, annotated, None)


# ---------------------------------------------------------------------------
# Legacy dispatch (shim over the benchmark registry)
# ---------------------------------------------------------------------------


def build_benchmark(
    policy: str, pods: int, all_pairs: bool = False, widths: dict[str, int] | None = None
) -> FattreeBenchmark:
    """Deprecated shim over :mod:`repro.networks.registry`.

    Use ``registry.build(f"fattree/{policy}", pods=..., all_pairs=...,
    widths=...)`` instead; the built network is identical (the registry
    entries call this module's builders).
    """
    import warnings

    warnings.warn(
        "build_benchmark is deprecated; use repro.networks.registry.build"
        "('fattree/<policy>', pods=..., all_pairs=..., widths=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.networks import registry

    if policy not in POLICIES:
        raise BenchmarkError(f"unknown policy {policy!r}; choose one of {sorted(POLICIES)}")
    built = registry.build(f"fattree/{policy}", pods=pods, all_pairs=all_pairs, widths=widths)
    return built.raw
