"""The wide-area-network benchmark: BlockToExternal on a synthetic Internet2.

This reproduces the shape of the paper's §6 Internet2 experiment.  The real
experiment loads Internet2's Junos configuration (10 internal routers, 253
external peers, 1,552 policies) through Batfish; here we generate a synthetic
configuration of the same structure with our policy DSL
(:mod:`repro.config.generator`), compile it to a network, and verify the same
property:

    if the internal routers initially hold *any* possible routes, then no
    external neighbour ever obtains a route carrying the ``BTE`` community —
    assuming the external neighbours do not start with such routes.

Exactly as in the paper, the interface *is* the property (a pure ``G``
invariant), internal nodes are unconstrained (``G(true)``), and the benchmark
is checked both modularly and monolithically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.compiler import CompiledConfig, load_config
from repro.config.generator import BTE_COMMUNITY, WanParameters, generate_wan_config
from repro.core import AnnotatedNetwork, TemporalPredicate, always_true, globally
from repro.symbolic import SymBool, SymOption


@dataclass
class WanBenchmark:
    """A fully-built BlockToExternal benchmark instance."""

    name: str
    parameters: WanParameters
    compiled: CompiledConfig
    annotated: AnnotatedNetwork
    config_text: str

    @property
    def network(self):
        return self.compiled.network

    @property
    def node_count(self) -> int:
        return self.network.topology.node_count

    @property
    def config_line_count(self) -> int:
        return len(self.config_text.splitlines())


def block_to_external_predicate(route: SymOption) -> SymBool:
    """``s ≠ ∞ → BTE ∉ s.tags`` (the paper's BlockToExternal predicate)."""
    return route.is_none | ~route.payload.communities.contains(BTE_COMMUNITY)


def build_wan_benchmark(
    parameters: WanParameters = WanParameters(),
    config_text: str | None = None,
) -> WanBenchmark:
    """Build the BlockToExternal benchmark.

    ``config_text`` overrides the generated configuration (used by tests and
    by the example that loads a hand-written config file).
    """
    text = config_text if config_text is not None else generate_wan_config(parameters)
    compiled = load_config(
        text,
        symbolic_internal_initials=True,
        external_constraint=block_to_external_predicate,
    )

    externals = set(compiled.external_nodes)

    def interface_for(node: str) -> TemporalPredicate:
        if node in externals:
            return globally(block_to_external_predicate, description="G(no BTE route)")
        return always_true()

    annotated = AnnotatedNetwork(
        compiled.network,
        interfaces=interface_for,
        properties=interface_for,
    )
    return WanBenchmark(
        name="BlockToExternal",
        parameters=parameters,
        compiled=compiled,
        annotated=annotated,
        config_text=text,
    )
