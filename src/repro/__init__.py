"""Timepiece reproduction: modular control plane verification via temporal invariants.

A from-scratch Python reproduction of the PLDI 2023 paper.  The top-level
subpackages are:

* :mod:`repro.smt` — a self-contained finite-domain SMT solver (terms,
  bit-blasting, CDCL SAT), standing in for Z3;
* :mod:`repro.symbolic` — the Zen-like symbolic modelling layer (booleans,
  bitvectors, enums, options, finite sets, records);
* :mod:`repro.routing` — routing algebras, topologies and the synchronous
  simulator ``σ``;
* :mod:`repro.core` — the paper's contribution: temporal interfaces, the
  three verification conditions, the modular checking primitives, the
  monolithic baseline and the (deliberately unsound) strawperson procedure;
* :mod:`repro.verify` — the unified verification API: strategy objects,
  the solver-owning :class:`~repro.verify.Session`, streaming condition
  events and the common report protocol;
* :mod:`repro.config` — a Junos-inspired policy DSL and synthetic
  Internet2-style WAN generator;
* :mod:`repro.networks` — the evaluation's benchmark networks (fattrees,
  WAN, ghost-state constructions), buildable by name through
  :mod:`repro.networks.registry`; and
* :mod:`repro.harness` — experiment sweeps and table/figure printers.

Quick start::

    from repro.routing import build_running_example
    from repro import core
    from repro.verify import Modular, verify

    example = build_running_example("symbolic")
    annotated = core.annotate(
        example.network,
        interfaces={...},   # per-node temporal predicates
        properties={...},
    )
    report = verify(annotated, Modular())
    assert report.passed
"""

__version__ = "1.0.0"

__all__ = [
    "smt",
    "symbolic",
    "routing",
    "core",
    "verify",
    "config",
    "networks",
    "harness",
    "errors",
]
