"""DIMACS CNF import/export helpers.

These are mainly debugging aids: they let a formula produced by the encoder
be dumped to the standard DIMACS format (so it can be cross-checked against
an external SAT solver on another machine) and let DIMACS benchmark files be
loaded into the CDCL core for testing.
"""

from __future__ import annotations

from repro.errors import SolverError
from repro.smt.cnf import Cnf


def dumps(cnf: Cnf, comments: list[str] | None = None) -> str:
    """Serialise a :class:`Cnf` to DIMACS text."""
    lines = [f"c {comment}" for comment in comments or []]
    lines.append(f"p cnf {cnf.num_vars} {cnf.num_clauses}")
    for clause in cnf.clauses:
        lines.append(" ".join(str(literal) for literal in clause) + " 0")
    return "\n".join(lines) + "\n"


def loads(text: str) -> Cnf:
    """Parse DIMACS text into a :class:`Cnf`."""
    cnf = Cnf()
    declared_vars: int | None = None
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SolverError(f"malformed DIMACS header: {line!r}")
            declared_vars = int(parts[2])
            while cnf.num_vars < declared_vars:
                cnf.new_var()
            continue
        literals = [int(token) for token in line.split()]
        if literals and literals[-1] == 0:
            literals = literals[:-1]
        for literal in literals:
            while cnf.num_vars < abs(literal):
                cnf.new_var()
        cnf.add_clause(literals)
    if declared_vars is None:
        raise SolverError("DIMACS input has no problem line")
    return cnf


def load_file(path: str) -> Cnf:
    """Read a DIMACS file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


def dump_file(cnf: Cnf, path: str, comments: list[str] | None = None) -> None:
    """Write a DIMACS file to disk."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(cnf, comments))
