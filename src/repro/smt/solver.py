"""The SMT solver facade: assert terms, check satisfiability, read models.

This is the narrow waist between the symbolic modelling layer and the SAT
core.  A :class:`Solver` owns a set of asserted boolean terms; ``check()``
conjoins them, bit-blasts the conjunction, converts it to CNF with the
Tseitin transform and hands the clauses to the CDCL solver.  When the result
is satisfiable, the solver reassembles a :class:`~repro.smt.model.Model` over
the original (pre-blasting) variable names.

Two backends discharge queries:

* :class:`Solver` — the stateless facade.  Each ``check`` builds a fresh SAT
  instance; simple, allocation-heavy, and the natural baseline.
* :class:`~repro.smt.incremental.IncrementalSolver` — a persistent backend
  that keeps one CDCL solver alive across checks, caches bit-blasting and
  Tseitin output per term, and implements ``push``/``pop`` with activation
  literals.  Pass one to :func:`prove`/:func:`check_sat` via their ``solver``
  argument (or use :func:`repro.smt.incremental.process_solver` for the
  shared per-process instance) to amortise encoding and learned clauses
  across queries.

Two convenience entry points cover the two query shapes Timepiece needs:

* :meth:`Solver.check` — is the conjunction of assertions satisfiable?
* :func:`prove` — is a formula valid?  (Checks the negation for
  unsatisfiability and returns a counterexample model otherwise.)

Module-level :data:`GLOBAL_STATISTICS` aggregates encoding and solving work
across *all* backends in the process; the ablation benchmarks snapshot it to
compare the fresh and incremental pipelines.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, replace

from repro.errors import SolverError
from repro.smt import builder
from repro.smt.bitblast import BitBlaster, bit_name
from repro.smt.cnf import Cnf
from repro.smt.model import Model
from repro.smt.sat.solver import CdclSolver, SatStatus
from repro.smt.terms import Term, free_variables
from repro.smt.tseitin import TseitinEncoder


class CheckResult:
    """Outcome of a satisfiability check."""

    def __init__(self, status: SatStatus, model: Model | None) -> None:
        self.status = status
        self._model = model

    @property
    def is_sat(self) -> bool:
        return self.status == SatStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == SatStatus.UNSAT

    def model(self) -> Model:
        if self._model is None:
            raise SolverError(
                f"no model available (the solver reported {self.status.value!r})"
            )
        return self._model

    def __repr__(self) -> str:
        return f"CheckResult({self.status.value})"


@dataclass
class SolverStatistics:
    """Aggregate statistics for benchmarking the SMT backend."""

    variables: int = 0
    clauses: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    checks: int = 0
    solve_seconds: float = 0.0

    def snapshot(self) -> "SolverStatistics":
        """An independent copy (for before/after deltas)."""
        return replace(self)

    def since(self, earlier: "SolverStatistics") -> "SolverStatistics":
        """The component-wise difference ``self - earlier``."""
        return SolverStatistics(
            variables=self.variables - earlier.variables,
            clauses=self.clauses - earlier.clauses,
            conflicts=self.conflicts - earlier.conflicts,
            decisions=self.decisions - earlier.decisions,
            propagations=self.propagations - earlier.propagations,
            checks=self.checks - earlier.checks,
            solve_seconds=self.solve_seconds - earlier.solve_seconds,
        )


#: Process-wide totals across every backend (fresh facades and incremental
#: solvers alike).  The ablation benchmarks snapshot this to compare modes.
GLOBAL_STATISTICS = SolverStatistics()


class Solver:
    """Stateless facade over the eager bit-blasting pipeline.

    The facade supports ``push``/``pop`` of assertion frames.  Each ``check``
    builds a fresh SAT instance — nothing is reused between queries, which
    keeps this path simple and makes it the baseline the incremental backend
    (:class:`repro.smt.incremental.IncrementalSolver`) is measured against.
    """

    def __init__(self) -> None:
        self._assertions: list[Term] = []
        self._frames: list[int] = []
        self.statistics = SolverStatistics()

    # -- assertion management ----------------------------------------------------

    def add(self, *terms: Term) -> None:
        """Assert one or more boolean terms."""
        for term in terms:
            if not term.sort.is_bool():
                raise SolverError(f"only boolean terms can be asserted, got sort {term.sort!r}")
            self._assertions.append(term)

    def push(self) -> None:
        """Open a new assertion frame."""
        self._frames.append(len(self._assertions))

    def pop(self) -> None:
        """Discard every assertion added since the matching :meth:`push`."""
        if not self._frames:
            raise SolverError("pop without a matching push")
        boundary = self._frames.pop()
        del self._assertions[boundary:]

    @property
    def assertions(self) -> tuple[Term, ...]:
        return tuple(self._assertions)

    # -- solving ------------------------------------------------------------------

    def check(self, *extra: Term, timeout: float | None = None) -> CheckResult:
        """Check satisfiability of the asserted terms plus ``extra``.

        ``timeout`` is a soft wall-clock limit in seconds; a timed-out query
        reports :data:`SatStatus.UNKNOWN`.
        """
        started = _time.perf_counter()
        goal = builder.and_(*self._assertions, *extra)
        if goal.is_true():
            return CheckResult(SatStatus.SAT, Model({}))
        if goal.is_false():
            return CheckResult(SatStatus.UNSAT, None)

        blaster = BitBlaster()
        blasted = blaster.blast(goal)
        if blasted.is_true():
            return CheckResult(SatStatus.SAT, Model({}))
        if blasted.is_false():
            return CheckResult(SatStatus.UNSAT, None)

        cnf = Cnf()
        encoder = TseitinEncoder(cnf)
        encoder.assert_term(blasted)

        sat_solver = CdclSolver()
        sat_solver.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            sat_solver.add_clause_unchecked(list(clause))
        status = sat_solver.solve(timeout=timeout)

        elapsed = _time.perf_counter() - started
        for statistics in (self.statistics, GLOBAL_STATISTICS):
            statistics.variables += cnf.num_vars
            statistics.clauses += cnf.num_clauses
            statistics.conflicts += sat_solver.statistics["conflicts"]
            statistics.decisions += sat_solver.statistics["decisions"]
            statistics.propagations += sat_solver.statistics["propagations"]
            statistics.checks += 1
            statistics.solve_seconds += elapsed

        if status != SatStatus.SAT:
            return CheckResult(status, None)
        model = self._reconstruct_model(goal, cnf, sat_solver.model(), blaster)
        return CheckResult(status, model)

    @staticmethod
    def _reconstruct_model(
        goal: Term,
        cnf: Cnf,
        sat_assignment: dict[int, bool],
        blaster: BitBlaster,
    ) -> Model:
        values: dict[str, bool | int] = {}
        # Boolean variables keep their names through blasting and CNF conversion.
        for name, cnf_var in cnf.name_to_var.items():
            if name.startswith("$") or bit_is_exploded(name):
                continue
            values[name] = sat_assignment.get(cnf_var, False)
        # Bitvector variables are reassembled from their per-bit booleans.
        for name, width in blaster.bitvector_variables.items():
            value = 0
            for index in range(width):
                cnf_var = cnf.name_to_var.get(bit_name(name, index))
                if cnf_var is not None and sat_assignment.get(cnf_var, False):
                    value |= 1 << index
            values[name] = value
        # Variables of the goal that were simplified away are unconstrained;
        # record defaults so counterexample reporting is total.
        for name, term in free_variables(goal).items():
            if name not in values:
                values[name] = False if term.sort.is_bool() else 0
        return Model(values)


def bit_is_exploded(name: str) -> bool:
    """True for the per-bit boolean variable names created by the bit-blaster."""
    from repro.smt.bitblast import BIT_SEPARATOR

    return BIT_SEPARATOR in name


def check_sat(term: Term, solver: "Solver | None" = None) -> CheckResult:
    """Check satisfiability of a single term.

    ``solver`` may be a reusable backend (a facade :class:`Solver` or an
    :class:`~repro.smt.incremental.IncrementalSolver`); the term is checked
    in a fresh ``push``/``pop`` frame so the backend's own assertions are
    untouched.  Without one, a throwaway facade is used.
    """
    if solver is None:
        solver = Solver()
        solver.add(term)
        return solver.check()
    solver.push()
    try:
        solver.add(term)
        return solver.check()
    finally:
        solver.pop()


@dataclass
class ProofResult:
    """Outcome of a validity query."""

    valid: bool
    counterexample: Model | None
    #: True when the query timed out (neither proved nor refuted).
    unknown: bool = False

    def __bool__(self) -> bool:
        return self.valid


def prove(
    term: Term,
    *assumptions: Term,
    timeout: float | None = None,
    solver: "Solver | None" = None,
) -> ProofResult:
    """Decide validity of ``assumptions ⟹ term``.

    Returns a :class:`ProofResult`; when the implication is not valid, the
    result carries a counterexample model of the assumptions plus the negated
    goal.  With ``timeout`` set, an undecided query is reported with
    ``unknown=True``.

    ``solver`` selects the backend: pass a long-lived
    :class:`~repro.smt.incremental.IncrementalSolver` (or facade
    :class:`Solver`) to reuse its encoded structure and learned clauses —
    the query runs inside a ``push``/``pop`` frame so the backend is left as
    it was found.  Without one, a throwaway facade is built (the historical
    behaviour).
    """
    if solver is None:
        solver = Solver()
        for assumption in assumptions:
            solver.add(assumption)
        solver.add(builder.not_(term))
        outcome = solver.check(timeout=timeout)
    else:
        solver.push()
        try:
            for assumption in assumptions:
                solver.add(assumption)
            solver.add(builder.not_(term))
            outcome = solver.check(timeout=timeout)
        finally:
            solver.pop()
    if outcome.is_unsat:
        return ProofResult(True, None)
    if outcome.status == SatStatus.UNKNOWN:
        return ProofResult(False, None, unknown=True)
    return ProofResult(False, outcome.model())
