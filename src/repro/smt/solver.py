"""The SMT solver facade: assert terms, check satisfiability, read models.

This is the narrow waist between the symbolic modelling layer and the SAT
core.  A :class:`Solver` owns a set of asserted boolean terms; ``check()``
conjoins them, bit-blasts the conjunction, converts it to CNF with the
Tseitin transform and hands the clauses to the CDCL solver.  When the result
is satisfiable, the solver reassembles a :class:`~repro.smt.model.Model` over
the original (pre-blasting) variable names.

Two convenience entry points cover the two query shapes Timepiece needs:

* :meth:`Solver.check` — is the conjunction of assertions satisfiable?
* :func:`prove` — is a formula valid?  (Checks the negation for
  unsatisfiability and returns a counterexample model otherwise.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SolverError
from repro.smt import builder
from repro.smt.bitblast import BitBlaster, bit_name
from repro.smt.cnf import Cnf
from repro.smt.model import Model
from repro.smt.sat.solver import CdclSolver, SatStatus
from repro.smt.terms import Term, free_variables
from repro.smt.tseitin import TseitinEncoder


class CheckResult:
    """Outcome of a satisfiability check."""

    def __init__(self, status: SatStatus, model: Model | None) -> None:
        self.status = status
        self._model = model

    @property
    def is_sat(self) -> bool:
        return self.status == SatStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == SatStatus.UNSAT

    def model(self) -> Model:
        if self._model is None:
            raise SolverError("no model available (the query was unsatisfiable)")
        return self._model

    def __repr__(self) -> str:
        return f"CheckResult({self.status.value})"


@dataclass
class SolverStatistics:
    """Aggregate statistics for benchmarking the SMT backend."""

    variables: int = 0
    clauses: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0


class Solver:
    """Incremental-looking facade over the eager bit-blasting pipeline.

    The facade supports ``push``/``pop`` of assertion frames.  Each ``check``
    builds a fresh SAT instance — re-encoding is cheap at the formula sizes
    produced by per-node verification conditions, and it keeps the SAT core
    simple and stateless between queries.
    """

    def __init__(self) -> None:
        self._assertions: list[Term] = []
        self._frames: list[int] = []
        self.statistics = SolverStatistics()

    # -- assertion management ----------------------------------------------------

    def add(self, *terms: Term) -> None:
        """Assert one or more boolean terms."""
        for term in terms:
            if not term.sort.is_bool():
                raise SolverError(f"only boolean terms can be asserted, got sort {term.sort!r}")
            self._assertions.append(term)

    def push(self) -> None:
        """Open a new assertion frame."""
        self._frames.append(len(self._assertions))

    def pop(self) -> None:
        """Discard every assertion added since the matching :meth:`push`."""
        if not self._frames:
            raise SolverError("pop without a matching push")
        boundary = self._frames.pop()
        del self._assertions[boundary:]

    @property
    def assertions(self) -> tuple[Term, ...]:
        return tuple(self._assertions)

    # -- solving ------------------------------------------------------------------

    def check(self, *extra: Term, timeout: float | None = None) -> CheckResult:
        """Check satisfiability of the asserted terms plus ``extra``.

        ``timeout`` is a soft wall-clock limit in seconds; a timed-out query
        reports :data:`SatStatus.UNKNOWN`.
        """
        goal = builder.and_(*self._assertions, *extra)
        if goal.is_true():
            return CheckResult(SatStatus.SAT, Model({}))
        if goal.is_false():
            return CheckResult(SatStatus.UNSAT, None)

        blaster = BitBlaster()
        blasted = blaster.blast(goal)
        if blasted.is_true():
            return CheckResult(SatStatus.SAT, Model({}))
        if blasted.is_false():
            return CheckResult(SatStatus.UNSAT, None)

        cnf = Cnf()
        encoder = TseitinEncoder(cnf)
        encoder.assert_term(blasted)

        sat_solver = CdclSolver()
        sat_solver.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            sat_solver.add_clause(clause)
        status = sat_solver.solve(timeout=timeout)

        self.statistics.variables += cnf.num_vars
        self.statistics.clauses += cnf.num_clauses
        self.statistics.conflicts += sat_solver.statistics["conflicts"]
        self.statistics.decisions += sat_solver.statistics["decisions"]
        self.statistics.propagations += sat_solver.statistics["propagations"]

        if status != SatStatus.SAT:
            return CheckResult(status, None)
        model = self._reconstruct_model(goal, cnf, sat_solver.model(), blaster)
        return CheckResult(status, model)

    @staticmethod
    def _reconstruct_model(
        goal: Term,
        cnf: Cnf,
        sat_assignment: dict[int, bool],
        blaster: BitBlaster,
    ) -> Model:
        values: dict[str, bool | int] = {}
        # Boolean variables keep their names through blasting and CNF conversion.
        for name, cnf_var in cnf.name_to_var.items():
            if name.startswith("$") or bit_is_exploded(name):
                continue
            values[name] = sat_assignment.get(cnf_var, False)
        # Bitvector variables are reassembled from their per-bit booleans.
        for name, width in blaster.bitvector_variables.items():
            value = 0
            for index in range(width):
                cnf_var = cnf.name_to_var.get(bit_name(name, index))
                if cnf_var is not None and sat_assignment.get(cnf_var, False):
                    value |= 1 << index
            values[name] = value
        # Variables of the goal that were simplified away are unconstrained;
        # record defaults so counterexample reporting is total.
        for name, term in free_variables(goal).items():
            if name not in values:
                values[name] = False if term.sort.is_bool() else 0
        return Model(values)


def bit_is_exploded(name: str) -> bool:
    """True for the per-bit boolean variable names created by the bit-blaster."""
    from repro.smt.bitblast import BIT_SEPARATOR

    return BIT_SEPARATOR in name


def check_sat(term: Term) -> CheckResult:
    """Check satisfiability of a single term."""
    solver = Solver()
    solver.add(term)
    return solver.check()


@dataclass
class ProofResult:
    """Outcome of a validity query."""

    valid: bool
    counterexample: Model | None
    #: True when the query timed out (neither proved nor refuted).
    unknown: bool = False

    def __bool__(self) -> bool:
        return self.valid


def prove(term: Term, *assumptions: Term, timeout: float | None = None) -> ProofResult:
    """Decide validity of ``assumptions ⟹ term``.

    Returns a :class:`ProofResult`; when the implication is not valid, the
    result carries a counterexample model of the assumptions plus the negated
    goal.  With ``timeout`` set, an undecided query is reported with
    ``unknown=True``.
    """
    solver = Solver()
    for assumption in assumptions:
        solver.add(assumption)
    solver.add(builder.not_(term))
    outcome = solver.check(timeout=timeout)
    if outcome.is_unsat:
        return ProofResult(True, None)
    if outcome.status == SatStatus.UNKNOWN:
        return ProofResult(False, None, unknown=True)
    return ProofResult(False, outcome.model())
