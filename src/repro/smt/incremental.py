"""A persistent, incremental SMT backend over the CDCL core.

The stateless facade (:class:`repro.smt.solver.Solver`) rebuilds the whole
pipeline — bit-blasting, Tseitin CNF conversion, a fresh
:class:`~repro.smt.sat.solver.CdclSolver` — on every ``check``.  The
:class:`IncrementalSolver` splits that pipeline into state with different
natural lifetimes and persists each part as long as it stays valid:

* **Bit-blasting is cached per process.**  Terms are globally hash-consed
  (:mod:`repro.smt.terms`), so ``term_id`` is a stable process-wide key; a
  single module-level :class:`~repro.smt.bitblast.BitBlaster` blasts every
  distinct subterm exactly once per process, no matter how many solvers or
  queries mention it.
* **Tseitin encoding is cached per solver.**  The encoder memoises CNF
  literals by ``term_id`` and records the clause span each subterm's
  encoding emitted, so shared subterms of successive queries are encoded
  exactly once and each query can name the *cone* of clauses it needs.
* **Assertions are guarded by activation literals.**  Asserting a term ``t``
  allocates an *activation* (assumption) variable ``a`` and the guarded
  clause ``¬a ∨ lit(t)`` — permanently.  A ``check`` assumes the activation
  literals of the currently active frames; ``pop`` simply stops assuming
  them, and re-asserting the same term later reuses the same guard for free.
* **SAT instances are scoped.**  Clauses are fed to the CDCL core on demand:
  each ``check`` ships only the not-yet-shipped cone of its active
  assertions (with CNF variables renumbered densely per scope).  Within a
  scope the solver object, its clause database and its learned clauses
  persist across checks — that is what amortises the three verification
  conditions of a node.  :meth:`new_scope` rotates in a fresh, empty SAT
  instance; the encoding caches are untouched, so the next check pays only
  the (cheap) clause shipping, never re-encoding.  Scoping is what keeps a
  long-lived backend healthy: a single ever-growing SAT database would drag
  every historical query's clauses through propagation forever, which is
  measurably *slower* than fresh instances.

Learned clauses within a scope survive across checks: conflict analysis
resolves only on reason clauses (assumptions are decisions), so every
learned clause is entailed by the clause database alone and remains valid
when the assumption set changes.  The CDCL core additionally bounds the
retained set with activity/LBD-based deletion.

Soundness of the activation scheme: the guard clause ``¬a ∨ lit(t)`` only
constrains the fresh variable ``a``, so its presence never changes the
satisfiability of queries that do not assume ``a``; learned clauses
mentioning ``¬a`` are entailed by the database and simply become inert once
``a`` is no longer assumed.

**Class-canonical naming contract.**  The symmetry-aware checker
(:mod:`repro.core.symmetry`) builds verification conditions with
``naming="class"`` (:mod:`repro.core.conditions`): query routes are named by
predecessor *position*, so every member of a symmetry class produces the
*identical* hash-consed terms.  For this backend that means one SAT scope
serves the whole class — the representative's check encodes and ships the
clause cone once, and any further member query (the ``spot-check`` mode)
re-assumes the same activation literals against the same scope, reusing its
clause database *and* its learned clauses outright.  The clause-cone
filtering in :meth:`IncrementalSolver._ship` is what keeps this sharing
safe: a scope only ever receives the clauses its active assertions need,
however many other classes the process has encoded.  ``cache_statistics``
exposes counters (bit-blast and Tseitin cache hits, guard reuse, scopes,
learned-clause retention) so the sharing is measurable from reports.
"""

from __future__ import annotations

import time as _time

from repro.errors import SolverError
from repro.smt import builder
from repro.smt.bitblast import BitBlaster, bit_name
from repro.smt.cnf import Cnf
from repro.smt.model import Model
from repro.smt.sat.solver import CdclSolver, SatStatus
from repro.smt.solver import GLOBAL_STATISTICS, CheckResult, SolverStatistics
from repro.smt.terms import Term, free_variables, iter_subterms
from repro.smt.tseitin import TseitinEncoder

#: The process-wide bit-blaster.  Terms are hash-consed globally, so blasted
#: results are valid in every solver instance and never need recomputing.
_PROCESS_BLASTER = BitBlaster()

#: Guard-table sentinels for assertions that blast to a constant.
_ALWAYS_SAT = "true"
_ALWAYS_UNSAT = "false"


class IncrementalSolver:
    """An SMT solver that persists encoding work across ``check`` calls.

    The public protocol mirrors the stateless facade — ``add``, ``push``,
    ``pop``, ``check`` — so :func:`repro.smt.solver.prove` and
    :func:`repro.smt.solver.check_sat` accept either backend.  Callers that
    batch related queries (the modular checker runs a node's three
    verification conditions back to back) bracket each batch with
    :meth:`new_scope` so the underlying SAT instance stays small while the
    batch shares its clause database and learned clauses.

    ``max_variables`` bounds the retained CNF: when the solver is fully
    popped and the variable count exceeds the bound, the CNF, encoder and
    guard table are rebuilt from scratch.  The process-wide bit-blasting
    cache is unaffected, so even a compacted solver re-encodes cheaply.
    ``max_scope_clauses`` is a safety valve for callers that never rotate
    scopes themselves: a check whose SAT instance has outgrown the bound
    starts a fresh scope automatically (always safe — each check re-ships
    the cone it needs).

    ``persist_learned`` carries learned clauses *across* scope rotations
    (they are dropped with the retiring SAT instance otherwise).  At
    rotation time the retiring instance's learned clauses are translated
    from its scope-local variable numbering back to the solver's global CNF
    variables into a bounded carry set; each later ``check`` injects, after
    shipping its clause cone, the carried clauses whose variables all
    appear in the scope (a clause over unmapped variables is trivially
    satisfiable there and would be pure overhead).  This is sound because
    every learned clause is entailed by the clauses shipped to its scope —
    a subset of the global CNF (Tseitin definitions, which are
    definitional, plus activation-guard clauses, which only constrain fresh
    guard variables) — so it is entailed by the global CNF and may be added
    to any other scope without changing any query's answer.  The carried
    set is bounded (``max_carried_clauses``, stalest evicted first) and is
    invalidated by compaction, which discards the CNF it is phrased over.
    ``cache_statistics`` reports both the distinct carry set
    (``learned_carry_size``) and cumulative injections
    (``learned_carried``).  Verification sessions
    (:class:`repro.verify.Session`) use this to retain conflict knowledge
    across whole runs.
    """

    def __init__(
        self,
        max_variables: int = 500_000,
        max_scope_clauses: int = 50_000,
        persist_learned: bool = False,
        max_carried_clauses: int = 4096,
        max_carried_literals: int = 16,
    ) -> None:
        self.max_variables = max_variables
        self.max_scope_clauses = max_scope_clauses
        self.persist_learned = persist_learned
        self.max_carried_clauses = max_carried_clauses
        self.max_carried_literals = max_carried_literals
        self.statistics = SolverStatistics()
        self._frames: list[list[Term]] = [[]]
        self._cnf = Cnf()
        self._encoder = TseitinEncoder(self._cnf)
        #: term_id -> (guard variable, cone clause spans) or a sentinel.
        self._guards: dict[int, tuple[int, tuple[tuple[int, int], ...]] | str] = {}
        #: How often the retained encoding state was rebuilt (observability).
        self.compactions = 0
        #: Guard-table counters: a hit means an assertion's encoded clause
        #: cone (and activation literal) was reused from an earlier query.
        self.guard_hits = 0
        self.guard_misses = 0
        #: SAT scopes started over this solver's lifetime (first scope included).
        self.scopes = 1
        # Learned-clause counters accumulated from rotated-out SAT instances.
        self._retired_learned = 0
        self._retired_deleted = 0
        #: Learned clauses harvested from retired scopes, phrased over the
        #: global CNF variables (only with ``persist_learned``).
        self._carried: dict[tuple[int, ...], None] = {}
        #: Carried clauses already injected into the current scope.
        self._carried_injected: set[tuple[int, ...]] = set()
        #: Scope variable count when carried clauses were last classified;
        #: lets repeated checks skip the rescan until new structure ships.
        self._carried_checked_at = -1
        #: Clauses injected into scopes from the carried set (cumulative).
        self.learned_carried = 0
        self._sat = CdclSolver()
        self._shipped: set[int] = set()
        self._var_map: dict[int, int] = {}

    # -- assertion management ----------------------------------------------------

    def add(self, *terms: Term) -> None:
        """Assert one or more boolean terms in the current frame."""
        for term in terms:
            if not term.sort.is_bool():
                raise SolverError(f"only boolean terms can be asserted, got sort {term.sort!r}")
            self._frames[-1].append(term)

    def push(self) -> None:
        """Open a new assertion frame."""
        self._frames.append([])

    def pop(self) -> None:
        """Discard every assertion added since the matching :meth:`push`.

        Popping merely deactivates the frame's assertions; their encoded
        clauses stay cached (guarded by unassumed activation literals) so a
        later identical assertion is free.
        """
        if len(self._frames) == 1:
            raise SolverError("pop without a matching push")
        self._frames.pop()
        if len(self._frames) == 1 and not self._frames[0]:
            self._maybe_compact()

    @property
    def assertions(self) -> tuple[Term, ...]:
        return tuple(term for frame in self._frames for term in frame)

    # -- scope management ---------------------------------------------------------

    def new_scope(self) -> None:
        """Rotate in a fresh SAT instance (encoding caches persist).

        Safe at any time: the next ``check`` re-ships whatever cone of
        clauses its active assertions need.  The SAT-level clause database
        of the previous scope is dropped; its learned clauses are dropped
        too unless ``persist_learned`` is set, in which case they are
        translated back to global CNF variables and re-shipped into the
        fresh instance (see the class docstring for the soundness argument).
        """
        if self.persist_learned:
            self._harvest_learned()
        self._retired_learned += self._sat.statistics["learned"]
        self._retired_deleted += self._sat.statistics["deleted"]
        self._sat = CdclSolver()
        self._shipped = set()
        self._var_map = {}
        self._carried_injected = set()
        self._carried_checked_at = -1
        self.scopes += 1

    def _harvest_learned(self) -> None:
        """Translate the retiring scope's learned clauses to global CNF variables.

        Root-implied literals are carried as unit clauses alongside the
        multi-literal learned clauses: learned units are the strongest
        conflict knowledge the scope derived (they fix a variable outright),
        and the CDCL core stores them on the root trail rather than in its
        learned-clause list.
        """
        inverse = {local: global_var for global_var, local in self._var_map.items()}
        units = [[literal] for literal in self._sat.root_implied_literals()]
        for clause in units + self._sat.learned_clauses():
            if len(clause) > self.max_carried_literals:
                continue
            try:
                translated = tuple(
                    inverse[abs(literal)] if literal > 0 else -inverse[abs(literal)]
                    for literal in clause
                )
            except KeyError:
                # A literal over a variable this scope never mapped (cannot
                # happen for clauses learned from shipped cones; defensive).
                continue
            # Re-inserting moves the clause to the recent end of the carry
            # set, so the cap below evicts the stalest knowledge first.
            self._carried.pop(translated, None)
            self._carried[translated] = None
        while len(self._carried) > self.max_carried_clauses:
            self._carried.pop(next(iter(self._carried)))

    def _inject_carried(self) -> None:
        """Inject scope-relevant carried clauses into the current SAT instance.

        Runs after a ``check`` has shipped its clause cone: a carried clause
        is injected once per scope, and only if every variable it mentions
        is already mapped there — a clause over unmapped variables is
        trivially satisfiable in this scope and would only slow propagation.
        Mappability can only change when the scope's variable map grows, so
        checks that ship no new structure skip the rescan entirely.
        """
        var_map = self._var_map
        if self._carried_checked_at == len(var_map):
            return
        self._carried_checked_at = len(var_map)
        sat = self._sat
        injected = self._carried_injected
        for clause in self._carried:
            if clause in injected:
                continue
            mapped = []
            for literal in clause:
                local = var_map.get(abs(literal))
                if local is None:
                    break
                mapped.append(local if literal > 0 else -local)
            else:
                injected.add(clause)
                # Count only clauses that recorded a constraint; the checked
                # add path drops clauses already satisfied at root level.
                if sat.add_clause_unchecked(mapped):
                    self.learned_carried += 1

    def recover(self) -> None:
        """Restore a known-good state after an exception escaped a check.

        A crash part-way through ``check`` (a solve interrupted mid-search, a
        caller error between ``push`` and ``pop``) can leave the current SAT
        instance's trail and the assertion frames inconsistent; reusing them
        could poison every later query on this shared solver.  Recovery drops
        all frames above the root (root assertions are kept — they belong to
        the solver's owner, not the crashed query) and rotates in a fresh SAT
        scope.  The encoding caches are untouched: they are append-only maps
        keyed by hash-consed terms and cannot be corrupted by an interrupted
        query, so recovery costs one cheap clause re-ship, not a re-encode.
        """
        del self._frames[1:]
        self.new_scope()

    def cache_statistics(self) -> dict[str, int]:
        """Cumulative cache/reuse counters for this solver (plain ints).

        Includes the process-wide bit-blast cache (shared by every
        incremental solver in the process), this solver's Tseitin encoder and
        guard table, and learned-clause totals summed over all SAT scopes it
        has rotated through.  ``learned_retained`` counts clauses the CDCL
        cores kept (learned minus deleted) — the quantity the symmetry
        ablation reports as "learned clauses retained".
        """
        learned = self._retired_learned + self._sat.statistics["learned"]
        deleted = self._retired_deleted + self._sat.statistics["deleted"]
        return {
            "bitblast_hits": _PROCESS_BLASTER.cache_hits,
            "bitblast_misses": _PROCESS_BLASTER.cache_misses,
            "tseitin_hits": self._encoder.cache_hits,
            "tseitin_misses": self._encoder.cache_misses,
            "guard_hits": self.guard_hits,
            "guard_misses": self.guard_misses,
            "scopes": self.scopes,
            "clauses_learned": learned,
            "clauses_deleted": deleted,
            "learned_retained": learned - deleted,
            "learned_carried": self.learned_carried,
            "learned_carry_size": len(self._carried),
            "compactions": self.compactions,
        }

    def _maybe_compact(self) -> None:
        """Rebuild the retained encoding once it outgrows ``max_variables``."""
        if self._cnf.num_vars <= self.max_variables:
            return
        self._cnf = Cnf()
        retired = self._encoder
        self._encoder = TseitinEncoder(self._cnf)
        # Counters are cumulative over the solver's lifetime; carry them
        # across the rebuild so statistics do not reset on compaction.
        self._encoder.cache_hits = retired.cache_hits
        self._encoder.cache_misses = retired.cache_misses
        self._guards = {}
        # Carried learned clauses are phrased over the discarded CNF's
        # variable ids; they are meaningless against the rebuilt encoding.
        # The variable map is cleared first so the rotation below cannot
        # harvest the retiring scope's clauses into the new carry set.
        self._carried = {}
        self._carried_injected = set()
        self._var_map = {}
        self.compactions += 1
        self.new_scope()

    # -- solving ------------------------------------------------------------------

    def check(self, *extra: Term, timeout: float | None = None) -> CheckResult:
        """Check satisfiability of the active assertions plus ``extra``.

        ``timeout`` is a soft wall-clock limit in seconds; a timed-out query
        reports :data:`SatStatus.UNKNOWN`.
        """
        started = _time.perf_counter()
        for term in extra:
            if not term.sort.is_bool():
                raise SolverError(f"only boolean terms can be asserted, got sort {term.sort!r}")
        terms = [term for frame in self._frames for term in frame] + list(extra)

        if len(self._sat._clauses) > self.max_scope_clauses:
            self.new_scope()

        variables_before = self._cnf.num_vars
        clauses_before = self._cnf.num_clauses
        sat_before = dict(self._sat.statistics)

        assumptions: list[int] = []
        seen_guards: set[int] = set()
        trivially_unsat = False
        for term in terms:
            entry = self._activate(term)
            if entry == _ALWAYS_UNSAT:
                trivially_unsat = True
                break
            if entry == _ALWAYS_SAT:
                continue
            guard, spans = entry
            if guard in seen_guards:
                continue
            seen_guards.add(guard)
            self._ship(spans)
            assumptions.append(self._var_map[guard])

        if trivially_unsat:
            status = SatStatus.UNSAT
        else:
            if self.persist_learned and self._carried:
                self._inject_carried()
            status = self._sat.solve(assumptions=assumptions, timeout=timeout)

        elapsed = _time.perf_counter() - started
        sat_after = self._sat.statistics if not trivially_unsat else sat_before
        for statistics in (self.statistics, GLOBAL_STATISTICS):
            statistics.variables += self._cnf.num_vars - variables_before
            statistics.clauses += self._cnf.num_clauses - clauses_before
            statistics.conflicts += sat_after["conflicts"] - sat_before["conflicts"]
            statistics.decisions += sat_after["decisions"] - sat_before["decisions"]
            statistics.propagations += sat_after["propagations"] - sat_before["propagations"]
            statistics.checks += 1
            statistics.solve_seconds += elapsed

        if status != SatStatus.SAT:
            return CheckResult(status, None)
        return CheckResult(status, self._reconstruct_model(terms))

    # -- internals ----------------------------------------------------------------

    def _activate(self, term: Term) -> tuple[int, tuple[tuple[int, int], ...]] | str:
        """The guard and clause cone of ``term``, encoding it on first use."""
        entry = self._guards.get(term.term_id)
        if entry is not None:
            self.guard_hits += 1
            return entry
        self.guard_misses += 1
        blasted = _PROCESS_BLASTER.blast(term)
        if blasted.is_true():
            entry = _ALWAYS_SAT
        elif blasted.is_false():
            entry = _ALWAYS_UNSAT
        else:
            literal = self._encoder.literal_for(blasted)
            guard = self._cnf.new_var()
            guard_index = self._cnf.num_clauses
            self._cnf.add_clause([-guard, literal])
            spans = [(guard_index, guard_index + 1)]
            # The cone: every clause emitted for any subterm of the blasted
            # goal, whether it was first encoded just now or by an earlier
            # query.  (Spans of subterms encoded within a larger span merely
            # overlap it; _ship deduplicates per clause index.)
            for subterm in iter_subterms(blasted):
                span = self._encoder.clause_span(subterm.term_id)
                if span is not None and span[0] < span[1]:
                    spans.append(span)
            entry = (guard, _merge_spans(spans))
        self._guards[term.term_id] = entry
        return entry

    def _ship(self, spans: tuple[tuple[int, int], ...]) -> None:
        """Feed the not-yet-shipped clauses of ``spans`` to the SAT core.

        CNF variables are renumbered densely per scope, so the SAT instance
        only ever sees the variables its own clauses mention — a query's
        cost does not grow with the amount of unrelated structure the
        encoder has accumulated.
        """
        shipped = self._shipped
        clauses = self._cnf.clauses
        var_map = self._var_map
        sat = self._sat
        for start, end in spans:
            for index in range(start, end):
                if index in shipped:
                    continue
                shipped.add(index)
                mapped = []
                for literal in clauses[index]:
                    variable = abs(literal)
                    local = var_map.get(variable)
                    if local is None:
                        local = len(var_map) + 1
                        var_map[variable] = local
                    mapped.append(local if literal > 0 else -local)
                sat.add_clause_unchecked(mapped)

    def _reconstruct_model(self, terms: list[Term]) -> Model:
        """Rebuild a model over the original variable names of ``terms``.

        Unlike the facade, the CNF here accumulates names from every query
        this solver ever saw, so the model is restricted to the free
        variables of the active terms.
        """
        assignment = self._sat.model()

        def value_of(name: str) -> bool:
            cnf_var = self._cnf.name_to_var.get(name)
            if cnf_var is None:
                return False
            local = self._var_map.get(cnf_var)
            return bool(assignment.get(local, False)) if local is not None else False

        goal = builder.and_(*terms) if terms else builder.true()
        values: dict[str, bool | int] = {}
        for name, variable in free_variables(goal).items():
            if variable.sort.is_bool():
                values[name] = value_of(name)
            else:
                value = 0
                for index in range(variable.sort.width):
                    if value_of(bit_name(name, index)):
                        value |= 1 << index
                values[name] = value
        return Model(values)


def _merge_spans(spans: list[tuple[int, int]]) -> tuple[tuple[int, int], ...]:
    """Merge overlapping/adjacent ``[start, end)`` ranges."""
    merged: list[tuple[int, int]] = []
    for start, end in sorted(spans):
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return tuple(merged)


# -- the shared per-process instance ---------------------------------------------

_PROCESS_SOLVER: IncrementalSolver | None = None


def process_solver() -> IncrementalSolver:
    """The per-process shared :class:`IncrementalSolver`.

    The modular checker routes every verification condition it discharges
    through this instance (one per worker process under ``fork``-based
    parallelism), so encoding work is amortised across all nodes a worker
    checks, and each node's three conditions share a SAT scope.
    """
    global _PROCESS_SOLVER
    if _PROCESS_SOLVER is None:
        _PROCESS_SOLVER = IncrementalSolver()
    return _PROCESS_SOLVER


def reset_process_solver() -> None:
    """Drop the shared solver (tests and benchmarks use this for isolation)."""
    global _PROCESS_SOLVER
    _PROCESS_SOLVER = None


def process_cache_statistics() -> dict[str, int]:
    """Cache statistics of the shared per-process solver.

    Materialises the solver if it does not exist yet: the process-wide
    bit-blast counters (and, after a ``fork``, counters inherited from the
    parent) are nonzero even before the first check, so a snapshot taken as
    a *baseline* must read them rather than default to zero — otherwise the
    first delta would claim the whole process history as its own work.
    """
    return process_solver().cache_statistics()


#: Statistics keys that report a *current size* (gauges) rather than a
#: cumulative count; deltas keep the latest reading and merges keep the
#: largest, since differencing or summing a gauge is meaningless.
GAUGE_STATISTICS = ("learned_carry_size",)


def subtract_cache_statistics(after: dict[str, int], before: dict[str, int]) -> dict[str, int]:
    """Component-wise ``after - before`` over cache-statistics dicts."""
    return {
        key: value if key in GAUGE_STATISTICS else value - before.get(key, 0)
        for key, value in after.items()
    }


def add_cache_statistics(left: dict[str, int], right: dict[str, int]) -> dict[str, int]:
    """Component-wise sum (used to merge per-worker statistics deltas)."""
    merged = dict(left)
    for key, value in right.items():
        if key in GAUGE_STATISTICS:
            merged[key] = max(merged.get(key, 0), value)
        else:
            merged[key] = merged.get(key, 0) + value
    return merged
