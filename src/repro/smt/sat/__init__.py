"""A small, self-contained CDCL SAT solver.

This package replaces the Z3 backend used by the original Timepiece (Z3 is
not available in this offline environment).  It provides:

* :class:`repro.smt.sat.solver.CdclSolver` — conflict-driven clause learning
  with two-watched-literal propagation, VSIDS branching, first-UIP clause
  learning, phase saving and Luby restarts; and
* :class:`repro.smt.sat.brute_force.BruteForceSolver` — an exhaustive
  reference solver used by the property-based test suite as an oracle.
"""

from repro.smt.sat.brute_force import BruteForceSolver
from repro.smt.sat.solver import CdclSolver, SatStatus

__all__ = ["CdclSolver", "SatStatus", "BruteForceSolver"]
