"""An indexed max-heap ordered by VSIDS activity.

The CDCL solver needs to repeatedly extract the unassigned variable with the
highest activity and to increase the activity of arbitrary variables.  This
heap supports both in ``O(log n)`` by keeping, for every variable, its
current position inside the heap array.
"""

from __future__ import annotations


class ActivityHeap:
    """Max-heap of variable indices keyed by an external activity array."""

    def __init__(self, activity: list[float]) -> None:
        self._activity = activity
        self._heap: list[int] = []
        self._positions: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, variable: int) -> bool:
        return variable in self._positions

    def push(self, variable: int) -> None:
        """Insert ``variable`` if it is not already present."""
        if variable in self._positions:
            return
        self._heap.append(variable)
        self._positions[variable] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def pop(self) -> int:
        """Remove and return the variable with the highest activity."""
        top = self._heap[0]
        last = self._heap.pop()
        del self._positions[top]
        if self._heap:
            self._heap[0] = last
            self._positions[last] = 0
            self._sift_down(0)
        return top

    def update(self, variable: int) -> None:
        """Restore heap order after ``variable``'s activity increased."""
        position = self._positions.get(variable)
        if position is not None:
            self._sift_up(position)

    # -- internal ---------------------------------------------------------------

    def _better(self, left: int, right: int) -> bool:
        return self._activity[left] > self._activity[right]

    def _sift_up(self, position: int) -> None:
        heap = self._heap
        variable = heap[position]
        while position > 0:
            parent = (position - 1) >> 1
            if not self._better(variable, heap[parent]):
                break
            heap[position] = heap[parent]
            self._positions[heap[parent]] = position
            position = parent
        heap[position] = variable
        self._positions[variable] = position

    def _sift_down(self, position: int) -> None:
        heap = self._heap
        size = len(heap)
        variable = heap[position]
        while True:
            left = 2 * position + 1
            if left >= size:
                break
            right = left + 1
            best_child = left
            if right < size and self._better(heap[right], heap[left]):
                best_child = right
            if not self._better(heap[best_child], variable):
                break
            heap[position] = heap[best_child]
            self._positions[heap[best_child]] = position
            position = best_child
        heap[position] = variable
        self._positions[variable] = position
