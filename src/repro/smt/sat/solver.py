"""A conflict-driven clause-learning (CDCL) SAT solver.

The implementation follows the classic MiniSat architecture:

* two-watched-literal unit propagation;
* VSIDS variable activities with exponential decay (implemented by growing
  the bump amount) and an indexed max-heap for branching;
* first-UIP conflict analysis with clause learning;
* non-chronological backjumping;
* phase saving;
* Luby-sequence restarts; and
* activity/LBD-based learned-clause deletion (``_reduce_learned``) plus
  top-level removal of satisfied clauses (``_simplify_database``), which keep
  a long-lived clause database healthy.

The solver is *incremental*: :meth:`CdclSolver.add_clause` may be called
between :meth:`CdclSolver.solve` calls, and :meth:`solve` accepts assumption
literals that hold only for that one call.  Every ``solve`` exit path —
satisfiable, unsatisfiable, assumption failure or timeout — leaves the solver
back at decision level 0 so the next ``add_clause``/``solve`` starts from a
clean trail.  Clauses added between calls are simplified against the
top-level assignment (literals false at level 0 are dropped, clauses
satisfied at level 0 are discarded), which keeps the two-watched-literal
invariant sound for late-arriving clauses.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import SolverError
from repro.smt.sat.heap import ActivityHeap


class SatStatus(Enum):
    """Result of a satisfiability query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


def luby(index: int) -> int:
    """The ``index``-th element (1-based) of the Luby restart sequence.

    The sequence is 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
    """
    if index < 1:
        raise SolverError(f"Luby sequence is 1-based, got index {index}")
    while True:
        size = 1
        while (1 << size) - 1 < index:
            size += 1
        if index == (1 << size) - 1:
            return 1 << (size - 1)
        index -= (1 << (size - 1)) - 1


class LearnedClause(list):
    """A learned clause plus the bookkeeping used to decide deletion.

    ``activity`` is bumped whenever the clause participates in conflict
    analysis (and decays like variable activities); ``lbd`` is the literal
    block distance — the number of distinct decision levels among the
    clause's literals when it was learned.  Low-LBD ("glue") clauses are
    never deleted.
    """

    __slots__ = ("activity", "lbd")

    def __init__(self, literals: list[int]) -> None:
        super().__init__(literals)
        self.activity = 0.0
        self.lbd = len(literals)


class CdclSolver:
    """CDCL SAT solver over clauses of integer literals (DIMACS convention)."""

    def __init__(
        self,
        restart_base: int = 100,
        activity_decay: float = 0.95,
        clause_decay: float = 0.999,
        max_learned: int = 2000,
    ) -> None:
        self.num_vars = 0
        self._clauses: list[list[int]] = []
        self._learned: list[LearnedClause] = []
        self._watches: dict[int, list[list[int]]] = {}
        self._assignment: list[int] = [0]  # 1-indexed; 0 = unassigned, 1 = true, -1 = false
        self._level: list[int] = [0]
        self._reason: list[list[int] | None] = [None]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]
        self._trail: list[int] = []
        self._trail_limits: list[int] = []
        self._propagation_head = 0
        self._heap = ActivityHeap(self._activity)
        self._activity_increment = 1.0
        self._activity_decay = activity_decay
        self._clause_activity_increment = 1.0
        self._clause_activity_decay = clause_decay
        self._max_learned = float(max_learned)
        self._restart_base = restart_base
        self._unsatisfiable = False
        self._pending_units: list[int] = []
        self._model: dict[int, bool] = {}
        self._simplified_trail_size = 0
        # Statistics, reported by the benchmarks.
        self.statistics = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "deleted": 0,
        }

    # -- problem construction ---------------------------------------------------

    def ensure_vars(self, count: int) -> None:
        """Grow the variable universe so that variables ``1..count`` exist."""
        while self.num_vars < count:
            self.num_vars += 1
            self._assignment.append(0)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            self._heap.push(self.num_vars)

    def add_clause(self, literals: list[int]) -> bool:
        """Add a clause to the database (before or between solve calls).

        The clause is simplified against the top-level assignment: clauses
        satisfied at decision level 0 are dropped and literals false at level
        0 are removed.  Level-0 assignments are consequences of the existing
        database, so this preserves equivalence — and it is required for
        soundness, because unit propagation never revisits literals that were
        falsified before the clause arrived.

        Returns whether the clause recorded a constraint (attached, queued
        as a unit, or proved the database unsatisfiable); redundant clauses
        — tautologies and clauses already satisfied at level 0 — report
        ``False``.
        """
        if self._trail_limits:
            raise SolverError("clauses may only be added at decision level 0")
        unique: list[int] = []
        seen: set[int] = set()
        for literal in literals:
            if literal == 0:
                raise SolverError("0 is not a valid literal")
            self.ensure_vars(abs(literal))
            if -literal in seen:
                return False  # tautology
            if literal not in seen:
                seen.add(literal)
                unique.append(literal)
        simplified: list[int] = []
        for literal in unique:
            value = self._value(literal)
            if value == 1:
                return False  # already satisfied at level 0
            if value == 0:
                simplified.append(literal)
            # value == -1: falsified at level 0, drop the literal
        if not simplified:
            self._unsatisfiable = True
            return True
        if len(simplified) == 1:
            self._pending_units.append(simplified[0])
            return True
        self._attach_clause(simplified)
        return True

    def add_clause_unchecked(self, literals: list[int]) -> bool:
        """Bulk-load fast path for clauses straight out of a CNF database.

        The caller guarantees the literals are nonzero, duplicate-free and
        tautology-free (:class:`repro.smt.cnf.Cnf` enforces exactly this), so
        the per-literal vetting of :meth:`add_clause` is skipped.  The clause
        list is owned by the solver afterwards.  When top-level assignments
        exist the checked path is taken anyway — those require
        simplification against the root trail.  Returns whether a constraint
        was recorded (see :meth:`add_clause`).
        """
        if self._trail or len(literals) < 2:
            return self.add_clause(literals)
        if self._trail_limits:
            raise SolverError("clauses may only be added at decision level 0")
        self.ensure_vars(max(abs(literal) for literal in literals))
        self._attach_clause(literals)
        return True

    def learned_clauses(self) -> list[list[int]]:
        """The currently retained learned clauses (copies, DIMACS literals).

        Every learned clause is entailed by the clause database alone
        (conflict analysis treats assumptions as decisions and resolves only
        on reason clauses), so callers may re-add them to any solver whose
        database is a superset — or an equisatisfiable extension — of this
        one.  The incremental backend uses this to carry learned clauses
        across SAT-scope rotations.
        """
        return [list(clause) for clause in self._learned]

    def root_implied_literals(self) -> list[int]:
        """Literals entailed at decision level 0, plus pending learned units.

        Assumptions are decisions above level 0 and every ``solve`` exit
        path unwinds them, so each literal here — root-trail assignments
        (original units and their propagations, learned units from earlier
        solves) and not-yet-enqueued pending units — is a consequence of
        the clause database alone and may be re-asserted as a unit clause
        wherever the database extends equisatisfiably.
        """
        root_size = self._trail_limits[0] if self._trail_limits else len(self._trail)
        return self._trail[:root_size] + list(self._pending_units)

    def _attach_clause(self, clause: list[int]) -> None:
        if isinstance(clause, LearnedClause):
            self._learned.append(clause)
        else:
            self._clauses.append(clause)
        self._watches.setdefault(clause[0], []).append(clause)
        self._watches.setdefault(clause[1], []).append(clause)

    def _detach_clause(self, clause: list[int]) -> None:
        """Remove ``clause`` from the two watch lists it occupies."""
        for literal in (clause[0], clause[1]):
            watchers = self._watches.get(literal)
            if not watchers:
                continue
            for index, watched in enumerate(watchers):
                if watched is clause:
                    del watchers[index]
                    break

    # -- assignment helpers -----------------------------------------------------

    def _value(self, literal: int) -> int:
        """1 if the literal is true, -1 if false, 0 if unassigned."""
        value = self._assignment[abs(literal)]
        return value if literal > 0 else -value

    @property
    def decision_level(self) -> int:
        return len(self._trail_limits)

    def _enqueue(self, literal: int, reason: list[int] | None) -> bool:
        current = self._value(literal)
        if current == 1:
            return True
        if current == -1:
            return False
        variable = abs(literal)
        self._assignment[variable] = 1 if literal > 0 else -1
        self._level[variable] = self.decision_level
        self._reason[variable] = reason
        self._phase[variable] = literal > 0
        self._trail.append(literal)
        return True

    def _propagate(self) -> list[int] | None:
        """Unit propagation.  Returns a conflicting clause, or ``None``."""
        while self._propagation_head < len(self._trail):
            literal = self._trail[self._propagation_head]
            self._propagation_head += 1
            self.statistics["propagations"] += 1
            falsified = -literal
            watch_list = self._watches.get(falsified)
            if not watch_list:
                continue
            remaining: list[list[int]] = []
            conflict: list[int] | None = None
            index = 0
            while index < len(watch_list):
                clause = watch_list[index]
                index += 1
                if conflict is not None:
                    remaining.append(clause)
                    continue
                # Normalise so that the falsified literal sits at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                other = clause[0]
                if self._value(other) == 1:
                    remaining.append(clause)
                    continue
                # Look for a replacement watch among the remaining literals.
                moved = False
                for position in range(2, len(clause)):
                    candidate = clause[position]
                    if self._value(candidate) != -1:
                        clause[1], clause[position] = clause[position], clause[1]
                        self._watches.setdefault(candidate, []).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                remaining.append(clause)
                if self._value(other) == -1:
                    conflict = clause
                else:
                    self._enqueue(other, clause)
            self._watches[falsified] = remaining
            if conflict is not None:
                return conflict
        return None

    # -- conflict analysis ------------------------------------------------------

    def _bump_variable(self, variable: int) -> None:
        self._activity[variable] += self._activity_increment
        if self._activity[variable] > 1e100:
            for index in range(1, self.num_vars + 1):
                self._activity[index] *= 1e-100
            self._activity_increment *= 1e-100
        self._heap.update(variable)

    def _bump_clause(self, clause: LearnedClause) -> None:
        clause.activity += self._clause_activity_increment
        if clause.activity > 1e100:
            for learned in self._learned:
                learned.activity *= 1e-100
            self._clause_activity_increment *= 1e-100

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP analysis.  Returns (learned clause, backjump level)."""
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        literal = 0
        clause: list[int] | None = conflict
        trail_index = len(self._trail) - 1
        while True:
            assert clause is not None, "reached a decision without finding the UIP"
            if isinstance(clause, LearnedClause):
                self._bump_clause(clause)
            for clause_literal in clause:
                # Skip the literal implied by this reason clause (the one whose
                # antecedents we are currently expanding).
                if literal != 0 and clause_literal == literal:
                    continue
                variable = abs(clause_literal)
                if seen[variable] or self._level[variable] == 0:
                    continue
                seen[variable] = True
                self._bump_variable(variable)
                if self._level[variable] >= self.decision_level:
                    counter += 1
                else:
                    learned.append(clause_literal)
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            literal = self._trail[trail_index]
            trail_index -= 1
            seen[abs(literal)] = False
            counter -= 1
            if counter == 0:
                break
            clause = self._reason[abs(literal)]
        learned[0] = -literal
        if len(learned) == 1:
            backjump_level = 0
        else:
            # Move the literal from the highest remaining decision level into
            # position 1 so the two-watched-literal invariant (the watched
            # literals are the last to be falsified) holds for the learned
            # clause after backjumping.
            best_index = max(range(1, len(learned)), key=lambda i: self._level[abs(learned[i])])
            learned[1], learned[best_index] = learned[best_index], learned[1]
            backjump_level = self._level[abs(learned[1])]
        return learned, backjump_level

    def _backtrack(self, target_level: int) -> None:
        if self.decision_level <= target_level:
            return
        boundary = self._trail_limits[target_level]
        for literal in reversed(self._trail[boundary:]):
            variable = abs(literal)
            self._assignment[variable] = 0
            self._reason[variable] = None
            self._heap.push(variable)
        del self._trail[boundary:]
        del self._trail_limits[target_level:]
        self._propagation_head = len(self._trail)

    # -- clause-database maintenance --------------------------------------------

    def _is_locked(self, clause: LearnedClause) -> bool:
        """True while ``clause`` is the reason for its asserting literal.

        Propagation keeps a reason clause's implied literal at position 0, so
        checking the reason slot of ``clause[0]``'s variable suffices.
        """
        variable = abs(clause[0])
        return self._assignment[variable] != 0 and self._reason[variable] is clause

    def _reduce_learned(self) -> None:
        """Delete roughly half of the learned clauses (MiniSat's ``reduceDB``).

        Clauses are ranked by activity; the least active half is removed,
        except binary clauses, low-LBD "glue" clauses and clauses currently
        locked as reasons.  Deletion only discards redundant (entailed)
        clauses, so it never changes satisfiability — it just bounds the
        propagation cost of a long-lived incremental solver.
        """
        limit = len(self._learned) // 2
        removed: set[int] = set()
        for clause in sorted(self._learned, key=lambda c: c.activity):
            if len(removed) >= limit:
                break
            if len(clause) <= 2 or clause.lbd <= 2 or self._is_locked(clause):
                continue
            self._detach_clause(clause)
            removed.add(id(clause))
        if removed:
            self._learned = [c for c in self._learned if id(c) not in removed]
            self.statistics["deleted"] += len(removed)
        self._max_learned *= 1.1

    def _simplify_database(self) -> None:
        """Drop clauses satisfied by the top-level assignment.

        Called at decision level 0 with propagation complete, whenever the
        root trail has grown since the last call.  In incremental use this
        garbage-collects the clauses of retired assertion frames (their
        activation literal is forced false at the root, satisfying every
        guarded clause).
        """
        for store in (self._clauses, self._learned):
            kept = []
            for clause in store:
                satisfied = False
                for literal in clause:
                    if self._value(literal) == 1:
                        satisfied = True
                        break
                if satisfied:
                    self._detach_clause(clause)
                else:
                    kept.append(clause)
            store[:] = kept
        self._simplified_trail_size = len(self._trail)

    # -- branching ---------------------------------------------------------------

    def _pick_branch_variable(self) -> int | None:
        while len(self._heap):
            variable = self._heap.pop()
            if self._assignment[variable] == 0:
                return variable
        return None

    # -- main search -------------------------------------------------------------

    def solve(
        self, assumptions: list[int] | None = None, timeout: float | None = None
    ) -> SatStatus:
        """Decide satisfiability of the clause database under ``assumptions``.

        ``timeout`` is a soft wall-clock limit in seconds; when exceeded the
        solver gives up and returns :data:`SatStatus.UNKNOWN`.  Whatever the
        outcome, the solver is left at decision level 0, so clauses may be
        added and ``solve`` called again.
        """
        import time as _time

        deadline = None if timeout is None else _time.monotonic() + timeout
        if self._unsatisfiable:
            return SatStatus.UNSAT
        self._backtrack(0)
        for unit in self._pending_units:
            if not self._enqueue(unit, None):
                self._unsatisfiable = True
                return SatStatus.UNSAT
        self._pending_units.clear()
        if self._propagate() is not None:
            self._unsatisfiable = True
            return SatStatus.UNSAT
        if len(self._trail) > self._simplified_trail_size:
            self._simplify_database()
        for literal in assumptions or []:
            self.ensure_vars(abs(literal))
            if self._value(literal) == -1:
                # An earlier assumption's propagation falsified this one.  The
                # earlier assumptions already pushed decision levels, so the
                # trail must be unwound before reporting failure — otherwise a
                # subsequent add_clause() would see a nonzero decision level.
                self._backtrack(0)
                return SatStatus.UNSAT
            if self._value(literal) == 0:
                self._trail_limits.append(len(self._trail))
                self._enqueue(literal, None)
                if self._propagate() is not None:
                    self._backtrack(0)
                    return SatStatus.UNSAT
        assumption_level = self.decision_level

        conflicts_until_restart = self._restart_base * luby(1)
        restart_count = 1
        conflicts_since_restart = 0
        iterations = 0
        while True:
            iterations += 1
            if deadline is not None and iterations % 512 == 0 and _time.monotonic() > deadline:
                self._backtrack(0)
                return SatStatus.UNKNOWN
            conflict = self._propagate()
            if conflict is not None:
                self.statistics["conflicts"] += 1
                conflicts_since_restart += 1
                if self.decision_level <= assumption_level:
                    self._backtrack(0)
                    if assumption_level == 0:
                        self._unsatisfiable = True
                    return SatStatus.UNSAT
                learned, backjump_level = self._analyze(conflict)
                self._backtrack(max(backjump_level, assumption_level))
                if len(learned) == 1:
                    # A learned unit is entailed by the clause database alone
                    # (conflict analysis only resolves on reason clauses), so
                    # record it for future solve calls as well.
                    self._pending_units.append(learned[0])
                    if not self._enqueue(learned[0], None):
                        # The unit contradicts the current assumptions.  Only
                        # when there are none is the database itself unsat.
                        self._backtrack(0)
                        if assumption_level == 0:
                            self._unsatisfiable = True
                        return SatStatus.UNSAT
                else:
                    learned_clause = LearnedClause(learned)
                    levels = {self._level[abs(lit)] for lit in learned}
                    learned_clause.lbd = len(levels)
                    self._bump_clause(learned_clause)
                    self._attach_clause(learned_clause)
                    self.statistics["learned"] += 1
                    self._enqueue(learned[0], learned_clause)
                    if len(self._learned) >= self._max_learned:
                        self._reduce_learned()
                self._activity_increment /= self._activity_decay
                self._clause_activity_increment /= self._clause_activity_decay
            else:
                if conflicts_since_restart >= conflicts_until_restart:
                    self.statistics["restarts"] += 1
                    restart_count += 1
                    conflicts_since_restart = 0
                    conflicts_until_restart = self._restart_base * luby(restart_count)
                    self._backtrack(assumption_level)
                    continue
                variable = self._pick_branch_variable()
                if variable is None:
                    self._model = {
                        index: self._assignment[index] == 1
                        for index in range(1, self.num_vars + 1)
                    }
                    self._backtrack(0)
                    return SatStatus.SAT
                self.statistics["decisions"] += 1
                self._trail_limits.append(len(self._trail))
                phase_literal = variable if self._phase[variable] else -variable
                self._enqueue(phase_literal, None)

    def model(self) -> dict[int, bool]:
        """The satisfying assignment found by the last successful solve call."""
        return dict(self._model)
