"""Smart constructors for SMT terms.

These constructors perform light-weight, *sound* algebraic simplification
while building terms (constant folding, neutral/absorbing element removal,
double-negation elimination, ...).  They are the only way user code should
build terms: the aggressive sharing plus local rewriting keeps the formulas
produced by the verification-condition encoder small enough for the pure
Python SAT backend.

All constructors are total functions: they validate sorts and raise
:class:`~repro.errors.SortError`/:class:`~repro.errors.TermError` on misuse.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import SortError, TermError
from repro.smt.sorts import BOOL, BitVecSort, Sort, check_same_sort
from repro.smt.terms import (
    FALSE,
    OP_AND,
    OP_BVADD,
    OP_BVCONST,
    OP_BVSUB,
    OP_BVULE,
    OP_BVULT,
    OP_EQ,
    OP_ITE,
    OP_NOT,
    OP_OR,
    OP_VAR,
    TRUE,
    Term,
    make_term,
)

__all__ = [
    "true",
    "false",
    "bool_const",
    "bool_var",
    "bv_const",
    "bv_var",
    "not_",
    "and_",
    "or_",
    "implies",
    "iff",
    "xor",
    "ite",
    "eq",
    "distinct",
    "bv_add",
    "bv_sub",
    "bv_ult",
    "bv_ule",
    "bv_ugt",
    "bv_uge",
    "bv_min",
    "bv_max",
    "bv_saturating_add",
]


# -- constants and variables ---------------------------------------------------


def true() -> Term:
    """The boolean constant ``true``."""
    return TRUE


def false() -> Term:
    """The boolean constant ``false``."""
    return FALSE


def bool_const(value: bool) -> Term:
    """Lift a Python bool into a term."""
    return TRUE if value else FALSE


def bool_var(name: str) -> Term:
    """A boolean variable named ``name``."""
    if not name:
        raise TermError("variable name must be non-empty")
    return make_term(OP_VAR, (), name, BOOL)


def bv_const(value: int, width: int) -> Term:
    """A bitvector constant; ``value`` is truncated to ``width`` bits."""
    sort = BitVecSort(width)
    return make_term(OP_BVCONST, (), sort.mask(int(value)), sort)


def bv_var(name: str, width: int) -> Term:
    """A bitvector variable named ``name`` of the given ``width``."""
    if not name:
        raise TermError("variable name must be non-empty")
    return make_term(OP_VAR, (), name, BitVecSort(width))


# -- boolean connectives -------------------------------------------------------


def not_(arg: Term) -> Term:
    """Boolean negation with double-negation and constant folding."""
    _require_bool(arg, "not")
    if arg.is_true():
        return FALSE
    if arg.is_false():
        return TRUE
    if arg.op == OP_NOT:
        return arg.args[0]
    return make_term(OP_NOT, (arg,), None, BOOL)


def _flatten(op: str, args: Iterable[Term]) -> list[Term]:
    flat: list[Term] = []
    for arg in args:
        if arg.op == op:
            flat.extend(arg.args)
        else:
            flat.append(arg)
    return flat


def and_(*args: Term) -> Term:
    """N-ary conjunction.  Flattens, deduplicates and folds constants."""
    flat = _flatten(OP_AND, args)
    kept: list[Term] = []
    seen: set[int] = set()
    for arg in flat:
        _require_bool(arg, "and")
        if arg.is_false():
            return FALSE
        if arg.is_true() or arg.term_id in seen:
            continue
        seen.add(arg.term_id)
        kept.append(arg)
    for arg in kept:
        if arg.op == OP_NOT and arg.args[0].term_id in seen:
            return FALSE
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return make_term(OP_AND, tuple(kept), None, BOOL)


def or_(*args: Term) -> Term:
    """N-ary disjunction.  Flattens, deduplicates and folds constants."""
    flat = _flatten(OP_OR, args)
    kept: list[Term] = []
    seen: set[int] = set()
    for arg in flat:
        _require_bool(arg, "or")
        if arg.is_true():
            return TRUE
        if arg.is_false() or arg.term_id in seen:
            continue
        seen.add(arg.term_id)
        kept.append(arg)
    for arg in kept:
        if arg.op == OP_NOT and arg.args[0].term_id in seen:
            return TRUE
    if not kept:
        return FALSE
    if len(kept) == 1:
        return kept[0]
    return make_term(OP_OR, tuple(kept), None, BOOL)


def implies(antecedent: Term, consequent: Term) -> Term:
    """Material implication, normalised to a disjunction."""
    return or_(not_(antecedent), consequent)


def iff(left: Term, right: Term) -> Term:
    """Boolean equivalence (routed through :func:`eq`)."""
    return eq(left, right)


def xor(left: Term, right: Term) -> Term:
    """Exclusive or, normalised to negated equivalence."""
    return not_(eq(left, right))


def ite(cond: Term, then_branch: Term, else_branch: Term) -> Term:
    """If-then-else over booleans or bitvectors.

    Folds constant conditions, identical branches, and the common boolean
    special cases (``ite(c, true, e)`` etc.).
    """
    _require_bool(cond, "ite condition")
    sort = check_same_sort(then_branch.sort, else_branch.sort, "ite branches")
    if cond.is_true():
        return then_branch
    if cond.is_false():
        return else_branch
    if then_branch is else_branch:
        return then_branch
    if sort == BOOL:
        if then_branch.is_true() and else_branch.is_false():
            return cond
        if then_branch.is_false() and else_branch.is_true():
            return not_(cond)
        if then_branch.is_true():
            return or_(cond, else_branch)
        if then_branch.is_false():
            return and_(not_(cond), else_branch)
        if else_branch.is_true():
            return or_(not_(cond), then_branch)
        if else_branch.is_false():
            return and_(cond, then_branch)
    return make_term(OP_ITE, (cond, then_branch, else_branch), None, sort)


def eq(left: Term, right: Term) -> Term:
    """Equality over booleans or same-width bitvectors."""
    check_same_sort(left.sort, right.sort, "eq")
    if left is right:
        return TRUE
    if left.is_const() and right.is_const():
        return bool_const(left.const_value() == right.const_value())
    if left.sort == BOOL:
        # Fold equivalences with a constant side into the other side.
        if left.is_true():
            return right
        if left.is_false():
            return not_(right)
        if right.is_true():
            return left
        if right.is_false():
            return not_(left)
    return make_term(OP_EQ, _ordered(left, right), None, BOOL)


def distinct(left: Term, right: Term) -> Term:
    """Disequality."""
    return not_(eq(left, right))


def _ordered(left: Term, right: Term) -> tuple[Term, Term]:
    """Canonically order commutative arguments to improve sharing."""
    if left.term_id <= right.term_id:
        return (left, right)
    return (right, left)


# -- bitvector arithmetic and comparisons --------------------------------------


def bv_add(left: Term, right: Term) -> Term:
    """Wrap-around bitvector addition."""
    sort = _require_same_bv(left, right, "bvadd")
    if left.is_bv_const() and right.is_bv_const():
        return bv_const(left.bv_value() + right.bv_value(), sort.width)
    if left.is_bv_const() and left.bv_value() == 0:
        return right
    if right.is_bv_const() and right.bv_value() == 0:
        return left
    return make_term(OP_BVADD, (left, right), None, sort)


def bv_sub(left: Term, right: Term) -> Term:
    """Wrap-around bitvector subtraction."""
    sort = _require_same_bv(left, right, "bvsub")
    if left.is_bv_const() and right.is_bv_const():
        return bv_const(left.bv_value() - right.bv_value(), sort.width)
    if right.is_bv_const() and right.bv_value() == 0:
        return left
    if left is right:
        return bv_const(0, sort.width)
    return make_term(OP_BVSUB, (left, right), None, sort)


def bv_ult(left: Term, right: Term) -> Term:
    """Unsigned strictly-less-than comparison."""
    sort = _require_same_bv(left, right, "bvult")
    if left.is_bv_const() and right.is_bv_const():
        return bool_const(left.bv_value() < right.bv_value())
    if right.is_bv_const() and right.bv_value() == 0:
        return FALSE
    if left.is_bv_const() and left.bv_value() == sort.max_value:
        return FALSE
    if left is right:
        return FALSE
    return make_term(OP_BVULT, (left, right), None, BOOL)


def bv_ule(left: Term, right: Term) -> Term:
    """Unsigned less-than-or-equal comparison."""
    sort = _require_same_bv(left, right, "bvule")
    if left.is_bv_const() and right.is_bv_const():
        return bool_const(left.bv_value() <= right.bv_value())
    if left.is_bv_const() and left.bv_value() == 0:
        return TRUE
    if right.is_bv_const() and right.bv_value() == sort.max_value:
        return TRUE
    if left is right:
        return TRUE
    return make_term(OP_BVULE, (left, right), None, BOOL)


def bv_ugt(left: Term, right: Term) -> Term:
    """Unsigned strictly-greater-than comparison."""
    return bv_ult(right, left)


def bv_uge(left: Term, right: Term) -> Term:
    """Unsigned greater-than-or-equal comparison."""
    return bv_ule(right, left)


def bv_min(left: Term, right: Term) -> Term:
    """The unsigned minimum of two bitvectors."""
    return ite(bv_ule(left, right), left, right)


def bv_max(left: Term, right: Term) -> Term:
    """The unsigned maximum of two bitvectors."""
    return ite(bv_ule(left, right), right, left)


def bv_saturating_add(left: Term, right: Term) -> Term:
    """Addition that clamps at the maximum value instead of wrapping.

    Used for path-length counters so that a narrow bitvector encoding of an
    unbounded integer can never wrap back to a "better" (smaller) value.
    """
    sort = _require_same_bv(left, right, "bv_saturating_add")
    top = bv_const(sort.max_value, sort.width)
    total = bv_add(left, right)
    overflowed = bv_ult(total, left)
    return ite(overflowed, top, total)


def and_all(args: Sequence[Term]) -> Term:
    """Conjunction of a sequence (accepts the empty sequence)."""
    return and_(*args)


def or_all(args: Sequence[Term]) -> Term:
    """Disjunction of a sequence (accepts the empty sequence)."""
    return or_(*args)


# -- helpers -------------------------------------------------------------------


def _require_bool(term: Term, context: str) -> None:
    if term.sort != BOOL:
        raise SortError(f"{context}: expected a boolean term, got sort {term.sort!r}")


def _require_same_bv(left: Term, right: Term, context: str) -> BitVecSort:
    if not isinstance(left.sort, BitVecSort) or not isinstance(right.sort, BitVecSort):
        raise SortError(f"{context}: expected bitvector terms, got {left.sort!r} and {right.sort!r}")
    check_same_sort(left.sort, right.sort, context)
    return left.sort
