"""Sorts (types) for the finite-domain SMT term language.

The reproduction only ever needs two kinds of sorts:

* :data:`BOOL` — the booleans; and
* :class:`BitVecSort` — fixed-width unsigned bitvectors.

Everything richer (enumerations, optional values, records, finite sets) is
layered on top of these two sorts by :mod:`repro.symbolic`, mirroring how the
original Timepiece lowers Zen values onto Z3 sorts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SortError


@dataclass(frozen=True)
class Sort:
    """Base class for sorts.  Sorts are immutable and compared structurally."""

    def is_bool(self) -> bool:
        return isinstance(self, BoolSort)

    def is_bitvec(self) -> bool:
        return isinstance(self, BitVecSort)


@dataclass(frozen=True)
class BoolSort(Sort):
    """The sort of boolean terms."""

    def __repr__(self) -> str:
        return "Bool"


@dataclass(frozen=True)
class BitVecSort(Sort):
    """The sort of unsigned bitvectors of a fixed ``width`` (in bits)."""

    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise SortError(f"bitvector width must be positive, got {self.width}")

    @property
    def max_value(self) -> int:
        """Largest unsigned value representable at this width."""
        return (1 << self.width) - 1

    def mask(self, value: int) -> int:
        """Truncate ``value`` to this width (two's-complement wraparound)."""
        return value & self.max_value

    def __repr__(self) -> str:
        return f"BitVec({self.width})"


#: The unique boolean sort instance.
BOOL = BoolSort()


def bitvec(width: int) -> BitVecSort:
    """Return the bitvector sort of the given ``width``."""
    return BitVecSort(width)


def check_same_sort(left: Sort, right: Sort, context: str) -> Sort:
    """Raise :class:`SortError` unless ``left`` and ``right`` are equal."""
    if left != right:
        raise SortError(f"{context}: sorts differ ({left!r} vs {right!r})")
    return left


def width_for_value(value: int) -> int:
    """Smallest bitvector width able to represent the non-negative ``value``."""
    if value < 0:
        raise SortError(f"cannot size a bitvector for negative value {value}")
    return max(1, value.bit_length())
