"""Models (satisfying assignments) returned by the SMT solver facade.

A :class:`Model` maps the *original* variable names — boolean and bitvector
alike — back to Python values, regardless of how the bit-blaster and the
Tseitin transform renamed or exploded them internally.
"""

from __future__ import annotations

from typing import Mapping

from repro.smt.terms import Term
from repro.smt.walker import evaluate


class Model:
    """An assignment of Python values to the free variables of a formula."""

    def __init__(self, values: Mapping[str, bool | int]) -> None:
        self._values = dict(values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __getitem__(self, name: str) -> bool | int:
        return self._values[name]

    def get(self, name: str, default: bool | int = 0) -> bool | int:
        """The value of variable ``name``, or ``default`` if unconstrained."""
        return self._values.get(name, default)

    def as_dict(self) -> dict[str, bool | int]:
        """A copy of the assignment as a plain dictionary."""
        return dict(self._values)

    def evaluate(self, term: Term) -> bool | int:
        """Evaluate an arbitrary term under this model.

        Variables the model does not constrain default to ``False``/``0``,
        matching the usual "don't care" completion of SAT models.
        """
        return evaluate(term, self._values, default=True)

    def __repr__(self) -> str:
        entries = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Model({entries})"
