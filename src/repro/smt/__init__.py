"""A self-contained finite-domain SMT solver.

This package stands in for Z3 (unavailable in this offline environment).  It
provides a typed term language over booleans and fixed-width bitvectors,
simplifying term constructors, an eager bit-blaster, a Tseitin CNF encoder
and a CDCL SAT core, wrapped in a small solver facade
(:class:`~repro.smt.solver.Solver`, :func:`~repro.smt.solver.prove`) and a
persistent incremental backend
(:class:`~repro.smt.incremental.IncrementalSolver`,
:func:`~repro.smt.incremental.process_solver`) that amortises encoding and
learned clauses across queries.

Typical usage::

    from repro import smt

    x = smt.bv_var("x", 8)
    goal = smt.implies(smt.bv_ult(x, smt.bv_const(10, 8)),
                       smt.bv_ule(x, smt.bv_const(10, 8)))
    assert smt.prove(goal).valid
"""

from repro.smt.builder import (
    and_,
    and_all,
    bool_const,
    bool_var,
    bv_add,
    bv_const,
    bv_max,
    bv_min,
    bv_saturating_add,
    bv_sub,
    bv_uge,
    bv_ugt,
    bv_ule,
    bv_ult,
    bv_var,
    distinct,
    eq,
    false,
    iff,
    implies,
    ite,
    not_,
    or_,
    or_all,
    true,
    xor,
)
from repro.smt.incremental import IncrementalSolver, process_solver, reset_process_solver
from repro.smt.model import Model
from repro.smt.solver import (
    GLOBAL_STATISTICS,
    CheckResult,
    ProofResult,
    Solver,
    SolverStatistics,
    check_sat,
    prove,
)
from repro.smt.sorts import BOOL, BitVecSort, BoolSort, Sort, bitvec
from repro.smt.terms import Term, free_variables, iter_subterms, term_size
from repro.smt.walker import evaluate, substitute

__all__ = [
    # sorts
    "BOOL",
    "BitVecSort",
    "BoolSort",
    "Sort",
    "bitvec",
    # terms
    "Term",
    "free_variables",
    "iter_subterms",
    "term_size",
    "evaluate",
    "substitute",
    # builders
    "true",
    "false",
    "bool_const",
    "bool_var",
    "bv_const",
    "bv_var",
    "not_",
    "and_",
    "or_",
    "and_all",
    "or_all",
    "implies",
    "iff",
    "xor",
    "ite",
    "eq",
    "distinct",
    "bv_add",
    "bv_sub",
    "bv_ult",
    "bv_ule",
    "bv_ugt",
    "bv_uge",
    "bv_min",
    "bv_max",
    "bv_saturating_add",
    # solving
    "Solver",
    "IncrementalSolver",
    "process_solver",
    "reset_process_solver",
    "CheckResult",
    "ProofResult",
    "Model",
    "SolverStatistics",
    "GLOBAL_STATISTICS",
    "check_sat",
    "prove",
]
