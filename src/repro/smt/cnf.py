"""CNF clause databases shared between the Tseitin encoder and the SAT core.

Variables are positive integers starting at 1; literals are non-zero integers
where a negative literal denotes the negation of the corresponding variable
(the usual DIMACS convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SolverError


@dataclass
class Cnf:
    """A CNF formula: a variable counter, clause list and name bookkeeping."""

    num_vars: int = 0
    clauses: list[list[int]] = field(default_factory=list)
    #: Maps the original boolean variable name to its CNF variable index.
    name_to_var: dict[str, int] = field(default_factory=dict)
    #: Inverse of :attr:`name_to_var`.
    var_to_name: dict[int, str] = field(default_factory=dict)

    def new_var(self, name: str | None = None) -> int:
        """Allocate a fresh variable, optionally registering a source name."""
        self.num_vars += 1
        index = self.num_vars
        if name is not None:
            if name in self.name_to_var:
                raise SolverError(f"variable name {name!r} already allocated")
            self.name_to_var[name] = index
            self.var_to_name[index] = name
        return index

    def var_for_name(self, name: str) -> int:
        """The variable index for ``name``, allocating it on first use."""
        existing = self.name_to_var.get(name)
        if existing is not None:
            return existing
        return self.new_var(name)

    def add_clause(self, literals: list[int]) -> None:
        """Add a clause.  Tautologies are dropped; duplicates are merged."""
        seen: set[int] = set()
        unique: list[int] = []
        for literal in literals:
            if literal == 0 or abs(literal) > self.num_vars:
                raise SolverError(f"literal {literal} out of range (num_vars={self.num_vars})")
            if -literal in seen:
                return  # tautology: clause is trivially satisfied
            if literal not in seen:
                seen.add(literal)
                unique.append(literal)
        self.clauses.append(unique)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def to_dimacs(self) -> str:
        """Render the formula in DIMACS CNF format (useful for debugging)."""
        lines = [f"p cnf {self.num_vars} {self.num_clauses}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"
