"""Hash-consed terms for the finite-domain SMT language.

A :class:`Term` is an immutable node in a maximally-shared DAG.  Terms are
*hash-consed*: constructing the same operator over the same arguments twice
returns the identical Python object, so structural equality is object
identity and memoised traversals can key dictionaries by ``id``-equality.

Only the raw representation lives here.  The *smart constructors* that
perform algebraic simplification while building terms live in
:mod:`repro.smt.builder`; user code should go through the builder.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.errors import TermError
from repro.smt.sorts import BOOL, BitVecSort, Sort

# Operator tags.  Using plain strings keeps terms picklable and easy to debug.
OP_TRUE = "true"
OP_FALSE = "false"
OP_VAR = "var"
OP_NOT = "not"
OP_AND = "and"
OP_OR = "or"
OP_ITE = "ite"
OP_EQ = "eq"
OP_BVCONST = "bvconst"
OP_BVADD = "bvadd"
OP_BVSUB = "bvsub"
OP_BVULT = "bvult"
OP_BVULE = "bvule"

#: Operators whose result sort is boolean regardless of argument sorts.
BOOL_RESULT_OPS = frozenset({OP_TRUE, OP_FALSE, OP_NOT, OP_AND, OP_OR, OP_EQ, OP_BVULT, OP_BVULE})

#: Operators that carry a payload instead of (or in addition to) arguments.
PAYLOAD_OPS = frozenset({OP_VAR, OP_BVCONST})


class Term:
    """A node of the term DAG.

    Attributes:
        op: operator tag (one of the ``OP_*`` constants).
        args: child terms.
        payload: operator-specific data (variable name, constant value).
        sort: the sort of the term.
    """

    __slots__ = ("op", "args", "payload", "sort", "_hash", "term_id")

    _intern: dict[tuple, "Term"] = {}
    _next_id: int = 0

    def __new__(cls, op: str, args: tuple["Term", ...], payload: Hashable, sort: Sort) -> "Term":
        key = (op, tuple(a.term_id for a in args), payload, sort)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        term = object.__new__(cls)
        term.op = op
        term.args = args
        term.payload = payload
        term.sort = sort
        term.term_id = cls._next_id
        cls._next_id += 1
        term._hash = hash((op, term.term_id))
        cls._intern[key] = term
        return term

    # Terms are interned, so identity is structural equality.
    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return term_to_str(self, max_depth=6)

    # -- convenience predicates ------------------------------------------------

    def is_true(self) -> bool:
        return self.op == OP_TRUE

    def is_false(self) -> bool:
        return self.op == OP_FALSE

    def is_bool_const(self) -> bool:
        return self.op in (OP_TRUE, OP_FALSE)

    def is_bv_const(self) -> bool:
        return self.op == OP_BVCONST

    def is_const(self) -> bool:
        return self.is_bool_const() or self.is_bv_const()

    def is_var(self) -> bool:
        return self.op == OP_VAR

    def bool_value(self) -> bool:
        """The Python value of a boolean constant term."""
        if not self.is_bool_const():
            raise TermError(f"not a boolean constant: {self!r}")
        return self.op == OP_TRUE

    def bv_value(self) -> int:
        """The Python value of a bitvector constant term."""
        if not self.is_bv_const():
            raise TermError(f"not a bitvector constant: {self!r}")
        return self.payload

    def const_value(self) -> bool | int:
        """The Python value of any constant term."""
        if self.is_bool_const():
            return self.bool_value()
        return self.bv_value()

    def var_name(self) -> str:
        if not self.is_var():
            raise TermError(f"not a variable: {self!r}")
        return self.payload

    def width(self) -> int:
        """The width of a bitvector-sorted term."""
        if not isinstance(self.sort, BitVecSort):
            raise TermError(f"term is not bitvector-sorted: {self!r}")
        return self.sort.width

    @classmethod
    def intern_table_size(cls) -> int:
        """Number of distinct terms built so far (useful in tests/benchmarks)."""
        return len(cls._intern)


def make_term(op: str, args: tuple[Term, ...], payload: Hashable, sort: Sort) -> Term:
    """Low-level constructor.  Performs no simplification."""
    return Term(op, args, payload, sort)


# Pre-built boolean constants, shared across the whole process.
TRUE = make_term(OP_TRUE, (), None, BOOL)
FALSE = make_term(OP_FALSE, (), None, BOOL)


def iter_subterms(root: Term) -> Iterator[Term]:
    """Yield every distinct subterm of ``root`` exactly once (post-order)."""
    seen: set[int] = set()
    stack: list[tuple[Term, bool]] = [(root, False)]
    while stack:
        term, expanded = stack.pop()
        if term.term_id in seen:
            continue
        if expanded:
            seen.add(term.term_id)
            yield term
        else:
            stack.append((term, True))
            for arg in term.args:
                if arg.term_id not in seen:
                    stack.append((arg, False))


def free_variables(root: Term) -> dict[str, Term]:
    """Return the free variables of ``root`` as a name → term mapping."""
    return {t.payload: t for t in iter_subterms(root) if t.op == OP_VAR}


def term_size(root: Term) -> int:
    """Number of distinct subterms in the DAG rooted at ``root``."""
    return sum(1 for _ in iter_subterms(root))


def term_to_str(term: Term, max_depth: int = 12) -> str:
    """Render a term as an s-expression, eliding very deep structure."""
    if max_depth <= 0:
        return "..."
    if term.op == OP_TRUE:
        return "true"
    if term.op == OP_FALSE:
        return "false"
    if term.op == OP_VAR:
        return f"{term.payload}:{term.sort!r}"
    if term.op == OP_BVCONST:
        return f"#b{term.payload}/{term.width()}"
    rendered_args = " ".join(term_to_str(a, max_depth - 1) for a in term.args)
    return f"({term.op} {rendered_args})"
