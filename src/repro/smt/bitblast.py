"""Eager bit-blasting of bitvector terms down to pure boolean terms.

The verification conditions produced by the Timepiece encoder mix boolean
structure with fixed-width bitvector arithmetic and comparisons.  The
:class:`BitBlaster` lowers such a mixed term into a term that mentions *only*
boolean operators and boolean variables, which the Tseitin transform
(:mod:`repro.smt.tseitin`) then converts to CNF for the SAT core.

Bitvector variables are exploded into per-bit boolean variables whose names
are derived from the original name (``x`` of width 4 becomes ``x#0 .. x#3``,
least-significant bit first).  The blaster records this mapping so the solver
can reassemble integer values for models.
"""

from __future__ import annotations

from repro.errors import TermError
from repro.smt import builder
from repro.smt.sorts import BOOL, BitVecSort
from repro.smt.terms import (
    OP_AND,
    OP_BVADD,
    OP_BVCONST,
    OP_BVSUB,
    OP_BVULE,
    OP_BVULT,
    OP_EQ,
    OP_FALSE,
    OP_ITE,
    OP_NOT,
    OP_OR,
    OP_TRUE,
    OP_VAR,
    Term,
)

#: Separator between a bitvector variable name and its bit index.
BIT_SEPARATOR = "#"


def bit_name(variable: str, index: int) -> str:
    """The boolean variable name used for bit ``index`` of ``variable``."""
    return f"{variable}{BIT_SEPARATOR}{index}"


class BitBlaster:
    """Lowers mixed boolean/bitvector terms to purely boolean terms."""

    def __init__(self) -> None:
        # Maps bitvector variable name -> width, for model reconstruction.
        self.bitvector_variables: dict[str, int] = {}
        self._bool_cache: dict[int, Term] = {}
        self._bits_cache: dict[int, list[Term]] = {}
        #: Cache counters (across both the boolean and the per-bit caches),
        #: surfaced by the incremental backend's ``cache_statistics``.
        self.cache_hits = 0
        self.cache_misses = 0

    # -- public API -------------------------------------------------------------

    def blast(self, term: Term) -> Term:
        """Blast a boolean-sorted term into a purely boolean term."""
        if term.sort != BOOL:
            raise TermError(f"blast expects a boolean term, got sort {term.sort!r}")
        return self._blast_bool(term)

    # -- boolean-sorted terms ---------------------------------------------------

    def _blast_bool(self, term: Term) -> Term:
        cached = self._bool_cache.get(term.term_id)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        result = self._blast_bool_uncached(term)
        self._bool_cache[term.term_id] = result
        return result

    def _blast_bool_uncached(self, term: Term) -> Term:
        op = term.op
        if op in (OP_TRUE, OP_FALSE):
            return term
        if op == OP_VAR:
            return term
        if op == OP_NOT:
            return builder.not_(self._blast_bool(term.args[0]))
        if op == OP_AND:
            return builder.and_(*[self._blast_bool(a) for a in term.args])
        if op == OP_OR:
            return builder.or_(*[self._blast_bool(a) for a in term.args])
        if op == OP_ITE:
            return builder.ite(
                self._blast_bool(term.args[0]),
                self._blast_bool(term.args[1]),
                self._blast_bool(term.args[2]),
            )
        if op == OP_EQ:
            left, right = term.args
            if left.sort == BOOL:
                return builder.eq(self._blast_bool(left), self._blast_bool(right))
            return self._blast_bv_equality(left, right)
        if op == OP_BVULT:
            return self._blast_comparison(term.args[0], term.args[1], strict=True)
        if op == OP_BVULE:
            return self._blast_comparison(term.args[0], term.args[1], strict=False)
        raise TermError(f"cannot bit-blast boolean operator {op!r}")

    def _blast_bv_equality(self, left: Term, right: Term) -> Term:
        left_bits = self._blast_bits(left)
        right_bits = self._blast_bits(right)
        return builder.and_(*[builder.eq(a, b) for a, b in zip(left_bits, right_bits)])

    def _blast_comparison(self, left: Term, right: Term, strict: bool) -> Term:
        """Unsigned comparator built by scanning from the least-significant bit.

        ``result_i = ite(a_i = b_i, result_{i-1}, ¬a_i ∧ b_i)`` with the base
        case ``false`` for ``<`` and ``true`` for ``≤``.
        """
        left_bits = self._blast_bits(left)
        right_bits = self._blast_bits(right)
        result = builder.false() if strict else builder.true()
        for a_bit, b_bit in zip(left_bits, right_bits):
            result = builder.ite(
                builder.eq(a_bit, b_bit),
                result,
                builder.and_(builder.not_(a_bit), b_bit),
            )
        return result

    # -- bitvector-sorted terms -------------------------------------------------

    def _blast_bits(self, term: Term) -> list[Term]:
        cached = self._bits_cache.get(term.term_id)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        result = self._blast_bits_uncached(term)
        self._bits_cache[term.term_id] = result
        return result

    def _blast_bits_uncached(self, term: Term) -> list[Term]:
        if not isinstance(term.sort, BitVecSort):
            raise TermError(f"expected a bitvector term, got sort {term.sort!r}")
        width = term.sort.width
        op = term.op
        if op == OP_BVCONST:
            value = term.bv_value()
            return [builder.bool_const(bool((value >> i) & 1)) for i in range(width)]
        if op == OP_VAR:
            self.bitvector_variables[term.payload] = width
            return [builder.bool_var(bit_name(term.payload, i)) for i in range(width)]
        if op == OP_ITE:
            cond = self._blast_bool(term.args[0])
            then_bits = self._blast_bits(term.args[1])
            else_bits = self._blast_bits(term.args[2])
            return [builder.ite(cond, t, e) for t, e in zip(then_bits, else_bits)]
        if op == OP_BVADD:
            return self._ripple_carry(
                self._blast_bits(term.args[0]),
                self._blast_bits(term.args[1]),
                carry_in=builder.false(),
            )
        if op == OP_BVSUB:
            # a - b  =  a + ~b + 1  (two's complement).
            negated = [builder.not_(b) for b in self._blast_bits(term.args[1])]
            return self._ripple_carry(self._blast_bits(term.args[0]), negated, carry_in=builder.true())
        raise TermError(f"cannot bit-blast bitvector operator {op!r}")

    @staticmethod
    def _ripple_carry(left: list[Term], right: list[Term], carry_in: Term) -> list[Term]:
        """Classic ripple-carry adder over bit lists (LSB first)."""
        bits: list[Term] = []
        carry = carry_in
        for a_bit, b_bit in zip(left, right):
            partial = builder.not_(builder.eq(a_bit, b_bit))  # a xor b
            bits.append(builder.not_(builder.eq(partial, carry)))  # (a xor b) xor carry
            carry = builder.or_(
                builder.and_(a_bit, b_bit),
                builder.and_(partial, carry),
            )
        return bits
