"""Tseitin transformation from purely boolean terms to CNF.

Every non-literal subterm is assigned a fresh auxiliary CNF variable and the
standard defining clauses are emitted, so the CNF grows linearly in the size
of the (shared) term DAG.  The transformation requires its input to contain
no bitvector operations — run :class:`repro.smt.bitblast.BitBlaster` first.
"""

from __future__ import annotations

from repro.errors import TermError
from repro.smt.cnf import Cnf
from repro.smt.sorts import BOOL
from repro.smt.terms import (
    OP_AND,
    OP_EQ,
    OP_FALSE,
    OP_ITE,
    OP_NOT,
    OP_OR,
    OP_TRUE,
    OP_VAR,
    Term,
)


class TseitinEncoder:
    """Encodes boolean terms into a shared :class:`Cnf` instance.

    The encoder memoises the CNF literal of every subterm by its (stable,
    process-wide) ``term_id`` and records which clause indices each subterm's
    encoding emitted (:meth:`clause_span`).  Long-lived encoders therefore
    encode shared structure exactly once, and incremental backends can
    extract the cone of clauses relevant to one query without rescanning the
    whole database.
    """

    def __init__(self, cnf: Cnf | None = None) -> None:
        self.cnf = cnf if cnf is not None else Cnf()
        self._literal_cache: dict[int, int] = {}
        self._clause_spans: dict[int, tuple[int, int]] = {}
        self._true_literal: int | None = None
        #: Memoisation counters, surfaced by the incremental backend's
        #: ``cache_statistics`` (a hit means a subterm's CNF was reused).
        self.cache_hits = 0
        self.cache_misses = 0

    # -- public API -------------------------------------------------------------

    def assert_term(self, term: Term) -> None:
        """Add the constraint that ``term`` is true."""
        literal = self.literal_for(term)
        self.cnf.add_clause([literal])

    def literal_for(self, term: Term) -> int:
        """Return a CNF literal equisatisfiable with ``term``."""
        if term.sort != BOOL:
            raise TermError(f"Tseitin encoding expects boolean terms, got {term.sort!r}")
        cached = self._literal_cache.get(term.term_id)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        start = self.cnf.num_clauses
        literal = self._encode(term)
        self._literal_cache[term.term_id] = literal
        self._clause_spans[term.term_id] = (start, self.cnf.num_clauses)
        return literal

    def clause_span(self, term_id: int) -> tuple[int, int] | None:
        """The clause-index range ``[start, end)`` this term's encoding emitted.

        The range covers the defining clauses of the term and of every
        subterm that was first encoded while encoding it; subterms shared
        with earlier encodings carry their own (earlier) spans.  ``None`` for
        terms this encoder has never seen.
        """
        return self._clause_spans.get(term_id)

    # -- encoding ---------------------------------------------------------------

    def _constant_true(self) -> int:
        if self._true_literal is None:
            self._true_literal = self.cnf.new_var("$true")
            self.cnf.add_clause([self._true_literal])
        return self._true_literal

    def _encode(self, term: Term) -> int:
        op = term.op
        if op == OP_TRUE:
            return self._constant_true()
        if op == OP_FALSE:
            return -self._constant_true()
        if op == OP_VAR:
            return self.cnf.var_for_name(term.payload)
        if op == OP_NOT:
            return -self.literal_for(term.args[0])
        if op == OP_AND:
            return self._encode_and([self.literal_for(a) for a in term.args])
        if op == OP_OR:
            return self._encode_or([self.literal_for(a) for a in term.args])
        if op == OP_ITE:
            return self._encode_ite(
                self.literal_for(term.args[0]),
                self.literal_for(term.args[1]),
                self.literal_for(term.args[2]),
            )
        if op == OP_EQ:
            left, right = term.args
            if left.sort != BOOL:
                raise TermError("Tseitin encoder saw a bitvector equality; bit-blast first")
            return self._encode_iff(self.literal_for(left), self.literal_for(right))
        raise TermError(f"Tseitin encoder cannot handle operator {op!r}")

    def _encode_and(self, literals: list[int]) -> int:
        output = self.cnf.new_var()
        for literal in literals:
            self.cnf.add_clause([-output, literal])
        self.cnf.add_clause([output] + [-lit for lit in literals])
        return output

    def _encode_or(self, literals: list[int]) -> int:
        output = self.cnf.new_var()
        for literal in literals:
            self.cnf.add_clause([-literal, output])
        self.cnf.add_clause([-output] + literals)
        return output

    def _encode_ite(self, cond: int, then_lit: int, else_lit: int) -> int:
        output = self.cnf.new_var()
        self.cnf.add_clause([-cond, -then_lit, output])
        self.cnf.add_clause([-cond, then_lit, -output])
        self.cnf.add_clause([cond, -else_lit, output])
        self.cnf.add_clause([cond, else_lit, -output])
        # Redundant but helpful clauses: if both branches agree, so does the output.
        self.cnf.add_clause([-then_lit, -else_lit, output])
        self.cnf.add_clause([then_lit, else_lit, -output])
        return output

    def _encode_iff(self, left: int, right: int) -> int:
        output = self.cnf.new_var()
        self.cnf.add_clause([-output, -left, right])
        self.cnf.add_clause([-output, left, -right])
        self.cnf.add_clause([output, left, right])
        self.cnf.add_clause([output, -left, -right])
        return output
