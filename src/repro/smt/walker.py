"""Traversal utilities over the term DAG: substitution and evaluation.

Both operations are memoised on term identity, so shared subterms are
processed once regardless of how many paths reach them.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import TermError
from repro.smt import builder
from repro.smt.sorts import BOOL, BitVecSort
from repro.smt.terms import (
    OP_AND,
    OP_BVADD,
    OP_BVCONST,
    OP_BVSUB,
    OP_BVULE,
    OP_BVULT,
    OP_EQ,
    OP_FALSE,
    OP_ITE,
    OP_NOT,
    OP_OR,
    OP_TRUE,
    OP_VAR,
    Term,
)


def _topological_order(root: Term) -> list[Term]:
    """Return every distinct subterm of ``root`` in child-before-parent order."""
    order: list[Term] = []
    seen: set[int] = set()
    stack: list[tuple[Term, bool]] = [(root, False)]
    while stack:
        term, expanded = stack.pop()
        if expanded:
            order.append(term)
            continue
        if term.term_id in seen:
            continue
        seen.add(term.term_id)
        stack.append((term, True))
        for arg in term.args:
            if arg.term_id not in seen:
                stack.append((arg, False))
    return order


def rebuild(root: Term, leaf_map: Callable[[Term], Term | None]) -> Term:
    """Rebuild ``root`` bottom-up through the smart constructors.

    ``leaf_map`` may return a replacement term for any subterm (applied before
    the subterm's children are considered) or ``None`` to keep rebuilding.
    Because the rebuild goes through :mod:`repro.smt.builder`, any constants
    introduced by the mapping are folded through the whole term.
    """
    cache: dict[int, Term] = {}
    for term in _topological_order(root):
        replacement = leaf_map(term)
        if replacement is not None:
            cache[term.term_id] = replacement
            continue
        new_args = tuple(cache[a.term_id] for a in term.args)
        cache[term.term_id] = _rebuild_node(term, new_args)
    return cache[root.term_id]


def _rebuild_node(term: Term, args: tuple[Term, ...]) -> Term:
    if all(new is old for new, old in zip(args, term.args)):
        return term
    if term.op == OP_NOT:
        return builder.not_(args[0])
    if term.op == OP_AND:
        return builder.and_(*args)
    if term.op == OP_OR:
        return builder.or_(*args)
    if term.op == OP_ITE:
        return builder.ite(args[0], args[1], args[2])
    if term.op == OP_EQ:
        return builder.eq(args[0], args[1])
    if term.op == OP_BVADD:
        return builder.bv_add(args[0], args[1])
    if term.op == OP_BVSUB:
        return builder.bv_sub(args[0], args[1])
    if term.op == OP_BVULT:
        return builder.bv_ult(args[0], args[1])
    if term.op == OP_BVULE:
        return builder.bv_ule(args[0], args[1])
    raise TermError(f"cannot rebuild operator {term.op!r}")


def substitute(root: Term, mapping: Mapping[str, Term]) -> Term:
    """Replace free variables of ``root`` by name according to ``mapping``."""

    def map_leaf(term: Term) -> Term | None:
        if term.op == OP_VAR and term.payload in mapping:
            replacement = mapping[term.payload]
            if replacement.sort != term.sort:
                raise TermError(
                    f"substitution for {term.payload!r} has sort {replacement.sort!r}, "
                    f"expected {term.sort!r}"
                )
            return replacement
        return None

    return rebuild(root, map_leaf)


def evaluate(root: Term, env: Mapping[str, bool | int], default: bool = True) -> bool | int:
    """Evaluate ``root`` under the variable assignment ``env``.

    Boolean variables map to ``bool`` and bitvector variables to ``int``.
    Unassigned variables evaluate to ``False``/``0`` when ``default`` is true,
    otherwise evaluation raises :class:`TermError`.
    """
    cache: dict[int, bool | int] = {}
    for term in _topological_order(root):
        cache[term.term_id] = _evaluate_node(term, cache, env, default)
    return cache[root.term_id]


def _evaluate_node(
    term: Term,
    cache: Mapping[int, bool | int],
    env: Mapping[str, bool | int],
    default: bool,
) -> bool | int:
    op = term.op
    if op == OP_TRUE:
        return True
    if op == OP_FALSE:
        return False
    if op == OP_BVCONST:
        return term.bv_value()
    if op == OP_VAR:
        if term.payload in env:
            value = env[term.payload]
            if term.sort == BOOL:
                return bool(value)
            return term.sort.mask(int(value))
        if not default:
            raise TermError(f"no value for variable {term.payload!r}")
        return False if term.sort == BOOL else 0
    args = [cache[a.term_id] for a in term.args]
    if op == OP_NOT:
        return not args[0]
    if op == OP_AND:
        return all(args)
    if op == OP_OR:
        return any(args)
    if op == OP_ITE:
        return args[1] if args[0] else args[2]
    if op == OP_EQ:
        return args[0] == args[1]
    if op == OP_BVADD:
        assert isinstance(term.sort, BitVecSort)
        return term.sort.mask(int(args[0]) + int(args[1]))
    if op == OP_BVSUB:
        assert isinstance(term.sort, BitVecSort)
        return term.sort.mask(int(args[0]) - int(args[1]))
    if op == OP_BVULT:
        return int(args[0]) < int(args[1])
    if op == OP_BVULE:
        return int(args[0]) <= int(args[1])
    raise TermError(f"cannot evaluate operator {op!r}")
