"""Network instances: the routing-algebra model ``N = (G, S, I, F, ⊕)``.

A :class:`Network` bundles

* a :class:`~repro.routing.topology.Topology` ``G``;
* the route shape describing the set of routes ``S`` (usually an
  :class:`~repro.symbolic.shapes.OptionShape` so that "no route" — the
  paper's ``∞`` — is representable);
* the node initialisation function ``I``;
* the per-edge transfer functions ``F``; and
* the merge (selection) function ``⊕``.

It also carries the network's *symbolic variables*: free values such as an
external peer's announcement or the choice of destination node, optionally
constrained by preconditions (§4 of the paper).  Every function is written
over symbolic values, so the same network object drives both the concrete
simulator and the SMT-based verifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import RoutingError
from repro.routing.topology import Edge, Topology
from repro.symbolic.shapes import Shape
from repro.symbolic.values import SymBool

TransferFunction = Callable[[Any], Any]
MergeFunction = Callable[[Any, Any], Any]


@dataclass
class SymbolicVariable:
    """A network-level symbolic value with an optional precondition.

    Examples: the arbitrary route announced by an external peer, the symbolic
    destination prefix of the Hijack benchmark, or the symbolic destination
    node of the all-pairs benchmarks.
    """

    name: str
    value: Any
    constraint: SymBool = field(default_factory=SymBool.true)

    def __post_init__(self) -> None:
        if not self.name:
            raise RoutingError("symbolic variables need a non-empty name")


class Network:
    """A routing-algebra network instance."""

    def __init__(
        self,
        topology: Topology,
        route_shape: Shape,
        initial_routes: Mapping[str, Any] | Callable[[str], Any],
        transfer_functions: Mapping[Edge, TransferFunction] | Callable[[Edge], TransferFunction],
        merge: MergeFunction,
        symbolics: tuple[SymbolicVariable, ...] = (),
    ) -> None:
        self.topology = topology
        self.route_shape = route_shape
        self._initial_routes = initial_routes
        self._transfer_functions = transfer_functions
        self.merge = merge
        self.symbolics = tuple(symbolics)
        self._validate()

    # -- accessors ----------------------------------------------------------------

    def initial_route(self, node: str) -> Any:
        """The initial route ``I_v`` of ``node``."""
        if callable(self._initial_routes):
            return self._initial_routes(node)
        try:
            return self._initial_routes[node]
        except KeyError:
            raise RoutingError(f"no initial route defined for node {node!r}") from None

    def transfer_function(self, edge: Edge) -> TransferFunction:
        """The transfer function ``f_e`` of ``edge``."""
        if callable(self._transfer_functions):
            return self._transfer_functions(edge)
        try:
            return self._transfer_functions[edge]
        except KeyError:
            raise RoutingError(f"no transfer function defined for edge {edge!r}") from None

    def transfer(self, edge: Edge, route: Any) -> Any:
        """Apply the transfer function of ``edge`` to ``route``."""
        if not self.topology.has_edge(*edge):
            raise RoutingError(f"edge {edge!r} is not in the topology")
        return self.transfer_function(edge)(route)

    def merge_routes(self, left: Any, right: Any) -> Any:
        """Apply the selection function ``⊕``."""
        return self.merge(left, right)

    def merge_all(self, routes: list[Any]) -> Any:
        """Fold ``⊕`` over a non-empty list of routes."""
        if not routes:
            raise RoutingError("merge_all needs at least one route")
        merged = routes[0]
        for route in routes[1:]:
            merged = self.merge(merged, route)
        return merged

    def updated_route(self, node: str, neighbor_routes: Mapping[str, Any]) -> Any:
        """One synchronous update step at ``node`` (equation (4) of the paper).

        ``neighbor_routes`` maps every in-neighbour of ``node`` to the route it
        held at the previous time step.
        """
        contributions = [self.initial_route(node)]
        for neighbor in self.topology.predecessors(node):
            if neighbor not in neighbor_routes:
                raise RoutingError(
                    f"missing route for in-neighbour {neighbor!r} of {node!r}"
                )
            contributions.append(self.transfer((neighbor, node), neighbor_routes[neighbor]))
        return self.merge_all(contributions)

    def symbolic_constraints(self) -> SymBool:
        """The conjunction of all symbolic-variable preconditions."""
        constraint = SymBool.true()
        for symbolic in self.symbolics:
            constraint = constraint & symbolic.constraint
        return constraint

    @property
    def is_closed(self) -> bool:
        """True when the network has no free symbolic variables."""
        return not self.symbolics

    def with_symbolics(self, *symbolics: SymbolicVariable) -> "Network":
        """A copy of this network with additional symbolic variables."""
        return Network(
            topology=self.topology,
            route_shape=self.route_shape,
            initial_routes=self._initial_routes,
            transfer_functions=self._transfer_functions,
            merge=self.merge,
            symbolics=self.symbolics + tuple(symbolics),
        )

    def __repr__(self) -> str:
        return (
            f"Network(nodes={self.topology.node_count}, edges={self.topology.edge_count}, "
            f"symbolics={len(self.symbolics)})"
        )

    # -- validation -----------------------------------------------------------------

    def _validate(self) -> None:
        if self.topology.node_count == 0:
            raise RoutingError("networks need at least one node")
        if not callable(self.merge):
            raise RoutingError("merge must be callable")
        if not callable(self._initial_routes):
            missing = [v for v in self.topology.nodes if v not in self._initial_routes]
            if missing:
                raise RoutingError(f"initial routes missing for nodes {missing}")
        if not callable(self._transfer_functions):
            missing_edges = [e for e in self.topology.edges if e not in self._transfer_functions]
            if missing_edges:
                raise RoutingError(f"transfer functions missing for edges {missing_edges}")
