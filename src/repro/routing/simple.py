"""Simple routing algebras, including the paper's §2 running example.

This module provides three small algebras that are used throughout the test
suite, the examples and the documentation:

* :func:`reachability_network` — routes are optional booleans ("do I have a
  path?"), merge is "prefer having a route";
* :func:`shortest_path_network` — routes are optional hop counts, merge picks
  the smaller count; and
* :func:`build_running_example` — the idealized cloud-provider network of
  Figure 2 (nodes ``n``, ``w``, ``v``, ``d``, ``e`` with the *filter*, *tag*
  and *allow* policies), with routes carrying local preference, path length
  and an "internal" tag, optionally extended with the ``fromw`` ghost bit of
  Figure 10 and with a symbolic external announcement at ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import RoutingError
from repro.routing.algebra import Network, SymbolicVariable
from repro.routing.topology import Edge, Topology
from repro.symbolic import (
    BitVecShape,
    BoolShape,
    OptionShape,
    RecordShape,
    SymOption,
    ite_value,
)

# Default local-preference constants used by the running example.
DEFAULT_LOCAL_PREFERENCE = 100


def option_min_merge(left: SymOption, right: SymOption, better: Callable[[Any, Any], Any]) -> SymOption:
    """Merge two optional routes, preferring presence, then ``better`` payloads.

    ``better(a, b)`` must return a :class:`SymBool` that holds when payload
    ``a`` should be chosen over payload ``b``.
    """
    choose_left = left.is_some & (right.is_none | better(left.payload, right.payload))
    return ite_value(choose_left, left, ite_value(right.is_some, right, left))


# ---------------------------------------------------------------------------
# Boolean reachability and hop-count algebras
# ---------------------------------------------------------------------------


def reachability_network(topology: Topology, destination: str) -> Network:
    """Routes are optional unit values: "present" means "I can reach dest"."""
    if destination not in topology:
        raise RoutingError(f"destination {destination!r} is not in the topology")
    route_shape = OptionShape(BoolShape())

    def initial(node: str) -> SymOption:
        return route_shape.some(True) if node == destination else route_shape.none()

    def transfer(edge: Edge) -> Callable[[SymOption], SymOption]:
        def apply(route: SymOption) -> SymOption:
            return route
        return apply

    def merge(left: SymOption, right: SymOption) -> SymOption:
        return ite_value(left.is_some, left, right)

    return Network(topology, route_shape, initial, transfer, merge)


def shortest_path_network(topology: Topology, destination: str, width: int = 8) -> Network:
    """Routes are optional hop counts; transfer adds one; merge keeps the minimum."""
    if destination not in topology:
        raise RoutingError(f"destination {destination!r} is not in the topology")
    route_shape = OptionShape(BitVecShape(width))

    def initial(node: str) -> SymOption:
        return route_shape.some(0) if node == destination else route_shape.none()

    def transfer(edge: Edge) -> Callable[[SymOption], SymOption]:
        def apply(route: SymOption) -> SymOption:
            return route.map(lambda hops: hops.saturating_add(1))
        return apply

    def merge(left: SymOption, right: SymOption) -> SymOption:
        return option_min_merge(left, right, lambda a, b: a <= b)

    return Network(topology, route_shape, initial, transfer, merge)


# ---------------------------------------------------------------------------
# The §2 running example (Figure 2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunningExample:
    """The Figure 2 network plus handles that tests and examples need."""

    network: Network
    route_shape: OptionShape
    payload_shape: RecordShape
    #: The symbolic external announcement at ``n`` (``None`` for closed networks).
    external_route: SymOption | None


def running_example_route_shape(
    lp_width: int = 8,
    len_width: int = 8,
    with_fromw_ghost: bool = False,
) -> tuple[OptionShape, RecordShape]:
    """The route shape of the running example: ``⟨lp, len, tag⟩`` (+ ghost)."""
    fields: dict[str, Any] = {
        "lp": BitVecShape(lp_width),
        "len": BitVecShape(len_width),
        "tag": BoolShape(),
    }
    if with_fromw_ghost:
        fields["fromw"] = BoolShape()
    payload = RecordShape("ExampleRoute", fields)
    return OptionShape(payload), payload


def running_example_merge(left: SymOption, right: SymOption) -> SymOption:
    """Prefer any route over ``∞``, then higher lp, then shorter path length."""

    def better(a: Any, b: Any) -> Any:
        return (a.lp > b.lp) | ((a.lp == b.lp) & (a.len <= b.len))

    return option_min_merge(left, right, better)


def build_running_example(
    external_announcement: str = "none",
    with_fromw_ghost: bool = False,
    lp_width: int = 8,
    len_width: int = 8,
) -> RunningExample:
    """Construct the Figure 2 network.

    ``external_announcement`` selects what the external neighbour ``n`` starts
    with:

    * ``"none"`` — ``∞`` (the closed network simulated in Figure 3);
    * ``"symbolic"`` — an arbitrary route (the open network of §2.2 and §2.3).
    """
    if external_announcement not in ("none", "symbolic"):
        raise RoutingError("external_announcement must be 'none' or 'symbolic'")

    route_shape, payload_shape = running_example_route_shape(
        lp_width=lp_width, len_width=len_width, with_fromw_ghost=with_fromw_ghost
    )

    topology = Topology(nodes=["n", "w", "v", "d", "e"])
    topology.add_edge("n", "v")  # filtered
    topology.add_edge("w", "v")  # tagged internal
    topology.add_undirected_edge("v", "d")
    topology.add_edge("d", "e")  # only internal routes allowed

    external_route: SymOption | None = None
    symbolics: tuple[SymbolicVariable, ...] = ()
    if external_announcement == "symbolic":
        external_route = route_shape.fresh("external_n")
        constraint = route_shape.constraint(external_route)
        if with_fromw_ghost:
            # The ghost bit marks routes originating at w; an external
            # announcement can never carry it (Figure 10's assumption).
            constraint = constraint & (external_route.is_none | ~external_route.payload.fromw)
        symbolics = (
            SymbolicVariable(name="external_n", value=external_route, constraint=constraint),
        )

    w_fields: dict[str, Any] = {"lp": DEFAULT_LOCAL_PREFERENCE, "len": 0, "tag": False}
    if with_fromw_ghost:
        w_fields["fromw"] = True

    def initial(node: str) -> SymOption:
        if node == "w":
            return route_shape.some(w_fields)
        if node == "n" and external_route is not None:
            return external_route
        return route_shape.none()

    def increment(route: SymOption) -> SymOption:
        return route.map(lambda p: p.with_fields(len=p.len.saturating_add(1)))

    def transfer(edge: Edge) -> Callable[[SymOption], SymOption]:
        source, target = edge

        def apply(route: SymOption) -> SymOption:
            moved = increment(route)
            if edge == ("n", "v"):
                # filter: drop all routes from the external neighbour.
                return route_shape.none()
            if edge == ("w", "v"):
                # tag: mark routes from w as internal and reset the preference.
                return moved.map(
                    lambda p: p.with_fields(tag=True, lp=DEFAULT_LOCAL_PREFERENCE)
                )
            if edge == ("d", "e"):
                # allow: only internal (tagged) routes may reach e.
                return moved.where(lambda p: p.tag)
            return moved

        return apply

    network = Network(
        topology=topology,
        route_shape=route_shape,
        initial_routes=initial,
        transfer_functions=transfer,
        merge=running_example_merge,
        symbolics=symbolics,
    )
    return RunningExample(
        network=network,
        route_shape=route_shape,
        payload_shape=payload_shape,
        external_route=external_route,
    )
