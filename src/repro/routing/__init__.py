"""The routing-algebra substrate: topologies, network instances, simulation.

This package models what the paper calls a *network instance*
``N = (G, S, I, F, ⊕)`` and provides the synchronous simulator ``σ`` used to
state soundness and completeness, plus concrete algebras (simple
shortest-path / reachability algebras, the §2 running example and an
eBGP-style algebra following Table 3).
"""

from repro.routing.algebra import MergeFunction, Network, SymbolicVariable, TransferFunction
from repro.routing.bgp import (
    BgpPolicy,
    BgpRouteFamily,
    ORIGIN_TYPE,
    bgp_better,
    bgp_merge,
    bgp_route_family,
    drop_all_policy,
    identity_policy,
)
from repro.routing.simple import (
    RunningExample,
    build_running_example,
    option_min_merge,
    reachability_network,
    running_example_merge,
    running_example_route_shape,
    shortest_path_network,
)
from repro.routing.simulation import SimulationTrace, simulate, stable_routes
from repro.routing.topology import Edge, Topology, path_topology, ring_topology, star_topology

__all__ = [
    "Network",
    "SymbolicVariable",
    "TransferFunction",
    "MergeFunction",
    "Topology",
    "Edge",
    "path_topology",
    "ring_topology",
    "star_topology",
    "SimulationTrace",
    "simulate",
    "stable_routes",
    "RunningExample",
    "build_running_example",
    "running_example_merge",
    "running_example_route_shape",
    "reachability_network",
    "shortest_path_network",
    "option_min_merge",
    "BgpPolicy",
    "BgpRouteFamily",
    "ORIGIN_TYPE",
    "bgp_better",
    "bgp_merge",
    "bgp_route_family",
    "identity_policy",
    "drop_all_policy",
]
