"""Directed network topologies.

The paper's model is a directed graph ``G = (V, E)`` whose edges carry
transfer functions.  This module provides a small graph class tailored to
what the verifier needs: stable node ordering, fast predecessor lookup (the
inductive condition quantifies over in-neighbours), and a handful of
analyses (BFS distances, diameter) used when computing witness times.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.errors import RoutingError

Edge = tuple[str, str]


class Topology:
    """A directed graph with string-named nodes."""

    def __init__(self, nodes: Iterable[str] = (), edges: Iterable[Edge] = ()) -> None:
        self._successors: dict[str, list[str]] = {}
        self._predecessors: dict[str, list[str]] = {}
        for node in nodes:
            self.add_node(node)
        for source, target in edges:
            self.add_edge(source, target)

    # -- construction -----------------------------------------------------------

    def add_node(self, name: str) -> None:
        """Add a node (idempotent)."""
        if not name:
            raise RoutingError("node names must be non-empty strings")
        if name not in self._successors:
            self._successors[name] = []
            self._predecessors[name] = []

    def add_edge(self, source: str, target: str) -> None:
        """Add the directed edge ``source -> target`` (idempotent)."""
        if source == target:
            raise RoutingError(f"self-loop edges are not allowed ({source!r})")
        self.add_node(source)
        self.add_node(target)
        if target not in self._successors[source]:
            self._successors[source].append(target)
            self._predecessors[target].append(source)

    def add_undirected_edge(self, left: str, right: str) -> None:
        """Add edges in both directions between ``left`` and ``right``."""
        self.add_edge(left, right)
        self.add_edge(right, left)

    # -- queries ----------------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(self._successors)

    @property
    def edges(self) -> tuple[Edge, ...]:
        return tuple(
            (source, target)
            for source, targets in self._successors.items()
            for target in targets
        )

    @property
    def node_count(self) -> int:
        return len(self._successors)

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._successors.values())

    def __contains__(self, name: str) -> bool:
        return name in self._successors

    def has_edge(self, source: str, target: str) -> bool:
        return source in self._successors and target in self._successors[source]

    def successors(self, node: str) -> tuple[str, ...]:
        """Out-neighbours of ``node``."""
        self._check_node(node)
        return tuple(self._successors[node])

    def predecessors(self, node: str) -> tuple[str, ...]:
        """In-neighbours of ``node`` (the ``preds`` function of the paper)."""
        self._check_node(node)
        return tuple(self._predecessors[node])

    def in_degree(self, node: str) -> int:
        self._check_node(node)
        return len(self._predecessors[node])

    def out_degree(self, node: str) -> int:
        self._check_node(node)
        return len(self._successors[node])

    def in_edges(self, node: str) -> tuple[Edge, ...]:
        """The component "centered at" ``node``: every edge ending at it."""
        self._check_node(node)
        return tuple((source, node) for source in self._predecessors[node])

    # -- analyses ----------------------------------------------------------------

    def bfs_distances(self, source: str, reverse: bool = False) -> dict[str, int]:
        """Hop distances from ``source`` along edges (or against them).

        ``reverse=True`` follows edges backwards, which measures how many hops
        a route *originating* at ``source`` needs to reach each node — exactly
        the quantity used for witness times.
        """
        self._check_node(source)
        step = self.predecessors if reverse else self.successors
        # NOTE: routes propagate along edges, so the nodes that *hear* a route
        # originated at `source` are its successors; reverse=False is the
        # propagation direction.
        distances = {source: 0}
        queue: deque[str] = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor in (self.successors(node) if not reverse else self.predecessors(node)):
                if neighbor not in distances:
                    distances[neighbor] = distances[node] + 1
                    queue.append(neighbor)
        return distances

    def diameter(self) -> int:
        """Longest shortest-path distance over all connected ordered pairs."""
        longest = 0
        for node in self.nodes:
            distances = self.bfs_distances(node)
            if len(distances) > 1:
                longest = max(longest, max(distances.values()))
        return longest

    def is_strongly_connected(self) -> bool:
        """True when every node can reach every other node."""
        for node in self.nodes:
            if len(self.bfs_distances(node)) != self.node_count:
                return False
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(self._successors)

    def __repr__(self) -> str:
        return f"Topology(nodes={self.node_count}, edges={self.edge_count})"

    # -- helpers ------------------------------------------------------------------

    def _check_node(self, node: str) -> None:
        if node not in self._successors:
            raise RoutingError(f"unknown node {node!r}")


def path_topology(count: int, prefix: str = "n", bidirectional: bool = True) -> Topology:
    """A simple path ``n0 - n1 - ... - n(count-1)`` (useful in tests)."""
    if count <= 0:
        raise RoutingError("path topologies need at least one node")
    topology = Topology(nodes=[f"{prefix}{i}" for i in range(count)])
    for index in range(count - 1):
        left, right = f"{prefix}{index}", f"{prefix}{index + 1}"
        if bidirectional:
            topology.add_undirected_edge(left, right)
        else:
            topology.add_edge(left, right)
    return topology


def ring_topology(count: int, prefix: str = "n") -> Topology:
    """A bidirectional ring of ``count`` nodes."""
    if count < 3:
        raise RoutingError("ring topologies need at least three nodes")
    topology = path_topology(count, prefix=prefix, bidirectional=True)
    topology.add_undirected_edge(f"{prefix}{count - 1}", f"{prefix}0")
    return topology


def star_topology(leaf_count: int, hub: str = "hub", prefix: str = "leaf") -> Topology:
    """A hub node connected bidirectionally to ``leaf_count`` leaves."""
    if leaf_count <= 0:
        raise RoutingError("star topologies need at least one leaf")
    topology = Topology(nodes=[hub])
    for index in range(leaf_count):
        topology.add_undirected_edge(hub, f"{prefix}{index}")
    return topology
