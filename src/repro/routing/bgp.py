"""An eBGP-style routing algebra matching Table 3 of the paper.

Routes are optional records with the fields the paper models in SMT:

==========================  =======================================
Route field                 Modelled type
==========================  =======================================
``prefix``                  bitvector (an abstract IPv4 prefix id)
``ad``                      bitvector (administrative distance)
``lp``                      bitvector (eBGP local preference)
``med``                     bitvector (multi-exit discriminator)
``origin``                  enum {igp, egp, incomplete}
``as_path_length``          bitvector (saturating counter)
``communities``             finite set of community strings
==========================  =======================================

Benchmarks may add extra *ghost* fields (e.g. the Hijack benchmark's
``external`` tag) simply by passing ``ghost_fields``.

The merge function implements the standard eBGP decision process restricted
to these fields: prefer any route over none, then lower administrative
distance, higher local preference, shorter AS path, better origin and lower
MED.  Transfer-function construction is factored into a small combinator
(:class:`BgpPolicy`) that the fattree and WAN benchmarks, as well as the
policy-DSL compiler, all reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.errors import RoutingError
from repro.routing.simple import option_min_merge
from repro.symbolic import (
    BitVecShape,
    BoolShape,
    EnumShape,
    EnumType,
    OptionShape,
    RecordShape,
    SetShape,
    Shape,
    SymBool,
    SymOption,
)

#: The BGP origin attribute, ordered from most to least preferred.
ORIGIN_TYPE = EnumType("Origin", ("igp", "egp", "incomplete"))

#: Default attribute values used when a policy does not override them.
DEFAULT_LOCAL_PREFERENCE = 100
DEFAULT_ADMIN_DISTANCE = 20


@dataclass(frozen=True)
class BgpRouteFamily:
    """The shapes describing one BGP route type (payload and optional route)."""

    payload: RecordShape
    route: OptionShape
    communities: tuple[str, ...]

    def default_announcement(
        self,
        prefix: int = 0,
        lp: int = DEFAULT_LOCAL_PREFERENCE,
        communities: Iterable[str] = (),
        **ghost_values: Any,
    ) -> dict[str, Any]:
        """A concrete route value suitable for ``OptionShape.some``/``constant``."""
        values: dict[str, Any] = {
            "prefix": prefix,
            "ad": DEFAULT_ADMIN_DISTANCE,
            "lp": lp,
            "med": 0,
            "origin": "igp",
            "as_path_length": 0,
            "communities": tuple(communities),
        }
        for name, value in ghost_values.items():
            if name not in self.payload.fields:
                raise RoutingError(f"unknown ghost field {name!r}")
            values[name] = value
        for name, shape in self.payload.fields.items():
            if name not in values:
                values[name] = _ghost_default(shape)
        return values


def _ghost_default(shape: Shape) -> Any:
    if isinstance(shape, BoolShape):
        return False
    if isinstance(shape, BitVecShape):
        return 0
    if isinstance(shape, SetShape):
        return ()
    if isinstance(shape, EnumShape):
        return shape.enum_type.members[0]
    raise RoutingError(f"cannot derive a default for ghost shape {shape!r}")


def bgp_route_family(
    communities: Sequence[str] = (),
    prefix_width: int = 16,
    ad_width: int = 8,
    lp_width: int = 16,
    med_width: int = 16,
    path_width: int = 12,
    ghost_fields: dict[str, Shape] | None = None,
) -> BgpRouteFamily:
    """Build the route shapes of Table 3.

    The widths default to smaller values than a production BGP implementation
    would use (e.g. a 16-bit abstract prefix identifier instead of a 32-bit
    IPv4 address) so the pure-Python SAT backend stays fast; every width is a
    parameter, so individual benchmarks can widen them.
    """
    fields: dict[str, Shape] = {
        "prefix": BitVecShape(prefix_width),
        "ad": BitVecShape(ad_width),
        "lp": BitVecShape(lp_width),
        "med": BitVecShape(med_width),
        "origin": EnumShape(ORIGIN_TYPE),
        "as_path_length": BitVecShape(path_width),
        "communities": SetShape(tuple(communities)) if communities else SetShape(("_unused",)),
    }
    for name, shape in (ghost_fields or {}).items():
        if name in fields:
            raise RoutingError(f"ghost field {name!r} clashes with a base BGP field")
        fields[name] = shape
    payload = RecordShape("BgpRoute", fields)
    return BgpRouteFamily(payload=payload, route=OptionShape(payload), communities=tuple(communities))


# ---------------------------------------------------------------------------
# The BGP decision process (the ⊕ merge function)
# ---------------------------------------------------------------------------


def bgp_better(left: Any, right: Any) -> SymBool:
    """True when payload ``left`` wins the decision process against ``right``."""
    lower_ad = left.ad < right.ad
    same_ad = left.ad == right.ad
    higher_lp = left.lp > right.lp
    same_lp = left.lp == right.lp
    shorter_path = left.as_path_length < right.as_path_length
    same_path = left.as_path_length == right.as_path_length
    better_origin = left.origin.index < right.origin.index
    same_origin = left.origin.index == right.origin.index
    lower_med = left.med <= right.med
    return lower_ad | (
        same_ad
        & (
            higher_lp
            | (
                same_lp
                & (
                    shorter_path
                    | (same_path & (better_origin | (same_origin & lower_med)))
                )
            )
        )
    )


def bgp_merge(left: SymOption, right: SymOption) -> SymOption:
    """The ⊕ function: prefer presence, then the BGP decision process."""
    return option_min_merge(left, right, bgp_better)


# ---------------------------------------------------------------------------
# Transfer-function combinators
# ---------------------------------------------------------------------------


@dataclass
class BgpPolicy:
    """A declarative description of one edge's import/export policy.

    The policy is applied to a route in this order:

    1. drop everything when ``deny_all`` is set;
    2. drop the route if any ``deny_communities`` tag is present;
    3. drop the route unless all ``require_communities`` tags are present;
    4. drop the route if ``guard`` (an arbitrary payload predicate) fails;
    5. increment the AS-path length (unless ``increment_path`` is false);
    6. add/remove communities;
    7. overwrite local preference / MED when requested; and
    8. apply ``transform`` (an arbitrary payload-to-payload function).
    """

    deny_all: bool = False
    deny_communities: tuple[str, ...] = ()
    require_communities: tuple[str, ...] = ()
    guard: Callable[[Any], SymBool] | None = None
    increment_path: bool = True
    add_communities: tuple[str, ...] = ()
    remove_communities: tuple[str, ...] = ()
    set_local_preference: int | None = None
    set_med: int | None = None
    transform: Callable[[Any], Any] | None = None

    def apply(self, route: SymOption) -> SymOption:
        """Apply this policy to an optional route."""
        if self.deny_all:
            return route.where(lambda payload: SymBool.false())
        result = route
        if self.deny_communities:
            result = result.where(
                lambda payload: ~_has_any_community(payload, self.deny_communities)
            )
        if self.require_communities:
            result = result.where(
                lambda payload: _has_all_communities(payload, self.require_communities)
            )
        if self.guard is not None:
            result = result.where(self.guard)
        if self.increment_path:
            result = result.map(
                lambda payload: payload.with_fields(
                    as_path_length=payload.as_path_length.saturating_add(1)
                )
            )
        if self.add_communities or self.remove_communities:
            result = result.map(lambda payload: self._update_communities(payload))
        if self.set_local_preference is not None:
            lp_value = self.set_local_preference
            result = result.map(
                lambda payload: payload.with_fields(lp=_bv_like(payload.lp, lp_value))
            )
        if self.set_med is not None:
            med_value = self.set_med
            result = result.map(
                lambda payload: payload.with_fields(med=_bv_like(payload.med, med_value))
            )
        if self.transform is not None:
            result = result.map(self.transform)
        return result

    def _update_communities(self, payload: Any) -> Any:
        communities = payload.communities
        for name in self.remove_communities:
            communities = communities.remove(name)
        for name in self.add_communities:
            communities = communities.add(name)
        return payload.with_fields(communities=communities)

    def as_transfer(self) -> Callable[[SymOption], SymOption]:
        """This policy as a plain transfer function."""
        return self.apply


def _bv_like(reference: Any, value: int) -> Any:
    from repro.symbolic import SymBV

    return SymBV.constant(value, reference.width)


def _has_any_community(payload: Any, names: tuple[str, ...]) -> SymBool:
    result = SymBool.false()
    for name in names:
        result = result | payload.communities.contains(name)
    return result


def _has_all_communities(payload: Any, names: tuple[str, ...]) -> SymBool:
    result = SymBool.true()
    for name in names:
        result = result & payload.communities.contains(name)
    return result


def identity_policy() -> BgpPolicy:
    """The plain eBGP policy: just increment the AS-path length."""
    return BgpPolicy()


def drop_all_policy() -> BgpPolicy:
    """A policy that filters every route (the paper's *filter* edge)."""
    return BgpPolicy(deny_all=True)
