"""Synchronous network simulation (the paper's ``σ``).

The simulator computes, for a *closed* network (fixed initial routes, no free
symbolic variables), the state ``σ(v)(t)`` of every node at every time step
until the network converges or a round limit is hit.  It runs exactly the
same symbolic initialisation/transfer/merge functions as the verifier; with
concrete inputs the smart constructors fold everything to constants, and the
trace records the extracted Python values.

The simulator serves three purposes in this reproduction:

* it regenerates the example simulation table of Figure 3;
* it is the ground truth for the soundness property tests (Theorem 3.1:
  every simulated state must satisfy a verified interface); and
* it provides the "exact interface" of the completeness theorem (Theorem 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import RoutingError
from repro.routing.algebra import Network
from repro.smt.model import Model
from repro.symbolic.generic import values_equal


@dataclass
class SimulationTrace:
    """The per-time-step states computed by :func:`simulate`."""

    #: ``states[t][v]`` is the Python value of node ``v``'s route at time ``t``.
    states: list[dict[str, Any]]
    #: The first time step at which the state equals the previous one, if any.
    converged_at: int | None

    @property
    def rounds(self) -> int:
        """Number of update rounds simulated (states has ``rounds + 1`` entries)."""
        return len(self.states) - 1

    @property
    def converged(self) -> bool:
        return self.converged_at is not None

    def state_at(self, time: int) -> dict[str, Any]:
        """The network state at ``time`` (clamped to the last computed state).

        Clamping is sound for converged networks: once stable, the state never
        changes again.
        """
        if time < 0:
            raise RoutingError("time must be non-negative")
        index = min(time, len(self.states) - 1)
        if index < time and not self.converged:
            raise RoutingError(
                f"state at time {time} requested but simulation only ran "
                f"{self.rounds} rounds without converging"
            )
        return dict(self.states[index])

    def route_at(self, node: str, time: int) -> Any:
        """``σ(node)(time)`` as a Python value."""
        state = self.state_at(time)
        if node not in state:
            raise RoutingError(f"unknown node {node!r}")
        return state[node]

    def stable_state(self) -> dict[str, Any]:
        """The converged state; raises if the simulation did not converge."""
        if not self.converged:
            raise RoutingError("the simulation did not converge")
        return dict(self.states[-1])

    def as_table(self) -> list[tuple[int, dict[str, Any]]]:
        """(time, state) pairs — the layout of Figure 3 in the paper."""
        return list(enumerate(self.states))


def simulate(network: Network, max_rounds: int | None = None) -> SimulationTrace:
    """Run the synchronous semantics of equation (3)/(4) on a closed network.

    Raises :class:`RoutingError` if the network has free symbolic variables —
    open networks have no single concrete execution to simulate.
    """
    if not network.is_closed:
        raise RoutingError(
            "cannot simulate an open network; bind its symbolic variables first"
        )
    if max_rounds is None:
        # Any converging execution stabilises within |V| rounds for the
        # shortest-path-like algebras used here; leave generous headroom.
        max_rounds = 2 * network.topology.node_count + 4

    empty_model = Model({})
    shape = network.route_shape

    def concretize(value: Any) -> Any:
        return shape.eval(value, empty_model)

    symbolic_state = {node: network.initial_route(node) for node in network.topology.nodes}
    _require_concrete(symbolic_state)
    states = [{node: concretize(route) for node, route in symbolic_state.items()}]
    converged_at: int | None = None

    for round_index in range(1, max_rounds + 1):
        new_state: dict[str, Any] = {}
        for node in network.topology.nodes:
            neighbor_routes = {
                neighbor: symbolic_state[neighbor]
                for neighbor in network.topology.predecessors(node)
            }
            new_state[node] = network.updated_route(node, neighbor_routes)
        _require_concrete(new_state)
        states.append({node: concretize(route) for node, route in new_state.items()})
        if _states_equal(new_state, symbolic_state, network):
            converged_at = round_index
            symbolic_state = new_state
            break
        symbolic_state = new_state

    return SimulationTrace(states=states, converged_at=converged_at)


def stable_routes(network: Network, max_rounds: int | None = None) -> dict[str, Any]:
    """Convenience wrapper returning only the converged state."""
    return simulate(network, max_rounds=max_rounds).stable_state()


def _require_concrete(state: dict[str, Any]) -> None:
    for node, route in state.items():
        probe = getattr(route, "is_concrete", None)
        if probe is None or not probe():
            raise RoutingError(
                f"simulation produced a non-concrete route at node {node!r}; "
                "the network is not closed"
            )


def _states_equal(left: dict[str, Any], right: dict[str, Any], network: Network) -> bool:
    for node in network.topology.nodes:
        equal = values_equal(left[node], right[node])
        if not equal.is_concrete() or not equal.concrete_value():
            return False
    return True
