"""TP002/TP003/TP005/TP006: vacuity and contradiction detection, no SAT.

Two layers of checking, both purely syntactic over the folded term DAG:

* **Annotation probes** — applying an interface to a *fully symbolic* route
  and time goes through the smart constructors, so a trivially-true
  interface folds to the constant ``true`` (TP002: every inductive step is
  vacuous, the interface proves nothing about its node) and a
  trivially-false one folds to ``false`` (TP003: the initial condition can
  never hold).  A trivially-true interface is only *suspicious* when the
  node's property is non-trivial — the WAN benchmark deliberately leaves
  internal routers unconstrained with ``G(true)`` interfaces *and*
  properties, which is a coverage note (TP007), not a warning.

* **Condition folding + Boolean constraint propagation** — each condition is
  an ``assumptions ⟹ goal`` query.  Unit facts syntactically conjoined in
  the assumptions (``x``, ``¬x``, ``x = c``) are propagated into both sides
  with :func:`repro.smt.walker.substitute`, whose builder-backed rebuild
  re-folds constants; repeated to a fixpoint this is textbook BCP on the
  term DAG.  Assumptions that collapse to ``false`` make the condition
  vacuous (TP005); a goal that collapses to ``false`` under satisfiable-
  looking assumptions is unprovable (TP006) — the SAT run can only
  corroborate with a counterexample.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, diagnostic
from repro.analysis.passes import AnalysisPass, LintTarget, register_pass
from repro.errors import ReproError
from repro.smt.sorts import BOOL
from repro.smt.terms import FALSE, OP_AND, OP_EQ, OP_NOT, OP_VAR, TRUE, Term
from repro.smt.walker import substitute

#: Fixpoint bound for unit propagation rounds.  Each productive round
#: eliminates at least one variable, so real fixpoints arrive much earlier;
#: the bound only guards against pathological self-sustaining rewrites.
MAX_PROPAGATION_ROUNDS = 32


def conjuncts(term: Term) -> Iterator[Term]:
    """The flattened conjuncts of a (possibly nested) conjunction."""
    stack = [term]
    while stack:
        current = stack.pop()
        if current.op == OP_AND:
            stack.extend(current.args)
        else:
            yield current


def unit_assignments(assumptions: Term) -> dict[str, Term] | None:
    """Unit facts syntactically forced by ``assumptions``.

    Recognises conjuncts of the form ``x`` (boolean var), ``¬x``, and
    ``x = c`` / ``c = x`` for constant ``c``.  Returns ``None`` when two
    units contradict each other (e.g. ``x ∧ ¬x``) — the assumptions are
    unsatisfiable outright.
    """
    units: dict[str, Term] = {}

    def record(name: str, value: Term) -> bool:
        existing = units.get(name)
        if existing is not None and existing is not value:
            return False
        units[name] = value
        return True

    for conjunct in conjuncts(assumptions):
        if conjunct.op == OP_VAR and conjunct.sort == BOOL:
            if not record(conjunct.payload, TRUE):
                return None
        elif conjunct.op == OP_NOT and conjunct.args[0].op == OP_VAR:
            if not record(conjunct.args[0].payload, FALSE):
                return None
        elif conjunct.op == OP_EQ:
            left, right = conjunct.args
            if left.op == OP_VAR and right.is_const():
                if not record(left.payload, right):
                    return None
            elif right.op == OP_VAR and left.is_const():
                if not record(right.payload, left):
                    return None
    return units


def propagate(assumptions: Term, goal: Term) -> tuple[Term, Term]:
    """Constant folding + BCP to fixpoint over an ``assumptions ⟹ goal`` pair.

    Facts are only ever drawn from the assumptions and substituted into both
    sides; the rebuild runs through the smart constructors, so every
    substitution re-folds constants through the whole cone.  Sound for
    implication checking: under the assumptions, each unit's variable *is*
    its value.
    """
    for _ in range(MAX_PROPAGATION_ROUNDS):
        if assumptions.is_false():
            break
        units = unit_assignments(assumptions)
        if units is None:
            return FALSE, goal
        if not units:
            break
        new_assumptions = substitute(assumptions, units)
        new_goal = substitute(goal, units)
        if new_assumptions is assumptions and new_goal is goal:
            break
        assumptions, goal = new_assumptions, new_goal
    return assumptions, goal


@register_pass
class VacuityPass(AnalysisPass):
    """Flag trivially true/false interfaces and refuted/vacuous conditions."""

    name = "vacuity"

    def run(self, target: LintTarget) -> Iterator[Diagnostic]:
        # Annotation probes cover every node (they are shared, memoised
        # applications); the condition-level BCP below rebuilds full
        # verification conditions and therefore runs only on the deep set —
        # class representatives plus unhinted nodes (see
        # ``LintTarget.deep_nodes``); member divergence is the coverage
        # pass's TP008.
        deep = set(target.deep_nodes())
        for node in target.nodes:
            interface_value = target.interface_value(node)
            if interface_value is False:
                yield diagnostic(
                    "TP003",
                    f"the interface of {node!r} "
                    f"({target.annotated.interface(node).description}) rejects every "
                    "route at every time: its initial condition cannot hold and its "
                    "safety condition is vacuous",
                    node=node,
                )
                # The per-condition findings below would all be downstream
                # symptoms of this one root cause.
                continue
            if interface_value is True and target.property_value(node) is not True:
                yield diagnostic(
                    "TP002",
                    f"the interface of {node!r} "
                    f"({target.annotated.interface(node).description}) accepts every "
                    "route at every time, so induction through it is vacuous and the "
                    f"non-trivial property of {node!r} cannot follow from it",
                    node=node,
                )

            if node not in deep:
                continue
            try:
                conditions = target.conditions(node)
            except ReproError:
                continue  # reported as TP001 by the sort pass
            # BCP is a pure function of the (interned, immutable) term pair;
            # memoised per network so repeated lint runs skip the fixpoint.
            bcp = target.memo("bcp")
            for condition in conditions:
                key = (condition.assumptions.term.term_id, condition.goal.term.term_id)
                folded = bcp.get(key)
                if folded is None:
                    folded = propagate(condition.assumptions.term, condition.goal.term)
                    bcp[key] = folded
                assumptions, goal = folded
                if assumptions.is_false():
                    yield diagnostic(
                        "TP005",
                        f"the {condition.kind} condition of {node!r} has "
                        "contradictory assumptions: it holds vacuously and "
                        "verifies nothing",
                        node=node,
                        condition=condition.kind,
                    )
                elif goal.is_false():
                    yield diagnostic(
                        "TP006",
                        f"the {condition.kind} condition of {node!r} has a "
                        "constant-false goal under constraint propagation: the SAT "
                        "check can only fail",
                        node=node,
                        condition=condition.kind,
                    )
