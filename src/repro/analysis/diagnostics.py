"""Structured lint diagnostics: stable codes, severities, locations.

Every finding of the static analysis layer is a :class:`Diagnostic` with a
stable ``TP0xx`` code (see :data:`CODES` and ``docs/DIAGNOSTICS.md``), a
severity, a human-readable message and an optional location — a node and
condition kind for annotation findings, a term path for sort findings, a
config source line for policy-DSL findings.  Diagnostics are plain frozen
data so they serialise (``to_json``), sort deterministically, and travel
inside reports (``ModularReport.diagnostics``) and exceptions
(:class:`repro.errors.AnalysisError`) without dragging the pass machinery
along.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import AnalysisError

#: Diagnostic severities, most severe first.
SEVERITIES = ("error", "warning", "info")

#: The stable diagnostic codes: code -> (severity, one-line meaning).
#: Codes are append-only; ``docs/DIAGNOSTICS.md`` documents each with an
#: example and a fix.  A code's severity is fixed — callers branch on
#: severity, so a code that changed severity between releases would silently
#: change strict-mode behaviour.
CODES: dict[str, tuple[str, str]] = {
    "TP001": ("error", "ill-sorted or ill-formed term in a verification condition"),
    "TP002": ("warning", "interface is trivially true (vacuous induction)"),
    "TP003": ("error", "interface is trivially false (nothing satisfies it)"),
    "TP004": ("error", "interface asserts a route before it can arrive"),
    "TP005": ("warning", "condition assumptions are contradictory (vacuous condition)"),
    "TP006": ("error", "condition goal is constant false (unprovable)"),
    "TP007": ("info", "node uses the default always-true annotations"),
    "TP008": ("warning", "symmetry-class members have non-identical canonical conditions"),
    "TP009": ("warning", "unreachable policy term"),
    "TP010": ("warning", "unused community definition"),
    "TP011": ("warning", "unused prefix-list definition"),
    "TP012": ("warning", "name shadowed across configuration namespaces"),
}


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One static-analysis finding.

    Location fields are optional and orthogonal: annotation findings carry
    ``node`` (and usually ``condition``), sort findings additionally carry a
    ``term_path`` (root-to-offender operator path), config findings carry
    ``source``/``line``/``column`` from the policy DSL's
    :class:`~repro.config.ast.SourceLocation`.
    """

    code: str
    message: str
    #: Node the finding is about (annotation/condition findings).
    node: str | None = None
    #: Condition kind ("initial" | "inductive" | "safety") when specific.
    condition: str | None = None
    #: Operator path from the condition root to the offending subterm,
    #: e.g. ``"goal/and[1]/ite[0]"`` (sort findings).
    term_path: str | None = None
    #: Config-source context, e.g. ``"policy 'export-to-external'"``.
    source: str | None = None
    line: int | None = None
    column: int | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise AnalysisError(
                f"unknown diagnostic code {self.code!r}; known codes: {sorted(CODES)}"
            )

    @property
    def severity(self) -> str:
        """The code's fixed severity (one of :data:`SEVERITIES`)."""
        return CODES[self.code][0]

    @property
    def title(self) -> str:
        """The code's one-line meaning."""
        return CODES[self.code][1]

    def location(self) -> str:
        """A compact human rendering of whichever location fields are set."""
        parts: list[str] = []
        if self.node is not None:
            parts.append(self.node if self.condition is None else f"{self.node}/{self.condition}")
        if self.term_path is not None:
            parts.append(self.term_path)
        if self.source is not None:
            where = self.source
            if self.line is not None:
                where += f" (line {self.line}"
                where += f", column {self.column})" if self.column is not None else ")"
            parts.append(where)
        return " ".join(parts)

    def describe(self) -> str:
        """One line: ``TP004 error [core-0/inductive]: message``."""
        location = self.location()
        at = f" [{location}]" if location else ""
        return f"{self.code} {self.severity}{at}: {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "node": self.node,
            "condition": self.condition,
            "term_path": self.term_path,
            "source": self.source,
            "line": self.line,
            "column": self.column,
        }


def diagnostic(code: str, message: str, **location: object) -> Diagnostic:
    """Shorthand constructor used by the passes."""
    return Diagnostic(code=code, message=message, **location)  # type: ignore[arg-type]


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run: all diagnostics plus run metadata.

    ``clean`` means no error- or warning-severity findings — info-severity
    notes (e.g. TP007 coverage notes) do not dirty a report, because
    legitimately unconstrained nodes (the WAN benchmark's internal routers)
    carry deliberate ``always_true`` annotations.
    """

    diagnostics: tuple[Diagnostic, ...]
    #: Names of the passes that ran, in execution order.
    passes: tuple[str, ...] = ()
    #: Wall-clock seconds the passes took (term building only, no SAT).
    wall_time: float = 0.0
    #: The lint target's display name (benchmark name), if known.
    target: str | None = field(default=None, compare=False)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: str) -> tuple[Diagnostic, ...]:
        if severity not in SEVERITIES:
            raise AnalysisError(
                f"unknown severity {severity!r}; choose one of {SEVERITIES}"
            )
        return tuple(d for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.by_severity("error")

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.by_severity("warning")

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.by_severity("info")

    @property
    def clean(self) -> bool:
        return not self.errors and not self.warnings

    def codes(self) -> tuple[str, ...]:
        """The distinct codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        if code not in CODES:
            raise AnalysisError(f"unknown diagnostic code {code!r}")
        return tuple(d for d in self.diagnostics if d.code == code)

    def summary(self) -> str:
        name = f"{self.target}: " if self.target else ""
        if not self.diagnostics:
            return f"{name}lint clean ({len(self.passes)} passes, {self.wall_time * 1e3:.1f}ms)"
        counts = ", ".join(
            f"{len(self.by_severity(severity))} {severity}(s)"
            for severity in SEVERITIES
            if self.by_severity(severity)
        )
        return (
            f"{name}lint found {counts} "
            f"({len(self.passes)} passes, {self.wall_time * 1e3:.1f}ms)"
        )

    def describe(self) -> str:
        """The summary line plus one line per diagnostic."""
        lines = [self.summary()]
        lines.extend(f"  {diag.describe()}" for diag in self.diagnostics)
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        return {
            "target": self.target,
            "clean": self.clean,
            "passes": list(self.passes),
            "wall_time_s": self.wall_time,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "diagnostics": [diag.to_json() for diag in self.diagnostics],
        }

    def raise_for_findings(self, context: str = "") -> None:
        """Raise :class:`AnalysisError` unless the report is clean (strict mode)."""
        if self.clean:
            return
        offending = self.errors + self.warnings
        where = f" in {context}" if context else ""
        lines = [
            f"static analysis found {len(self.errors)} error(s) and "
            f"{len(self.warnings)} warning(s){where}:"
        ]
        lines.extend(f"  {diag.describe()}" for diag in offending)
        raise AnalysisError("\n".join(lines), diagnostics=offending)


def merge_lint_reports(reports: Iterable[LintReport], target: str | None = None) -> LintReport:
    """Concatenate several reports (e.g. network lint + config lint)."""
    reports = list(reports)
    passes: list[str] = []
    for report in reports:
        for name in report.passes:
            if name not in passes:
                passes.append(name)
    return LintReport(
        diagnostics=tuple(d for report in reports for d in report.diagnostics),
        passes=tuple(passes),
        wall_time=sum(report.wall_time for report in reports),
        target=target,
    )
