"""Pre-solve static analysis over annotated networks and policy configs.

The dominant Timepiece user failure mode is a *wrong annotation*: an
interface whose witness time is inconsistent with propagation distance, a
vacuously true/false interface, an inconsistent symmetry hint — mistakes
that otherwise surface only as expensive SAT counterexamples after
bit-blasting.  This package finds them in milliseconds, before any solver
work, by pure term construction and constant folding::

    from repro.analysis import lint_network

    report = lint_network(annotated)
    if not report.clean:
        print(report.describe())   # TP0xx-coded diagnostics

The same passes run inside a verification session
(``Session.run(lint="warn")`` attaches diagnostics to the report,
``lint="strict"`` raises :class:`~repro.errors.AnalysisError` before
dispatch), from the CLI (``timepiece-bench lint``), and in CI (the
self-lint smoke keeps every registry benchmark clean).  See
``docs/DIAGNOSTICS.md`` for the code reference.
"""

from repro.analysis.diagnostics import (
    CODES,
    SEVERITIES,
    Diagnostic,
    LintReport,
    diagnostic,
    merge_lint_reports,
)
from repro.analysis.passes import (
    PASS_REGISTRY,
    AnalysisPass,
    LintTarget,
    available_passes,
    default_passes,
    lint_benchmark,
    lint_network,
    register_pass,
    run_passes,
)

__all__ = [
    "CODES",
    "SEVERITIES",
    "Diagnostic",
    "LintReport",
    "diagnostic",
    "merge_lint_reports",
    "PASS_REGISTRY",
    "AnalysisPass",
    "LintTarget",
    "available_passes",
    "default_passes",
    "lint_benchmark",
    "lint_network",
    "register_pass",
    "run_passes",
]
