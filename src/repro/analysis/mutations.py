"""Seeded annotation/config mutations for lint self-tests.

The CI self-lint job proves two directions: every registry benchmark lints
*clean*, and lint actually *detects* the classic mistakes — which needs
networks with the mistakes planted.  These helpers plant exactly the three
documented mutations (see ``docs/DIAGNOSTICS.md``):

* :func:`lower_witness_time` — an interface asserting a route one step
  before it can arrive (TP004, the §3 annotation bug);
* :func:`make_interface_vacuous` — an ``always_true`` interface under a
  non-trivial property (TP002, vacuous induction);
* :func:`add_unused_community` — a community declaration nothing references
  (TP010).

Each mutation leaves the rest of the network untouched, so a full SAT run
on the mutated network corroborates the lint verdict (the first two fail,
the third still passes — it is hygiene, not correctness).
"""

from __future__ import annotations

from repro.analysis.distance import origin_distances
from repro.core.annotations import AnnotatedNetwork
from repro.core.temporal import always_true, finally_, globally
from repro.errors import AnalysisError


def _reannotate(
    annotated: AnnotatedNetwork, node: str, interface
) -> AnnotatedNetwork:
    """A copy of ``annotated`` with one node's interface replaced."""
    interfaces = {name: annotated.interface(name) for name in annotated.nodes}
    interfaces[node] = interface
    properties = {name: annotated.node_property(name) for name in annotated.nodes}
    return AnnotatedNetwork(
        annotated.network,
        interfaces,
        properties,
        minimum_time_width=annotated.minimum_time_width,
        symmetry_key=annotated.symmetry_key,
    )


def lower_witness_time(
    annotated: AnnotatedNetwork, node: str | None = None
) -> tuple[AnnotatedNetwork, str, int]:
    """Plant the §3 bug: demand a route one step before it can arrive.

    Picks ``node`` (default: the first node at distance >= 2 from every
    route origin, in selection order) and replaces its interface with
    ``F^{d-1}(G(has_route))`` where ``d`` is its origin distance — an
    interface that asserts a route at time ``d - 1``, one hop too early.
    Returns the mutated network, the node, and its distance.
    """
    distances = origin_distances(annotated.network)
    if distances is None:
        raise AnalysisError("cannot place a witness-time mutation: routes are not option-shaped")
    if node is None:
        for candidate in annotated.nodes:
            distance = distances[candidate]
            if distance is not None and distance >= 2:
                node = candidate
                break
        else:
            raise AnalysisError(
                "cannot place a witness-time mutation: no node lies at "
                "distance >= 2 from every route origin"
            )
    distance = distances[node]
    if distance is None or distance < 2:
        raise AnalysisError(
            f"cannot place a witness-time mutation at {node!r}: its origin "
            f"distance {distance!r} leaves no earlier time to demand a route at"
        )
    bad_interface = finally_(
        distance - 1,
        globally(lambda route: route.is_some, description="G(has route)"),
        description=f"F^{distance - 1}(G(has route)) [mutated: true distance {distance}]",
    )
    return _reannotate(annotated, node, bad_interface), node, distance


def make_interface_vacuous(
    annotated: AnnotatedNetwork, node: str | None = None
) -> tuple[AnnotatedNetwork, str]:
    """Plant a vacuously-true interface under a non-trivial property.

    Picks ``node`` (default: the first node in selection order whose
    property is non-trivial) and replaces its interface with ``G(true)`` —
    induction through it proves nothing, so the safety condition cannot
    hold unless the property is itself trivial.
    """
    if node is None:
        from repro.analysis.passes import LintTarget

        probe = LintTarget(annotated)
        for candidate in annotated.nodes:
            if probe.property_value(candidate) is not True:
                node = candidate
                break
        else:
            raise AnalysisError(
                "cannot place a vacuous-interface mutation: every node's "
                "property is already trivially true"
            )
    return _reannotate(annotated, node, always_true()), node


def add_unused_community(
    config_text: str, name: str = "LINT-UNUSED", value: str = "65535:9999"
) -> str:
    """Append a community declaration no policy references."""
    if f"community {name} " in config_text:
        raise AnalysisError(f"community {name!r} is already declared in this config")
    suffix = "" if config_text.endswith("\n") else "\n"
    return f"{config_text}{suffix}community {name} members {value};\n"
