"""The lint pass framework: targets, the pass registry, and the driver.

A :class:`LintTarget` wraps one annotated network (plus, optionally, the
resolved policy configuration it was compiled from) and memoises the
artifacts several passes share — each node's verification conditions, built
once with class-canonical naming, and the constant-folded value of each
node's interface and property.  Passes are tiny classes with a ``run``
method yielding :class:`~repro.analysis.diagnostics.Diagnostic` objects;
:func:`run_passes` executes a pass list over a target and assembles a
:class:`~repro.analysis.diagnostics.LintReport`.

Everything here is *pre-solver*: passes build and fold terms through the
smart constructors but never bit-blast, Tseitin-encode or call SAT — the
zero-solver-activity invariant is enforced by
``tests/analysis/test_lint_integration.py``.
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator
from weakref import WeakKeyDictionary

from repro.analysis.diagnostics import Diagnostic, LintReport
from repro.core.annotations import AnnotatedNetwork
from repro.core.conditions import VerificationCondition, node_conditions
from repro.errors import AnalysisError, ReproError
from repro.symbolic import SymBV, exact_names

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config.semantics import ResolvedConfig

#: Name prefix of the lint layer's probe variables.  Distinct from the
#: verification conditions' ``vc$`` prefix so probe terms can never alias a
#: condition's query variables.
LINT_PREFIX = "lint$"

#: Per-network memo shared by every :class:`LintTarget` over the same
#: :class:`AnnotatedNetwork` object.  Lint runs repeatedly on the same
#: network — every ``Session.run(lint=...)``, every sweep point, every CI
#: round — and everything a target computes (conditions, probe
#: applications, BCP results) is a pure function of the network built with
#: exact names, so re-deriving it per run would only re-execute the route
#: algebra to arrive at the identical hash-consed terms.  Weakly keyed, so
#: dropping a network drops its memo.
_TARGET_MEMO: "WeakKeyDictionary[AnnotatedNetwork, dict[str, dict]]" = WeakKeyDictionary()


class LintTarget:
    """One lint subject: an annotated network and optional resolved config.

    The target memoises per-node condition builds (including their
    failures, so a broken annotation is built — and reported — once, not
    once per pass) and the constant-folded truth value of each node's
    interface and property.
    """

    def __init__(
        self,
        annotated: AnnotatedNetwork,
        config: "ResolvedConfig | None" = None,
        name: str | None = None,
    ) -> None:
        self.annotated = annotated
        self.config = config
        self.name = name
        try:
            shared = _TARGET_MEMO.setdefault(annotated, {})
        except TypeError:  # un-weakref-able stand-ins (tests): private memo
            shared = {}
        self._shared = shared
        self._conditions: dict[str, tuple[str, object]] = self.memo("conditions")
        self._annotation_terms: dict[tuple[str, str], tuple[str, object]] = self.memo(
            "annotation_terms"
        )
        self._interface_values: dict[str, bool | None] = self.memo("interface_values")
        self._property_values: dict[str, bool | None] = self.memo("property_values")
        self._deep_nodes: tuple[str, ...] | None = None
        self._probe: tuple[object, SymBV] | None = None

    def memo(self, name: str) -> dict:
        """A named per-network memo dict shared across targets (see above).

        Passes may claim their own memo spaces (e.g. ``memo("demand")``)
        for results that are pure functions of the network's terms.
        """
        return self._shared.setdefault(name, {})

    @property
    def nodes(self) -> tuple[str, ...]:
        return self.annotated.nodes

    def deep_nodes(self) -> tuple[str, ...]:
        """The nodes whose full conditions the deep passes build and inspect.

        Without a symmetry hint: every node.  With one: one representative
        per hinted class (the first member in selection order) plus every
        unhinted node.  The hint's identity claim is audited separately —
        and cheaply — by the coverage pass, which compares every member's
        canonical annotation applications; rebuilding each member's full
        conditions would make lint as expensive as the verification it is
        meant to precede.
        """
        if self._deep_nodes is not None:
            return self._deep_nodes
        key_of = self.annotated.symmetry_key
        if key_of is None:
            self._deep_nodes = self.nodes
            return self._deep_nodes
        chosen: list[str] = []
        seen: set[object] = set()
        for node in self.nodes:
            key = key_of(node)
            if key is None:
                chosen.append(node)
            elif key not in seen:
                seen.add(key)
                chosen.append(node)
        self._deep_nodes = tuple(chosen)
        return self._deep_nodes

    def conditions(self, node: str) -> list[VerificationCondition]:
        """The node's three conditions, built with class-canonical naming.

        Raises the original :class:`ReproError` when the build fails; the
        outcome (value or error) is memoised either way.
        """
        cached = self._conditions.get(node)
        if cached is None:
            try:
                cached = ("ok", node_conditions(self.annotated, node, naming="class"))
            except ReproError as error:
                cached = ("error", error)
            self._conditions[node] = cached
        status, value = cached
        if status == "error":
            raise value  # type: ignore[misc]
        return value  # type: ignore[return-value]

    def condition_build_error(self, node: str) -> ReproError | None:
        """The error the node's condition build raised, if any."""
        try:
            self.conditions(node)
        except ReproError as error:
            return error
        return None

    def annotation_term(self, node: str, kind: str):
        """``A(node)``/``P(node)`` applied to the shared canonical probe.

        Every node is probed with the *same* exact-named route and time
        variables, so two nodes' applications are term-identical
        (hash-consing) exactly when their annotations agree on a fully
        symbolic input — the cheap per-member identity check of the
        coverage pass.  Raises the original :class:`ReproError` when the
        application fails; the outcome is memoised either way.
        """
        key = (node, kind)
        cached = self._annotation_terms.get(key)
        if cached is None:
            annotation = (
                self.annotated.interface(node)
                if kind == "interface"
                else self.annotated.node_property(node)
            )
            try:
                cached = ("ok", annotation(*self.probe()).term)
            except ReproError as error:
                cached = ("error", error)
            self._annotation_terms[key] = cached
        status, value = cached
        if status == "error":
            raise value  # type: ignore[misc]
        return value

    def _annotation_value(
        self, node: str, kind: str, cache: dict[str, bool | None]
    ) -> bool | None:
        """Constant-fold an annotation at a fully symbolic route and time.

        Returns ``True``/``False`` when the smart constructors fold the
        application to a constant — i.e. the annotation is trivially
        true/false for *every* route and time — and ``None`` otherwise
        (including when applying the annotation raises; the sort pass
        reports that as TP001).
        """
        if node in cache:
            return cache[node]
        value: bool | None = None
        try:
            term = self.annotation_term(node, kind)
            if term.is_bool_const():
                value = term.bool_value()
        except ReproError:
            value = None
        cache[node] = value
        return value

    def probe(self):
        """The shared fully-symbolic (route, time) probe, built once.

        Exact-named, so re-creating a target for the same network yields the
        identical hash-consed variables; shared across all annotation
        applications of this target, so probing 2·n annotations builds the
        symbolic route value once, not 2·n times.
        """
        if self._probe is None:
            with exact_names():
                route = self.annotated.network.route_shape.fresh(f"{LINT_PREFIX}route")
                time = SymBV.fresh(self.annotated.time_width(), f"{LINT_PREFIX}time")
            self._probe = (route, time)
        return self._probe

    def interface_value(self, node: str) -> bool | None:
        """``True``/``False`` when ``A(node)`` folds to a constant, else ``None``."""
        return self._annotation_value(node, "interface", self._interface_values)

    def property_value(self, node: str) -> bool | None:
        """``True``/``False`` when ``P(node)`` folds to a constant, else ``None``."""
        return self._annotation_value(node, "property", self._property_values)


class AnalysisPass:
    """Base class of lint passes.  Subclasses set ``name`` and yield diagnostics."""

    name: ClassVar[str] = ""

    def run(self, target: LintTarget) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


#: Registry of pass classes by name, in registration (= default execution)
#: order.  New passes register here and are immediately part of
#: ``lint_network``, the CLI ``lint`` subcommand and the CI self-lint.
PASS_REGISTRY: dict[str, type[AnalysisPass]] = {}


def register_pass(cls: type[AnalysisPass]) -> type[AnalysisPass]:
    """Class decorator: register a pass under its ``name``."""
    if not cls.name:
        raise AnalysisError(f"pass class {cls.__name__} must set a registry name")
    if cls.name in PASS_REGISTRY:
        raise AnalysisError(
            f"pass {cls.name!r} is already registered (by {PASS_REGISTRY[cls.name].__name__})"
        )
    PASS_REGISTRY[cls.name] = cls
    return cls


def available_passes() -> tuple[str, ...]:
    """Registered pass names in default execution order."""
    _ensure_builtin_passes()
    return tuple(PASS_REGISTRY)


def default_passes() -> list[AnalysisPass]:
    """Fresh instances of every registered pass, in registration order."""
    _ensure_builtin_passes()
    return [cls() for cls in PASS_REGISTRY.values()]


def _ensure_builtin_passes() -> None:
    # The pass modules self-register on import; importing them lazily here
    # (rather than at module import) keeps passes.py free of cycles.
    from repro.analysis import configlint, coverage, distance, sortcheck, vacuity  # noqa: F401


def run_passes(
    target: LintTarget, passes: Iterable[AnalysisPass] | None = None
) -> LintReport:
    """Execute ``passes`` (default: all registered) over ``target``."""
    chosen = list(passes) if passes is not None else default_passes()
    started = _time.perf_counter()
    diagnostics: list[Diagnostic] = []
    for lint_pass in chosen:
        diagnostics.extend(lint_pass.run(target))
    return LintReport(
        diagnostics=tuple(diagnostics),
        passes=tuple(lint_pass.name for lint_pass in chosen),
        wall_time=_time.perf_counter() - started,
        target=target.name,
    )


def lint_network(
    annotated: AnnotatedNetwork,
    config: "ResolvedConfig | None" = None,
    name: str | None = None,
    passes: Iterable[AnalysisPass] | None = None,
) -> LintReport:
    """Lint one annotated network (and, when given, its resolved config)."""
    return run_passes(LintTarget(annotated, config=config, name=name), passes=passes)


def lint_benchmark(built: object, passes: Iterable[AnalysisPass] | None = None) -> LintReport:
    """Lint a registry :class:`~repro.networks.registry.BuiltBenchmark`.

    Config-backed benchmarks (the WAN family) expose their resolved
    configuration through ``built.raw.compiled.resolved``; it is picked up
    so the config-DSL pass runs on exactly what the compiler consumed.
    """
    annotated = getattr(built, "annotated", None)
    if not isinstance(annotated, AnnotatedNetwork):
        raise AnalysisError(
            f"cannot lint {type(built).__name__}: no AnnotatedNetwork under .annotated"
        )
    compiled = getattr(getattr(built, "raw", None), "compiled", None)
    config = getattr(compiled, "resolved", None)
    return lint_network(
        annotated, config=config, name=getattr(built, "name", None), passes=passes
    )
