"""TP004: witness-time vs topology-distance consistency.

The classic Timepiece annotation bug (§3 of the paper): an interface that
asserts "this node has a route by time τ" where τ is *smaller* than the
node's hop distance from every route origin.  Routes propagate one hop per
step, so no execution can satisfy the interface — the modular proof is
doomed before the first SAT call, it just takes a bit-blasted counterexample
to say so.

The check is deliberately conservative (zero false positives):

* Origins are nodes whose initial route is concretely present; nodes whose
  initial presence is *symbolic* (WAN internals, all-pairs fattrees, the
  hijacker) are treated as possible origins at distance 0, which can only
  shrink distances and therefore only suppress findings.
* BFS distance along propagation edges is a lower bound on arrival time
  even under filtering transfers (filters can delay or drop a route, never
  teleport it).
* An interface is only flagged when applying it to the concrete *absent*
  route at a concrete time ``t`` below the node's distance folds to the
  constant ``false`` — a purely syntactic proof that the interface demands
  a route the network provably cannot have delivered yet.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, diagnostic
from repro.analysis.passes import AnalysisPass, LintTarget, register_pass
from repro.errors import ReproError
from repro.routing.algebra import Network
from repro.symbolic import SymBV
from repro.symbolic.shapes import OptionShape


def origin_distances(network: Network) -> dict[str, int | None] | None:
    """Hop distance from the nearest (possible) route origin to every node.

    Returns ``None`` when the network's routes are not option-shaped or an
    initial route cannot be inspected — the pass then abstains entirely.
    Per node: ``0`` for (possible) origins, the BFS distance along
    propagation edges otherwise, and ``None`` for nodes no origin reaches.
    """
    if not isinstance(network.route_shape, OptionShape):
        return None
    topology = network.topology
    sources: list[str] = []
    for node in topology.nodes:
        try:
            route = network.initial_route(node)
            presence = route.is_some.term
        except (ReproError, AttributeError):
            return None
        if not presence.is_false():
            # Concretely present, or symbolically possibly-present: both are
            # treated as origins so distances stay lower bounds.
            sources.append(node)
    distances: dict[str, int | None] = {node: None for node in topology.nodes}
    queue: deque[str] = deque()
    for source in sources:
        distances[source] = 0
        queue.append(source)
    while queue:
        node = queue.popleft()
        next_distance = distances[node] + 1  # type: ignore[operator]
        for successor in topology.successors(node):
            if distances[successor] is None:
                distances[successor] = next_distance
                queue.append(successor)
    return distances


def earliest_route_demand(
    target: LintTarget, node: str, probe_limit: int, absent: object | None = None
) -> int | None:
    """The smallest ``t < probe_limit`` at which ``A(node)`` provably rejects ∞.

    Probes the interface at the concrete absent route and concrete times;
    only a fold to constant ``false`` counts, so symbolic-witness interfaces
    (all-pairs benchmarks) never trigger.  ``absent`` lets a caller share
    one pre-built absent-route value across many probes.
    """
    interface = target.annotated.interface(node)
    if absent is None:
        absent = target.annotated.network.route_shape.none()
    width = target.annotated.time_width()
    for time_value in range(probe_limit):
        try:
            term = interface(absent, SymBV.constant(time_value, width)).term
        except ReproError:
            return None  # reported as TP001 by the sort pass
        if term.is_false():
            return time_value
    return None


@register_pass
class DistancePass(AnalysisPass):
    """Flag interfaces demanding a route before any origin can deliver one."""

    name = "distance"

    def run(self, target: LintTarget) -> Iterator[Diagnostic]:
        distances = origin_distances(target.annotated.network)
        if distances is None:
            return
        absent = target.annotated.network.route_shape.none()
        # Nodes whose interfaces are term-identical on the shared canonical
        # probe answer every concrete probe identically too, so their demand
        # results are shared — on a symmetric fattree this collapses the
        # probing to one node per interface class.  Memoised per network, so
        # repeated lint runs skip the probing entirely.
        demand_cache: dict[tuple[int, int], int | None] = target.memo("demand")
        for node in target.nodes:
            distance = distances[node]
            if distance == 0:
                continue  # (possible) origins satisfy any demand at time 0
            if target.interface_value(node) is False:
                continue  # root cause reported as TP003 by the vacuity pass
            max_witness = target.annotated.interface(node).max_witness
            # Beyond max_witness every temporal operator is constant, so a
            # rejection at max_witness is a rejection forever; probing past
            # it adds nothing.
            probe_limit = (
                max_witness + 1 if distance is None else min(distance, max_witness + 1)
            )
            cache_key = None
            try:
                signature = target.annotation_term(node, "interface").term_id
                cache_key = (signature, probe_limit)
            except ReproError:
                pass
            if cache_key is not None and cache_key in demand_cache:
                demanded_at = demand_cache[cache_key]
            else:
                demanded_at = earliest_route_demand(target, node, probe_limit, absent=absent)
                if cache_key is not None:
                    demand_cache[cache_key] = demanded_at
            if demanded_at is None:
                continue
            interface = target.annotated.interface(node)
            if distance is None:
                yield diagnostic(
                    "TP004",
                    f"the interface of {node!r} ({interface.description}) requires "
                    f"a route at time {demanded_at}, but no route origin reaches "
                    f"{node!r} at all: the interface is unsatisfiable in every "
                    "execution",
                    node=node,
                )
            else:
                yield diagnostic(
                    "TP004",
                    f"the interface of {node!r} ({interface.description}) requires "
                    f"a route at time {demanded_at}, but the nearest route origin "
                    f"is {distance} hops away — no route can arrive before time "
                    f"{distance}",
                    node=node,
                )
