"""TP001: the well-sortedness walker over verification-condition cones.

Two failure modes surface here.  *Build failures*: applying a user
annotation can raise ``SortError``/``SymbolicError``/``VerificationError``
deep inside the term builder — this pass converts the exception into one
diagnostic naming the node instead of a ten-frame traceback.  *Ill-sorted
terms*: the smart constructors make these unconstructible through the public
API, but terms also arrive via pickling (parallel workers) and the low-level
``make_term`` escape hatch, so each condition's cone is re-checked
operator-by-operator and violations are reported with a precise
root-to-offender path (e.g. ``assumptions/and[1]/ite[0]``).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, diagnostic
from repro.analysis.passes import AnalysisPass, LintTarget, register_pass
from repro.errors import ReproError
from repro.smt.sorts import BOOL, BitVecSort
from repro.smt.terms import (
    OP_AND,
    OP_BVADD,
    OP_BVCONST,
    OP_BVSUB,
    OP_BVULE,
    OP_BVULT,
    OP_EQ,
    OP_FALSE,
    OP_ITE,
    OP_NOT,
    OP_OR,
    OP_TRUE,
    OP_VAR,
    Term,
)

#: Expected argument counts per operator (``None``: any arity >= 1).
_ARITIES: dict[str, int | None] = {
    OP_TRUE: 0,
    OP_FALSE: 0,
    OP_VAR: 0,
    OP_BVCONST: 0,
    OP_NOT: 1,
    OP_AND: None,
    OP_OR: None,
    OP_ITE: 3,
    OP_EQ: 2,
    OP_BVADD: 2,
    OP_BVSUB: 2,
    OP_BVULT: 2,
    OP_BVULE: 2,
}


#: Term ids whose entire cones have been proven well-sorted.  Terms are
#: interned process-wide with monotonically increasing ids (never reused),
#: and are immutable, so a cone cleared once is clear forever; the set only
#: holds ints for terms the intern table keeps alive anyway.  Ill-sorted
#: terms — and any term containing one — are never added, so they are
#: re-reported on every lint run.
_CLEAN_CONES: set[int] = set()


def check_term_sorts(root: Term, visited: set[int] | None = None) -> list[tuple[Term, str]]:
    """Every ill-sorted subterm of ``root`` with a one-line explanation.

    A sound re-statement of the builder's sort rules over raw terms; an
    empty list means the whole cone is well-sorted.  ``visited`` is a set of
    term ids whose entire cones are already known clean: it prunes the walk
    and is extended with every newly cleared cone, so a caller sharing one
    set across many (heavily shared) roots walks each unique clean term
    once.
    """
    problems: list[tuple[Term, str]] = []
    if visited is not None and root.term_id in visited:
        return problems
    clean: dict[int, bool] = {}

    def is_clean(term: Term) -> bool:
        if visited is not None and term.term_id in visited:
            return True
        return clean.get(term.term_id, False)

    # Post-order DFS over first-visit edges; terms form a DAG, so when a
    # parent's post-visit runs every child — including children shared with
    # an earlier subtree — has completed its own post-visit.
    stack: list[tuple[Term, bool]] = [(root, False)]
    while stack:
        term, expanded = stack.pop()
        if expanded:
            message = _check_one(term)
            if message is not None:
                problems.append((term, message))
            cone_clean = message is None and all(is_clean(arg) for arg in term.args)
            clean[term.term_id] = cone_clean
            if cone_clean and visited is not None:
                visited.add(term.term_id)
            continue
        if is_clean(term) or term.term_id in clean:
            continue
        # Reserve the slot so sharing within this walk expands the term once.
        clean.setdefault(term.term_id, False)
        stack.append((term, True))
        for arg in term.args:
            stack.append((arg, False))
    return problems


def _check_one(term: Term) -> str | None:
    arity = _ARITIES.get(term.op)
    if term.op not in _ARITIES:
        return f"unknown operator {term.op!r}"
    if arity is None:
        if not term.args:
            return f"{term.op} needs at least one argument"
    elif len(term.args) != arity:
        return f"{term.op} expects {arity} argument(s), got {len(term.args)}"

    if term.op in (OP_TRUE, OP_FALSE):
        return None if term.sort == BOOL else f"{term.op} must be BOOL-sorted, got {term.sort!r}"
    if term.op == OP_VAR:
        if not isinstance(term.payload, str) or not term.payload:
            return f"variable payload must be a non-empty name, got {term.payload!r}"
        return None
    if term.op == OP_BVCONST:
        if not isinstance(term.sort, BitVecSort):
            return f"bvconst must be bitvector-sorted, got {term.sort!r}"
        if not isinstance(term.payload, int) or not 0 <= term.payload <= term.sort.max_value:
            return (
                f"bvconst value {term.payload!r} out of range for {term.sort!r} "
                f"(0..{term.sort.max_value})"
            )
        return None
    if term.op in (OP_NOT, OP_AND, OP_OR):
        if term.sort != BOOL:
            return f"{term.op} must be BOOL-sorted, got {term.sort!r}"
        for index, arg in enumerate(term.args):
            if arg.sort != BOOL:
                return f"argument {index} of {term.op} has sort {arg.sort!r}, expected BOOL"
        return None
    if term.op == OP_ITE:
        condition, then_branch, else_branch = term.args
        if condition.sort != BOOL:
            return f"ite condition has sort {condition.sort!r}, expected BOOL"
        if then_branch.sort != else_branch.sort:
            return (
                f"ite branches disagree: {then_branch.sort!r} vs {else_branch.sort!r}"
            )
        if term.sort != then_branch.sort:
            return f"ite is {term.sort!r}-sorted but its branches are {then_branch.sort!r}"
        return None
    if term.op == OP_EQ:
        left, right = term.args
        if left.sort != right.sort:
            return f"eq compares {left.sort!r} with {right.sort!r}"
        if term.sort != BOOL:
            return f"eq must be BOOL-sorted, got {term.sort!r}"
        return None
    if term.op in (OP_BVADD, OP_BVSUB):
        left, right = term.args
        if not isinstance(term.sort, BitVecSort):
            return f"{term.op} must be bitvector-sorted, got {term.sort!r}"
        if left.sort != term.sort or right.sort != term.sort:
            return (
                f"{term.op} of {term.sort!r} has arguments sorted "
                f"{left.sort!r} and {right.sort!r}"
            )
        return None
    # OP_BVULT / OP_BVULE
    left, right = term.args
    if not isinstance(left.sort, BitVecSort) or left.sort != right.sort:
        return f"{term.op} compares {left.sort!r} with {right.sort!r}"
    if term.sort != BOOL:
        return f"{term.op} must be BOOL-sorted, got {term.sort!r}"
    return None


def term_path(root: Term, target: Term) -> str | None:
    """The first root-to-``target`` operator path, e.g. ``and[1]/ite[0]``.

    Terms form a DAG, so several paths may reach ``target``; the first in a
    deterministic depth-first order is reported — enough to locate the
    offender, without enumerating exponentially many routes.
    """
    if root is target:
        return ""
    # (term, path-so-far); DFS over first-visit edges only.
    stack: list[tuple[Term, str]] = [(root, "")]
    seen: set[int] = set()
    while stack:
        term, path = stack.pop()
        if term.term_id in seen:
            continue
        seen.add(term.term_id)
        for index, arg in enumerate(term.args):
            step = f"{path}/{term.op}[{index}]" if path else f"{term.op}[{index}]"
            if arg is target:
                return step
            stack.append((arg, step))
    return None


@register_pass
class SortCheckPass(AnalysisPass):
    """Re-check every condition cone's sorts; turn build errors into TP001."""

    name = "sorts"

    def run(self, target: LintTarget) -> Iterator[Diagnostic]:
        # Every node's annotation applications are checked (cheap — the
        # probes are shared with the coverage pass); broken annotations on
        # symmetry-class members surface here even though only the class
        # representatives' full condition cones are rebuilt below.
        for node in target.nodes:
            for kind in ("interface", "property"):
                try:
                    target.annotation_term(node, kind)
                except ReproError as error:
                    yield diagnostic(
                        "TP001",
                        f"applying the {kind} of {node!r} to a symbolic route "
                        f"and time failed: {type(error).__name__}: {error}",
                        node=node,
                    )

        # The process-wide clean-cone set: conditions share most of their
        # DAG (canonically-named classes share *all* of it, and repeated
        # lint runs re-derive the identical interned terms), so each unique
        # term is sort-checked once per process.  Sound because terms are
        # immutable and ids are never reused; ill-sorted cones are never
        # added, so findings recur on every run.
        visited = _CLEAN_CONES
        for node in target.deep_nodes():
            try:
                conditions = target.conditions(node)
            except ReproError as error:
                yield diagnostic(
                    "TP001",
                    f"building the verification conditions of {node!r} failed: "
                    f"{type(error).__name__}: {error}",
                    node=node,
                )
                continue
            for condition in conditions:
                for root_name, root in (
                    ("assumptions", condition.assumptions.term),
                    ("goal", condition.goal.term),
                ):
                    for term, message in check_term_sorts(root, visited):
                        path = term_path(root, term)
                        located = root_name if not path else f"{root_name}/{path}"
                        yield diagnostic(
                            "TP001",
                            message,
                            node=node,
                            condition=condition.kind,
                            term_path=located,
                        )
