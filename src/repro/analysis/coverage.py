"""TP007/TP008: annotation coverage notes and symmetry-hint hygiene.

TP007 is an *info* note: a node whose interface **and** property are both
trivially true is completely unconstrained.  That is often deliberate —
benchmark externals and the WAN's internal routers are annotated
``G(true)``/``G(true)`` on purpose — so the note exists for coverage
audits, not to dirty a report.

TP008 is the spot-check blind-spot warning: when a builder attaches a
``symmetry_key`` hint, the symmetry-aware checker verifies *one member* per
class and propagates its verdicts to the rest.  If two nodes share a hint
key but their canonical interfaces/properties are not term-identical, the
propagated verdicts silently cover annotations that were never discharged.
The full checker would reject such a partition at run time
(:func:`repro.core.symmetry.partition_nodes` cross-checks in-degrees); this
pass reports the precise mismatch before any run, by applying every
member's interface and property to the shared canonical probe and comparing
the resulting terms (hash-consing makes that an identity check, a few
microseconds per member — the deep passes rebuild full conditions only for
class representatives, see ``LintTarget.deep_nodes``).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, diagnostic
from repro.analysis.passes import AnalysisPass, LintTarget, register_pass
from repro.errors import ReproError


def _annotation_signature(target: LintTarget, node: str) -> tuple | None:
    """The node's canonical interface/property application terms.

    ``None`` when either application raises (reported as TP001 by the sort
    pass, and never equal to any healthy signature so the mismatch still
    surfaces).
    """
    try:
        return (
            target.annotation_term(node, "interface").term_id,
            target.annotation_term(node, "property").term_id,
        )
    except ReproError:
        return None


@register_pass
class CoveragePass(AnalysisPass):
    """Note unconstrained nodes; flag inconsistent symmetry-hint classes."""

    name = "coverage"

    def run(self, target: LintTarget) -> Iterator[Diagnostic]:
        for node in target.nodes:
            if target.interface_value(node) is True and target.property_value(node) is True:
                yield diagnostic(
                    "TP007",
                    f"node {node!r} uses trivially-true interface and property "
                    "annotations: nothing is verified at this node",
                    node=node,
                )

        key_of = target.annotated.symmetry_key
        if key_of is None:
            return
        groups: dict[object, list[str]] = {}
        for node in target.nodes:
            key = key_of(node)
            if key is not None:
                groups.setdefault(key, []).append(node)
        for key, members in groups.items():
            if len(members) < 2:
                continue
            representative = members[0]
            expected = _annotation_signature(target, representative)
            mismatched = sorted(
                member
                for member in members[1:]
                if _annotation_signature(target, member) != expected
            )
            if mismatched:
                yield diagnostic(
                    "TP008",
                    f"symmetry class {key!r} is inconsistent: member(s) "
                    f"{mismatched} have canonical interface/property "
                    f"applications that differ from representative "
                    f"{representative!r}; spot-check verification would "
                    "propagate verdicts these members never earned",
                    node=representative,
                )
