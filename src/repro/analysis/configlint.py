"""TP009–TP012: the config-DSL lint pass.

The finding computation itself lives next to the name-resolution tables it
walks (:func:`repro.config.semantics.lint`); this pass adapts those
:class:`~repro.config.semantics.ConfigFinding` records into coded
diagnostics so config hygiene flows through the same report/strict-mode
machinery as annotation lint.  Targets without a resolved configuration
(every non-config benchmark) simply skip the pass.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, diagnostic
from repro.analysis.passes import AnalysisPass, LintTarget, register_pass

#: ConfigFinding.kind -> diagnostic code.
FINDING_CODES = {
    "unreachable-term": "TP009",
    "unused-community": "TP010",
    "unused-prefix-list": "TP011",
    "shadowed-name": "TP012",
}


@register_pass
class ConfigLintPass(AnalysisPass):
    """Adapt :func:`repro.config.semantics.lint` findings to diagnostics."""

    name = "config"

    def run(self, target: LintTarget) -> Iterator[Diagnostic]:
        if target.config is None:
            return
        from repro.config.semantics import lint

        for finding in lint(target.config):
            code = FINDING_CODES.get(finding.kind)
            if code is None:
                # A finding kind added to semantics.lint without a code here
                # must not vanish silently; TP012's severity (warning) is the
                # conservative default for unknown hygiene findings.
                code = "TP012"
            yield diagnostic(
                code,
                finding.message,
                source=finding.source,
                line=finding.location.line if finding.location else None,
                column=finding.location.column if finding.location else None,
            )
