"""Property-based tests (hypothesis) for the symbolic layer and temporal operators.

These check algebraic laws that the verification engine silently relies on:
if-then-else selection, structural equality, option/record/set laws, and the
semantics of the temporal operators at arbitrary concrete times.
"""

from hypothesis import given, settings, strategies as st

from repro import core, smt
from repro.symbolic import (
    BitVecShape,
    BoolShape,
    OptionShape,
    SetShape,
    SymBV,
    SymBool,
    ite_value,
    record,
    values_equal,
)

WIDTH = 8
ROUTE = record(
    "PropRoute",
    lp=BitVecShape(WIDTH),
    length=BitVecShape(WIDTH),
    tag=BoolShape(),
    tags=SetShape(("red", "blue")),
)
OPTION = OptionShape(ROUTE)


def route_values():
    return st.fixed_dictionaries(
        {
            "lp": st.integers(min_value=0, max_value=255),
            "length": st.integers(min_value=0, max_value=255),
            "tag": st.booleans(),
            "tags": st.sets(st.sampled_from(["red", "blue"])).map(tuple),
        }
    )


def option_values():
    return st.one_of(st.none(), route_values())


def lift(value):
    return OPTION.constant(value)


def normalise(value):
    if value is None:
        return None
    return dict(value, tags=frozenset(value["tags"]))


class TestGenericOperations:
    @given(st.booleans(), option_values(), option_values())
    @settings(max_examples=60, deadline=None)
    def test_ite_selects_the_right_branch(self, condition, then_value, else_value):
        chosen = ite_value(SymBool.constant(condition), lift(then_value), lift(else_value))
        expected = then_value if condition else else_value
        assert OPTION.eval(chosen, smt.Model({})) == normalise(expected)

    @given(option_values(), option_values())
    @settings(max_examples=60, deadline=None)
    def test_values_equal_matches_python_equality(self, left, right):
        outcome = values_equal(lift(left), lift(right)).concrete_value()
        assert outcome == (normalise(left) == normalise(right))

    @given(option_values())
    @settings(max_examples=30, deadline=None)
    def test_equality_is_reflexive(self, value):
        assert values_equal(lift(value), lift(value)).concrete_value() is True

    @given(route_values(), st.integers(min_value=0, max_value=255))
    @settings(max_examples=40, deadline=None)
    def test_with_fields_only_changes_the_named_field(self, value, new_lp):
        original = ROUTE.constant(value)
        updated = original.with_fields(lp=new_lp)
        assert updated.lp.concrete_value() == new_lp
        assert updated.length.concrete_value() == value["length"]
        assert updated.tag.concrete_value() == value["tag"]

    @given(st.sets(st.sampled_from(["red", "blue"])), st.sets(st.sampled_from(["red", "blue"])))
    @settings(max_examples=40, deadline=None)
    def test_set_operations_match_python_sets(self, left, right):
        lhs = SetShape(("red", "blue")).constant(tuple(left))
        rhs = SetShape(("red", "blue")).constant(tuple(right))
        assert lhs.union(rhs).concrete_value() == frozenset(left | right)
        assert lhs.intersection(rhs).concrete_value() == frozenset(left & right)
        assert lhs.difference(rhs).concrete_value() == frozenset(left - right)
        assert lhs.is_subset_of(rhs).concrete_value() == (left <= right)


class TestBitvectorLaws:
    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    @settings(max_examples=60, deadline=None)
    def test_saturating_add_never_exceeds_max_and_never_wraps(self, left, right):
        result = SymBV.constant(left, WIDTH).saturating_add(right).concrete_value()
        assert result == min(left + right, 255)

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    @settings(max_examples=60, deadline=None)
    def test_comparisons_match_python(self, left, right):
        a, b = SymBV.constant(left, WIDTH), SymBV.constant(right, WIDTH)
        assert (a < b).concrete_value() == (left < right)
        assert (a <= b).concrete_value() == (left <= right)
        assert (a > b).concrete_value() == (left > right)
        assert (a >= b).concrete_value() == (left >= right)
        assert (a == b).concrete_value() == (left == right)

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    @settings(max_examples=40, deadline=None)
    def test_min_max_agree_with_python(self, left, right):
        a, b = SymBV.constant(left, WIDTH), SymBV.constant(right, WIDTH)
        assert a.min(b).concrete_value() == min(left, right)
        assert a.max(b).concrete_value() == max(left, right)


class TestTemporalSemantics:
    """The paper's Figure 12 definitions, checked pointwise at concrete times."""

    @given(
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=15),
        option_values(),
    )
    @settings(max_examples=80, deadline=None)
    def test_until_definition(self, witness, time, value):
        route = lift(value)
        before = lambda r: r.is_none  # noqa: E731
        after = core.globally(lambda r: r.is_some)
        predicate = core.until(witness, before, after)
        expected = (value is None) if time < witness else (value is not None)
        observed = predicate(route, SymBV.constant(time, 5)).concrete_value()
        assert observed == expected

    @given(
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=15),
        option_values(),
    )
    @settings(max_examples=80, deadline=None)
    def test_finally_definition(self, witness, time, value):
        predicate = core.finally_(witness, core.globally(lambda r: r.is_some))
        expected = True if time < witness else (value is not None)
        observed = predicate(lift(value), SymBV.constant(time, 5)).concrete_value()
        assert observed == expected

    @given(st.integers(min_value=0, max_value=15), option_values())
    @settings(max_examples=60, deadline=None)
    def test_lifted_set_operations(self, time, value):
        has_route = core.globally(lambda r: r.is_some)
        tagged = core.globally(lambda r: r.is_some & r.payload.tag)
        route = lift(value)
        timestamp = SymBV.constant(time, 5)
        conj = (has_route & tagged)(route, timestamp).concrete_value()
        disj = (has_route | tagged)(route, timestamp).concrete_value()
        neg = (~has_route)(route, timestamp).concrete_value()
        expected_has = value is not None
        expected_tagged = value is not None and value["tag"]
        assert conj == (expected_has and expected_tagged)
        assert disj == (expected_has or expected_tagged)
        assert neg == (not expected_has)
