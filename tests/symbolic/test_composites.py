"""Tests for composite symbolic values: options, sets, records, and shapes."""

import pytest

from repro import smt
from repro.errors import SymbolicError
from repro.symbolic import (
    BitVecShape,
    BoolShape,
    EnumType,
    EnumShape,
    OptionShape,
    RecordShape,
    SetShape,
    SymBool,
    SymOption,
    SymSet,
    enum,
    ite_value,
    record,
    values_equal,
)


def is_valid(symbool):
    return smt.prove(symbool.term).valid


class TestSymSet:
    UNIVERSE = ("a", "b", "c")

    def test_construction(self):
        empty = SymSet.empty(self.UNIVERSE)
        assert empty.concrete_value() == frozenset()
        two = SymSet.of(self.UNIVERSE, ["a", "c"])
        assert two.concrete_value() == frozenset({"a", "c"})

    def test_unknown_elements_rejected(self):
        with pytest.raises(SymbolicError):
            SymSet.of(self.UNIVERSE, ["z"])
        with pytest.raises(SymbolicError):
            SymSet.empty(self.UNIVERSE).contains("z")

    def test_add_remove_contains(self):
        base = SymSet.empty(self.UNIVERSE).add("b")
        assert base.contains("b").concrete_value() is True
        assert base.contains("a").concrete_value() is False
        assert base.remove("b").contains("b").concrete_value() is False

    def test_set_algebra(self):
        left = SymSet.of(self.UNIVERSE, ["a", "b"])
        right = SymSet.of(self.UNIVERSE, ["b", "c"])
        assert left.union(right).concrete_value() == frozenset({"a", "b", "c"})
        assert left.intersection(right).concrete_value() == frozenset({"b"})
        assert left.difference(right).concrete_value() == frozenset({"a"})
        assert left.is_subset_of(left.union(right)).concrete_value() is True
        assert left.is_subset_of(right).concrete_value() is False
        assert SymSet.empty(self.UNIVERSE).is_empty().concrete_value() is True

    def test_equality_and_select(self):
        left = SymSet.of(self.UNIVERSE, ["a"])
        right = SymSet.of(self.UNIVERSE, ["a"])
        other = SymSet.of(self.UNIVERSE, ["b"])
        assert (left == right).concrete_value() is True
        assert (left != other).concrete_value() is True
        chosen = ite_value(SymBool.constant(False), left, other)
        assert chosen.concrete_value() == frozenset({"b"})

    def test_mismatched_universes_rejected(self):
        with pytest.raises(SymbolicError):
            SymSet.empty(("a",)).union(SymSet.empty(("b",)))

    def test_symbolic_membership(self):
        symbolic = SymSet.fresh(self.UNIVERSE, "tags")
        fact = symbolic.add("a").contains("a")
        assert is_valid(fact)


class TestSymOption:
    SHAPE = OptionShape(BitVecShape(8))

    def test_some_and_none(self):
        present = self.SHAPE.some(5)
        absent = self.SHAPE.none()
        assert present.is_some.concrete_value() is True
        assert absent.is_none.concrete_value() is True
        assert self.SHAPE.eval(present, smt.Model({})) == 5
        assert self.SHAPE.eval(absent, smt.Model({})) is None

    def test_constant_from_python(self):
        assert self.SHAPE.constant(None).is_none.concrete_value() is True
        assert self.SHAPE.constant(9).payload.concrete_value() == 9

    def test_map_preserves_absence(self):
        absent = self.SHAPE.none()
        mapped = absent.map(lambda value: value + 1)
        assert mapped.is_none.concrete_value() is True

    def test_where_filters(self):
        present = self.SHAPE.some(5)
        assert present.where(lambda value: value < 10).is_some.concrete_value() is True
        assert present.where(lambda value: value > 10).is_some.concrete_value() is False

    def test_value_or_and_match(self):
        present = self.SHAPE.some(5)
        absent = self.SHAPE.none()
        assert present.value_or(self.SHAPE.inner.constant(0)).concrete_value() == 5
        assert absent.value_or(self.SHAPE.inner.constant(7)).concrete_value() == 7
        assert present.match(SymBool.false(), lambda value: value == 5).concrete_value() is True
        assert absent.match(SymBool.false(), lambda value: value == 5).concrete_value() is False

    def test_bind(self):
        present = self.SHAPE.some(5)
        bound = present.bind(lambda value: SymOption(value < 3, value))
        assert bound.is_some.concrete_value() is False
        with pytest.raises(SymbolicError):
            present.bind(lambda value: value)

    def test_equality(self):
        assert (self.SHAPE.some(5) == self.SHAPE.some(5)).concrete_value() is True
        assert (self.SHAPE.some(5) == self.SHAPE.some(6)).concrete_value() is False
        assert (self.SHAPE.none() == self.SHAPE.none()).concrete_value() is True
        assert (self.SHAPE.none() == self.SHAPE.some(5)).concrete_value() is False

    def test_none_payload_is_dont_care_for_equality(self):
        left = SymOption(SymBool.false(), self.SHAPE.inner.constant(1))
        right = SymOption(SymBool.false(), self.SHAPE.inner.constant(2))
        assert (left == right).concrete_value() is True

    def test_select(self):
        chosen = ite_value(SymBool.constant(True), self.SHAPE.some(1), self.SHAPE.none())
        assert chosen.is_some.concrete_value() is True


class TestRecordsAndShapes:
    ORIGIN = EnumType("Origin", ("igp", "egp"))
    ROUTE = record(
        "Route",
        lp=BitVecShape(8),
        length=BitVecShape(8),
        tag=BoolShape(),
        origin=EnumShape(ORIGIN),
        communities=SetShape(("x", "y")),
    )
    OPT = OptionShape(ROUTE)

    def _concrete(self):
        return self.ROUTE.constant(
            {"lp": 100, "length": 2, "tag": False, "origin": "igp", "communities": ("x",)}
        )

    def test_field_access(self):
        route = self._concrete()
        assert route.lp.concrete_value() == 100
        assert route.field("length").concrete_value() == 2
        with pytest.raises(SymbolicError):
            route.field("missing")
        with pytest.raises(SymbolicError):
            _ = route.missing

    def test_records_are_immutable(self):
        route = self._concrete()
        with pytest.raises(SymbolicError):
            route.lp = 5  # type: ignore[misc]

    def test_with_fields_lifts_python_values(self):
        route = self._concrete().with_fields(lp=200, tag=True)
        assert route.lp.concrete_value() == 200
        assert route.tag.concrete_value() is True
        with pytest.raises(SymbolicError):
            self._concrete().with_fields(unknown=1)

    def test_record_equality(self):
        assert values_equal(self._concrete(), self._concrete()).concrete_value() is True
        other = self._concrete().with_fields(length=3)
        assert values_equal(self._concrete(), other).concrete_value() is False

    def test_record_select(self):
        first = self._concrete()
        second = self._concrete().with_fields(lp=50)
        chosen = ite_value(SymBool.constant(False), first, second)
        assert chosen.lp.concrete_value() == 50

    def test_record_eval(self):
        value = self.ROUTE.eval(self._concrete(), smt.Model({}))
        assert value == {
            "lp": 100,
            "length": 2,
            "tag": False,
            "origin": "igp",
            "communities": frozenset({"x"}),
        }

    def test_record_constant_validation(self):
        with pytest.raises(SymbolicError):
            self.ROUTE.constant({"lp": 1})
        with pytest.raises(SymbolicError):
            self.ROUTE.constant(42)

    def test_shape_defaults_and_constraints(self):
        default = self.ROUTE.default()
        assert default.lp.concrete_value() == 0
        assert default.origin.concrete_value() == "igp"
        fresh = self.OPT.fresh("r")
        constraint = self.OPT.constraint(fresh)
        assert smt.check_sat(constraint.term).is_sat

    def test_fresh_records_are_symbolic(self):
        fresh = self.ROUTE.fresh("r")
        assert not fresh.is_concrete()
        assert smt.check_sat((fresh.lp == 77).term).is_sat

    def test_enum_shape_helpers(self):
        shape = enum("Role", ["core", "edge"])
        assert shape.constant("core").concrete_value() == "core"
        assert shape.default().concrete_value() == "core"

    def test_empty_record_rejected(self):
        with pytest.raises(SymbolicError):
            RecordShape("Empty", {})

    def test_ite_value_rejects_unknown_types(self):
        with pytest.raises(SymbolicError):
            ite_value(SymBool.constant(True), object(), object())
        with pytest.raises(SymbolicError):
            values_equal(object(), object())
