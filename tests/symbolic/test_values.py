"""Tests for scalar symbolic values: booleans, bitvectors and enums."""

import pytest

from repro import smt
from repro.errors import SymbolicError
from repro.symbolic import EnumType, SymBV, SymBool, all_of, any_of


def is_valid(symbool):
    return smt.prove(symbool.term).valid


class TestSymBool:
    def test_constants(self):
        assert SymBool.true().concrete_value() is True
        assert SymBool.false().concrete_value() is False
        assert SymBool.constant(True).is_concrete()

    def test_lift(self):
        assert SymBool.lift(True).concrete_value() is True
        value = SymBool.fresh("flag")
        assert SymBool.lift(value) is value
        with pytest.raises(SymbolicError):
            SymBool.lift(42)

    def test_logical_operators_fold_constants(self):
        t, f = SymBool.true(), SymBool.false()
        assert (t & f).concrete_value() is False
        assert (t | f).concrete_value() is True
        assert (~t).concrete_value() is False
        assert (t ^ t).concrete_value() is False
        assert t.implies(f).concrete_value() is False
        assert f.implies(t).concrete_value() is True
        assert t.iff(t).concrete_value() is True

    def test_operators_accept_python_bools(self):
        a = SymBool.fresh("a")
        assert is_valid((a & True).iff(a))
        assert is_valid((a | False).iff(a))

    def test_ite(self):
        a = SymBool.fresh("a")
        assert is_valid(a.ite(True, False).iff(a))
        assert is_valid(a.ite(False, True).iff(~a))

    def test_eq_and_ne(self):
        a, b = SymBool.fresh("a"), SymBool.fresh("b")
        assert is_valid((a == a))
        assert is_valid(~(a != a))
        assert not is_valid(a == b)

    def test_truthiness_requires_concrete(self):
        assert bool(SymBool.true())
        with pytest.raises(SymbolicError):
            bool(SymBool.fresh("a"))

    def test_concrete_value_requires_concrete(self):
        with pytest.raises(SymbolicError):
            SymBool.fresh("a").concrete_value()

    def test_eval_under_model(self):
        a = SymBool.variable("flag")
        assert a.eval(smt.Model({"flag": True})) is True
        assert a.eval(smt.Model({})) is False

    def test_all_of_any_of(self):
        values = [SymBool.constant(True), SymBool.constant(True)]
        assert all_of(values).concrete_value() is True
        assert any_of([SymBool.constant(False), SymBool.constant(True)]).concrete_value() is True
        assert all_of([]).concrete_value() is True
        assert any_of([]).concrete_value() is False


class TestSymBV:
    def test_constants_and_width(self):
        value = SymBV.constant(5, 8)
        assert value.width == 8
        assert value.concrete_value() == 5

    def test_arithmetic_folds(self):
        a, b = SymBV.constant(3, 8), SymBV.constant(4, 8)
        assert (a + b).concrete_value() == 7
        assert (a + 1).concrete_value() == 4
        assert (b - a).concrete_value() == 1
        assert (a - 4).concrete_value() == 255
        assert a.saturating_add(250).concrete_value() == 253
        assert SymBV.constant(250, 8).saturating_add(10).concrete_value() == 255

    def test_comparisons(self):
        a, b = SymBV.constant(3, 8), SymBV.constant(4, 8)
        assert (a < b).concrete_value() is True
        assert (a <= 3).concrete_value() is True
        assert (b > 4).concrete_value() is False
        assert (b >= 4).concrete_value() is True
        assert (a == 3).concrete_value() is True
        assert (a != 3).concrete_value() is False

    def test_min_max(self):
        a, b = SymBV.constant(3, 8), SymBV.constant(9, 8)
        assert a.min(b).concrete_value() == 3
        assert a.max(b).concrete_value() == 9

    def test_symbolic_facts(self):
        x = SymBV.fresh(8, "x")
        assert is_valid((x + 0) == x)
        assert is_valid(x <= 255)
        assert is_valid((x.saturating_add(1) >= x))

    def test_width_mismatch_rejected(self):
        with pytest.raises(SymbolicError):
            SymBV.constant(1, 8) + SymBV.constant(1, 4)
        with pytest.raises(SymbolicError):
            SymBV.constant(1, 8)._coerce("nope")

    def test_eq_against_non_numeric_is_false(self):
        assert (SymBV.constant(1, 4) == "x").concrete_value() is False

    def test_eval_under_model(self):
        x = SymBV.variable("x", 8)
        assert x.eval(smt.Model({"x": 77})) == 77


class TestEnums:
    def test_enum_type_validation(self):
        with pytest.raises(SymbolicError):
            EnumType("Empty", [])
        with pytest.raises(SymbolicError):
            EnumType("Dup", ["a", "a"])

    def test_width(self):
        assert EnumType("Two", ["a", "b"]).width == 1
        assert EnumType("Three", ["a", "b", "c"]).width == 2
        assert EnumType("Five", list("abcde")).width == 3

    def test_constants_and_membership(self):
        colors = EnumType("Color", ["red", "green", "blue"])
        green = colors.constant("green")
        assert green.is_concrete()
        assert green.concrete_value() == "green"
        assert green.is_member("green").concrete_value() is True
        assert (green == "blue").concrete_value() is False
        assert (green != "blue").concrete_value() is True

    def test_unknown_member_rejected(self):
        colors = EnumType("Color", ["red", "green"])
        with pytest.raises(SymbolicError):
            colors.constant("purple")
        with pytest.raises(SymbolicError):
            colors.constant("red").is_member("purple")

    def test_cross_enum_comparison_rejected(self):
        first = EnumType("A", ["x", "y"])
        second = EnumType("B", ["x", "y"])
        with pytest.raises(SymbolicError):
            first.constant("x") == second.constant("x")

    def test_in_range_constraint(self):
        three = EnumType("Three", ["a", "b", "c"])
        member = three.fresh()
        constrained = smt.and_(three.in_range(member).term, member.is_member("c").term)
        assert smt.check_sat(constrained).is_sat

    def test_eval_under_model(self):
        colors = EnumType("Color", ["red", "green", "blue"])
        symbolic = colors.variable("chosen")
        assert symbolic.eval(smt.Model({"chosen": 2})) == "blue"
        # Out-of-range indices are clamped to the last member for reporting.
        assert symbolic.eval(smt.Model({"chosen": 3})) == "blue"
