"""Engine-level tests for ``Modular(delta="reuse")`` re-verification.

The delta contract: a warm re-run reuses every recorded verdict with
byte-identical results, a one-node config edit re-checks only the edited
neighbourhood, and the layer composes with symmetry, parallel dispatch,
stop-on-failure and the persistent backend without changing any verdict.
"""

import os

import pytest

from repro.core.results import condition_verdicts
from repro.networks import registry
from repro.networks.benchmarks import inject_interface_failure
from repro.verify import DEFAULT_STORE_DIR, Modular, Session, verify


@pytest.fixture(scope="module")
def reach():
    return registry.build("fattree/reach", pods=4).annotated


def _store(tmp_path, name="delta.json"):
    return str(tmp_path / name)


def _fresh_nodes(report):
    """Nodes that reached the SMT backend this run (any non-reused result)."""
    return {
        result.node
        for node_report in report.node_reports.values()
        for result in node_report.results
        if not result.reused
    }


class TestColdWarm:
    def test_cold_then_warm_roundtrip(self, reach, tmp_path):
        store = _store(tmp_path)
        cold = verify(reach, Modular(delta="reuse", store=store))
        assert cold.passed and cold.conditions_reused == 0
        assert cold.conditions_recheck == cold.conditions_checked
        assert os.path.exists(store)

        warm = verify(reach, Modular(delta="reuse", store=store))
        assert warm.conditions_reused == warm.conditions_checked > 0
        assert warm.conditions_recheck == 0
        assert condition_verdicts(warm) == condition_verdicts(cold)

    def test_delta_off_never_touches_a_store(self, reach, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        report = verify(reach, Modular())
        assert report.delta == "off" and report.conditions_reused == 0
        assert not os.path.exists(DEFAULT_STORE_DIR)

    def test_default_store_path_under_dot_directory(self, reach, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        verify(reach, Modular(delta="reuse"))
        stores = os.listdir(DEFAULT_STORE_DIR)
        assert len(stores) == 1 and stores[0].endswith(".json")
        warm = verify(reach, Modular(delta="reuse"))
        assert warm.conditions_reused == warm.conditions_checked

    def test_condition_subset_keeps_its_own_store(self, reach, tmp_path, monkeypatch):
        # A different verdict-affecting knob is a different strategy
        # signature, hence a different default store: no cross-reuse.
        monkeypatch.chdir(tmp_path)
        verify(reach, Modular(delta="reuse"))
        subset = verify(reach, Modular(delta="reuse", conditions=("safety",)))
        assert subset.conditions_reused == 0
        assert len(os.listdir(DEFAULT_STORE_DIR)) == 2

    def test_explicit_store_with_other_signature_degrades(self, reach, tmp_path):
        store = _store(tmp_path)
        verify(reach, Modular(delta="reuse", store=store))
        with pytest.warns(RuntimeWarning, match="different strategy signature"):
            other = verify(reach, Modular(delta="reuse", store=store, delay=1))
        assert other.conditions_reused == 0


class TestEditInvalidation:
    def test_one_node_edit_rechecks_only_the_neighbourhood(self, reach, tmp_path):
        store = _store(tmp_path)
        verify(reach, Modular(delta="reuse", store=store))
        edited, poisoned = inject_interface_failure(reach)

        delta = verify(edited, Modular(delta="reuse", store=store))
        full = verify(edited, Modular())
        assert condition_verdicts(delta) == condition_verdicts(full)
        assert delta.conditions_reused > 0

        topology = reach.network.topology
        successors = {
            node for node in reach.nodes if poisoned in topology.predecessors(node)
        }
        assert _fresh_nodes(delta) == {poisoned} | successors
        assert len(_fresh_nodes(delta)) <= 1 + max(
            len(list(topology.predecessors(node))) for node in reach.nodes
        )

    def test_failing_nodes_are_never_recorded(self, reach, tmp_path):
        store = _store(tmp_path)
        edited, poisoned = inject_interface_failure(reach)
        first = verify(edited, Modular(delta="reuse", store=store))
        assert not first.passed
        # A second run on the same broken network must re-discharge every
        # failing condition (fresh counterexamples), reusing only passes.
        second = verify(edited, Modular(delta="reuse", store=store))
        assert condition_verdicts(second) == condition_verdicts(first)
        failing = {
            result.node
            for node_report in second.node_reports.values()
            for result in node_report.results
            if not result.holds
        }
        assert failing and failing <= _fresh_nodes(second)

    def test_reverted_edit_is_fully_reusable(self, reach, tmp_path):
        """The slow path: an edit overwrote neighbour entries, but their
        original condition hashes are still recorded — the revert reuses."""
        store = _store(tmp_path)
        cold = verify(reach, Modular(delta="reuse", store=store))
        edited, _ = inject_interface_failure(reach)
        verify(edited, Modular(delta="reuse", store=store))
        reverted = verify(reach, Modular(delta="reuse", store=store))
        assert reverted.conditions_reused == reverted.conditions_checked
        assert condition_verdicts(reverted) == condition_verdicts(cold)


class TestComposition:
    def test_with_symmetry_classes(self, reach, tmp_path):
        store = _store(tmp_path)
        cold = verify(reach, Modular(delta="reuse", store=store, symmetry="classes"))
        assert cold.passed and cold.conditions_reused == 0
        warm = verify(reach, Modular(delta="reuse", store=store, symmetry="classes"))
        assert warm.conditions_reused == warm.conditions_checked
        assert condition_verdicts(warm) == condition_verdicts(cold)
        # Reused class members still carry their propagation provenance.
        propagated = {
            result.node
            for node_report in warm.node_reports.values()
            for result in node_report.results
            if result.propagated_from is not None
        }
        assert propagated and len(propagated) == len(reach.nodes) - warm.symmetry_classes

    def test_spot_check_member_choice_ignores_the_store(self, reach, tmp_path):
        """The rng stream is drawn before the delta filter, so which members
        get re-verified cannot depend on what the store contains."""
        store = _store(tmp_path)

        def discharged(report):
            return {
                result.node
                for node_report in report.node_reports.values()
                for result in node_report.results
                if result.propagated_from is None and not result.reused
            }

        plain = verify(reach, Modular(symmetry="spot-check", spot_check_seed=11))
        cold = verify(
            reach,
            Modular(delta="reuse", store=store, symmetry="spot-check", spot_check_seed=11),
        )
        assert discharged(cold) == discharged(plain)
        warm = verify(
            reach,
            Modular(delta="reuse", store=store, symmetry="spot-check", spot_check_seed=11),
        )
        assert warm.conditions_reused == warm.conditions_checked
        assert condition_verdicts(warm) == condition_verdicts(cold)

    def test_sequentially_warmed_store_serves_a_parallel_run(self, reach, tmp_path):
        store = _store(tmp_path)
        cold = verify(reach, Modular(delta="reuse", store=store))
        warm = verify(reach, Modular(delta="reuse", store=store, parallel=2))
        assert warm.conditions_reused == warm.conditions_checked
        assert condition_verdicts(warm) == condition_verdicts(cold)
        assert warm.parallelism == 2

    def test_with_persistent_backend(self, tmp_path):
        benchmark = registry.build("ghost/reach")
        store = _store(tmp_path)
        with Session(
            benchmark.annotated, Modular(delta="reuse", store=store, backend="persistent")
        ) as session:
            cold = session.run()
            warm = session.run()
        assert cold.passed and cold.conditions_reused == 0
        assert warm.conditions_reused == warm.conditions_checked
        assert condition_verdicts(warm) == condition_verdicts(cold)

    def test_stopped_run_records_nothing_unproved(
        self, one_failing_node_annotated, tmp_path
    ):
        annotated = one_failing_node_annotated(length=6, failing="n2")
        store = _store(tmp_path)
        stopped = verify(
            annotated, Modular(delta="reuse", store=store, stop_on_failure=True)
        )
        assert stopped.stopped_early and stopped.conditions_skipped > 0
        # The warm run may only reuse nodes the stopped run fully proved.
        warm = verify(annotated, Modular(delta="reuse", store=store))
        proved_before_stop = {
            report.node
            for report in stopped.node_reports.values()
            if report.passed and all(r.condition for r in report.results)
        }
        reused_now = {
            result.node
            for node_report in warm.node_reports.values()
            for result in node_report.results
            if result.reused
        }
        assert reused_now <= proved_before_stop
        full = verify(annotated, Modular())
        assert condition_verdicts(warm) == condition_verdicts(full)
