"""Tests for the strategy objects and the strategy registry."""

import dataclasses

import pytest

from repro.core.conditions import CONDITION_KINDS
from repro.networks import registry
from repro.verify import (
    BACKENDS,
    DELTA_MODES,
    Modular,
    Monolithic,
    STRATEGY_REGISTRY,
    Session,
    Strawperson,
    available_strategies,
    strategy,
)


class TestValidation:
    def test_defaults_are_valid(self):
        assert Modular().symmetry == "off"
        assert Monolithic().timeout is None
        assert Strawperson().interfaces is None

    def test_unknown_symmetry_names_the_modes(self):
        with pytest.raises(ValueError) as excinfo:
            Modular(symmetry="sideways")
        assert "off" in str(excinfo.value) and "classes" in str(excinfo.value)

    def test_unknown_backend_names_the_backends(self):
        with pytest.raises(ValueError) as excinfo:
            Modular(backend="z3")
        for backend in BACKENDS:
            assert backend in str(excinfo.value)

    def test_bad_parallel_delay_and_conditions(self):
        with pytest.raises(ValueError, match="parallel"):
            Modular(parallel=0)
        with pytest.raises(ValueError, match="delay"):
            Modular(delay=-1)
        with pytest.raises(ValueError, match="condition kinds"):
            Modular(conditions=("initial", "bogus"))

    def test_fail_fast_flags_must_be_bools(self):
        # A truthy string (e.g. "false" from a config file) must not
        # silently flip either fail-fast granularity.
        with pytest.raises(ValueError, match="stop_on_failure"):
            Modular(stop_on_failure="false")
        with pytest.raises(ValueError, match="fail_fast"):
            Modular(fail_fast="false")
        assert Modular(stop_on_failure=True).stop_on_failure is True

    def test_bad_monolithic_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            Monolithic(timeout=0)
        with pytest.raises(ValueError, match="timeout"):
            Monolithic(timeout=-5)

    def test_bad_strawperson_interfaces(self):
        with pytest.raises(ValueError, match="mapping"):
            Strawperson(interfaces=42)
        # __getitem__ alone is not enough: node→predicate mappings only.
        with pytest.raises(ValueError, match="mapping"):
            Strawperson(interfaces=["a", "b"])

    def test_persistent_backend_is_sequential_only(self):
        with pytest.raises(ValueError, match="parallel workers"):
            Modular(backend="persistent", parallel=2)

    def test_unknown_delta_mode_names_the_modes(self):
        with pytest.raises(ValueError) as excinfo:
            Modular(delta="cached")
        for mode in DELTA_MODES:
            assert mode in str(excinfo.value)

    def test_store_requires_delta_reuse(self):
        # A store that is never read or written would be a silent no-op.
        with pytest.raises(ValueError, match="store"):
            Modular(store="/tmp/somewhere.json")
        with pytest.raises(ValueError, match="path string"):
            Modular(delta="reuse", store=42)
        assert Modular(delta="reuse", store="s.json").store == "s.json"
        assert Modular(delta="reuse").store is None

    def test_strategies_are_frozen(self):
        modular = Modular()
        with pytest.raises(dataclasses.FrozenInstanceError):
            modular.symmetry = "classes"


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_strategies()) >= {"modular", "monolithic", "strawperson"}

    def test_construct_by_name(self):
        built = strategy("modular", symmetry="classes", parallel=2)
        assert built == Modular(symmetry="classes", parallel=2)
        assert strategy("monolithic", timeout=9.0) == Monolithic(timeout=9.0)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError) as excinfo:
            strategy("quantum")
        assert "modular" in str(excinfo.value)

    def test_duplicate_names_rejected(self):
        from repro.verify.strategies import Strategy, register_strategy

        with pytest.raises(ValueError, match="already registered"):

            @register_strategy
            class Clashing(Strategy):
                name = "modular"

    def test_new_engines_plug_in_without_new_call_sites(self):
        """A registered strategy class is reachable from the generic path."""
        from repro.verify.strategies import Strategy, register_strategy

        @register_strategy
        @dataclasses.dataclass(frozen=True)
        class NullEngine(Strategy):
            name = "null-engine"

            def events(self, session, nodes=None):
                session._finalize("null-report")
                return iter(())

        try:
            built = strategy("null-engine")
            benchmark = registry.build("ghost/reach")
            with Session(benchmark.annotated, built) as session:
                assert session.run() == "null-report"
        finally:
            del STRATEGY_REGISTRY["null-engine"]


class TestEveryFieldReachesTheEngine:
    """Regression for the SweepSettings knob-dropping bug.

    The legacy sweep path silently dropped ``incremental`` and
    ``spot_check_seed`` on the floor.  With strategy objects the engine
    receives the whole object; this test pins down, field by field, how each
    :class:`Modular` field steers the engine — and fails if a new field is
    added without wiring (and testing) it.
    """

    #: Fields consumed per batch via ``engine_options()`` (value must arrive
    #: in the kwargs of check_node/check_class) vs fields steering the
    #: engine loop itself (asserted individually below).
    OPTION_FIELDS = {"delay": 3, "conditions": ("initial",), "fail_fast": False}
    LOOP_FIELDS = {
        "symmetry",
        "backend",
        "parallel",
        "stop_on_failure",
        "spot_check_seed",
        "delta",
        "store",
    }

    def test_field_inventory_is_complete(self):
        names = {field.name for field in dataclasses.fields(Modular)}
        assert names == set(self.OPTION_FIELDS) | self.LOOP_FIELDS

    def test_option_fields_arrive_in_batch_kwargs(self, monkeypatch):
        benchmark = registry.build("ghost/reach")
        captured = {}

        import repro.core.checker as checker_module

        original = checker_module.check_node

        def capture(annotated, node, **kwargs):
            captured.update(kwargs)
            return original(annotated, node, **kwargs)

        monkeypatch.setattr(checker_module, "check_node", capture)
        strategy_obj = Modular(**self.OPTION_FIELDS)
        with Session(benchmark.annotated, strategy_obj) as session:
            session.run()
        for name, value in self.OPTION_FIELDS.items():
            assert captured[name] == value, f"field {name!r} did not reach the engine"
        # backend="incremental" arrives as incremental=True.
        assert captured["incremental"] is True

    def test_backend_fresh_reaches_the_engine(self, monkeypatch):
        benchmark = registry.build("ghost/reach")
        captured = {}
        import repro.core.checker as checker_module

        original = checker_module.check_node

        def capture(annotated, node, **kwargs):
            captured.update(kwargs)
            return original(annotated, node, **kwargs)

        monkeypatch.setattr(checker_module, "check_node", capture)
        with Session(benchmark.annotated, Modular(backend="fresh")) as session:
            session.run()
        assert captured["incremental"] is False

    def test_parallel_reaches_the_engine(self, monkeypatch):
        benchmark = registry.build("fattree/reach", pods=4)
        seen = {}

        import repro.core.parallel as parallel_module

        original = parallel_module.iter_node_batches

        def capture(annotated, nodes, **kwargs):
            seen["jobs"] = kwargs.get("jobs")
            return original(annotated, nodes, **kwargs)

        monkeypatch.setattr(
            "repro.core.parallel.iter_node_batches", capture
        )
        with Session(benchmark.annotated, Modular(parallel=2)) as session:
            report = session.run()
        assert seen["jobs"] == 2
        assert report.parallelism == 2

    def test_spot_check_seed_steers_member_choice(self):
        benchmark = registry.build("fattree/reach", pods=4)

        def spot_checked_members(seed):
            with Session(
                benchmark.annotated, Modular(symmetry="spot-check", spot_check_seed=seed)
            ) as session:
                report = session.run()
            discharged = {
                node
                for node, node_report in report.node_reports.items()
                if all(result.propagated_from is None for result in node_report.results)
            }
            return discharged

        assert spot_checked_members(7) == spot_checked_members(7)
        # Different seeds must be able to choose different members (they do
        # for the k=4 fattree's class sizes).
        alternatives = {frozenset(spot_checked_members(seed)) for seed in range(4)}
        assert len(alternatives) > 1

    def test_stop_on_failure_reaches_the_engine(self, one_failing_node_annotated):
        # One failing node in the middle of the schedule.
        annotated = one_failing_node_annotated(length=6, failing="n2")

        with Session(annotated, Modular()) as session:
            full = session.run()
        with Session(annotated, Modular(stop_on_failure=True)) as session:
            stopped = session.run()
        assert not full.passed and not full.stopped_early
        assert stopped.stopped_early and not stopped.passed
        assert stopped.conditions_checked < full.conditions_checked
        assert stopped.conditions_skipped > 0

    def test_delta_and_store_reach_the_engine(self, tmp_path):
        benchmark = registry.build("ghost/reach")
        store = str(tmp_path / "delta.json")
        with Session(benchmark.annotated, Modular(delta="reuse", store=store)) as session:
            cold = session.run()
        assert cold.delta == "reuse" and cold.conditions_reused == 0
        # The store field steered where the engine persisted the run.
        assert (tmp_path / "delta.json").exists()
        with Session(benchmark.annotated, Modular(delta="reuse", store=store)) as session:
            warm = session.run()
        assert warm.conditions_reused == warm.conditions_checked > 0

    def test_symmetry_reaches_the_report(self):
        benchmark = registry.build("fattree/reach", pods=4)
        with Session(benchmark.annotated, Modular(symmetry="classes")) as session:
            report = session.run()
        assert report.symmetry == "classes"
        assert report.symmetry_classes is not None
        assert report.conditions_propagated > 0
