"""Tests for the on-disk delta store (:mod:`repro.verify.store`).

The store's contract is *fail-soft*: any unusable file — truncated, corrupt,
wrong schema version, recorded for another network or strategy — degrades to
an empty store (a full verification run) with a :class:`RuntimeWarning`, and
never a crash or a stale verdict.
"""

import json
import os

import pytest

from repro.networks import registry
from repro.verify import (
    DEFAULT_STORE_DIR,
    DeltaStore,
    Modular,
    STORE_VERSION,
    Session,
    default_store_path,
)

NETWORK = "net-fp"
STRATEGY = "strategy-sig"


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "store.json")


def _saved_store(path, conditions=None, nodes=None):
    store = DeltaStore(path=path, network=NETWORK, strategy=STRATEGY)
    for node, (dependency, kinds) in (nodes or {}).items():
        store.record(node, dependency, kinds)
    if conditions:
        store.conditions.update(conditions)
        store.dirty = True
    store.save()
    return store


class TestFailSoftLoading:
    def test_missing_file_is_a_silent_cold_start(self, store_path, recwarn):
        store = DeltaStore.open(store_path, NETWORK, STRATEGY)
        assert store.conditions == {} and store.nodes == {}
        assert not any(issubclass(w.category, RuntimeWarning) for w in recwarn.list)

    def test_truncated_file_degrades_with_warning(self, store_path):
        _saved_store(store_path, nodes={"a": ("dep", {"safety": "fp"})})
        with open(store_path, "r+", encoding="utf-8") as handle:
            handle.truncate(len(handle.read()) // 2)
        with pytest.warns(RuntimeWarning, match="unreadable or corrupt"):
            store = DeltaStore.open(store_path, NETWORK, STRATEGY)
        assert store.conditions == {} and store.nodes == {}

    def test_non_object_document_degrades(self, store_path):
        with open(store_path, "w", encoding="utf-8") as handle:
            json.dump(["not", "a", "store"], handle)
        with pytest.warns(RuntimeWarning, match="not a JSON object"):
            assert DeltaStore.open(store_path, NETWORK, STRATEGY).nodes == {}

    def test_version_skew_degrades(self, store_path):
        _saved_store(store_path, nodes={"a": ("dep", {"safety": "fp"})})
        with open(store_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        document["version"] = STORE_VERSION + 1
        with open(store_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        with pytest.warns(RuntimeWarning, match="format version"):
            assert DeltaStore.open(store_path, NETWORK, STRATEGY).nodes == {}

    def test_other_network_or_strategy_degrades(self, store_path):
        _saved_store(store_path, nodes={"a": ("dep", {"safety": "fp"})})
        with pytest.warns(RuntimeWarning, match="different network topology"):
            assert DeltaStore.open(store_path, "other-net", STRATEGY).nodes == {}
        with pytest.warns(RuntimeWarning, match="different strategy signature"):
            assert DeltaStore.open(store_path, NETWORK, "other-sig").nodes == {}

    def test_malformed_tables_degrade(self, store_path):
        document = {
            "version": STORE_VERSION,
            "network": NETWORK,
            "strategy": STRATEGY,
            "conditions": "oops",
            "nodes": {},
        }
        with open(store_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        with pytest.warns(RuntimeWarning, match="malformed condition/node tables"):
            assert DeltaStore.open(store_path, NETWORK, STRATEGY).conditions == {}

    def test_malformed_node_entry_degrades(self, store_path):
        document = {
            "version": STORE_VERSION,
            "network": NETWORK,
            "strategy": STRATEGY,
            "conditions": {},
            "nodes": {"a": {"dependency": 42, "conditions": {}}},
        }
        with open(store_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        with pytest.warns(RuntimeWarning, match="malformed node entry 'a'"):
            assert DeltaStore.open(store_path, NETWORK, STRATEGY).nodes == {}

    def test_corrupt_store_still_yields_a_full_passing_run(self, store_path):
        """End to end: the session degrades to a full run, never crashes."""
        with open(store_path, "w", encoding="utf-8") as handle:
            handle.write('{"version":')  # truncated mid-document
        benchmark = registry.build("ghost/reach")
        with pytest.warns(RuntimeWarning, match="running a full verification"):
            with Session(
                benchmark.annotated, Modular(delta="reuse", store=store_path)
            ) as session:
                report = session.run()
        assert report.passed and report.conditions_reused == 0
        # The rebuilt store replaced the corrupt file and is warm now.
        with Session(
            benchmark.annotated, Modular(delta="reuse", store=store_path)
        ) as session:
            warm = session.run()
        assert warm.conditions_reused == warm.conditions_checked > 0


class TestQueries:
    def test_record_then_reusable(self, store_path):
        store = DeltaStore(path=store_path, network=NETWORK, strategy=STRATEGY)
        store.record("a", "dep-1", {"initial": "fp-i", "safety": "fp-s"})
        assert store.reusable("a", "dep-1", ("initial", "safety"))
        assert store.reusable("a", "dep-1", ("safety",))
        assert not store.reusable("a", "dep-2", ("safety",))
        assert not store.reusable("b", "dep-1", ("safety",))
        assert not store.reusable("a", "dep-1", ("initial", "inductive"))

    def test_has_conditions_matches_by_content_not_node(self, store_path):
        """The revert slow path: exact condition hits reuse regardless of the
        node entry's current dependency key."""
        store = DeltaStore(path=store_path, network=NETWORK, strategy=STRATEGY)
        store.record("a", "dep-old", {"safety": "fp-s"})
        store.record("a", "dep-new", {"safety": "fp-s2"})
        assert not store.reusable("a", "dep-old", ("safety",))
        assert store.has_conditions({"safety": "fp-s"}, ("safety",))
        assert not store.has_conditions({"safety": "fp-other"}, ("safety",))
        assert not store.has_conditions({}, ("safety",))


class TestSaving:
    def test_round_trip(self, store_path):
        _saved_store(store_path, nodes={"a": ("dep", {"safety": "fp"})})
        loaded = DeltaStore.open(store_path, NETWORK, STRATEGY)
        assert loaded.reusable("a", "dep", ("safety",))
        assert not loaded.dirty

    def test_clean_store_save_is_a_no_op(self, store_path):
        store = DeltaStore(path=store_path, network=NETWORK, strategy=STRATEGY)
        store.save()
        assert not os.path.exists(store_path)
        store.record("a", "dep", {"safety": "fp"})
        store.save()
        stamp = os.stat(store_path).st_mtime_ns
        # Recording an identical entry does not dirty the store.
        store.record("a", "dep", {"safety": "fp"})
        store.save()
        assert os.stat(store_path).st_mtime_ns == stamp

    def test_interrupted_save_keeps_the_previous_version(self, store_path, monkeypatch):
        _saved_store(store_path, nodes={"a": ("dep", {"safety": "fp"})})
        store = DeltaStore.open(store_path, NETWORK, STRATEGY)
        store.record("b", "dep-b", {"safety": "fp-b"})

        def explode(source, target):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError, match="disk full"):
            store.save()
        monkeypatch.undo()
        # The original store is intact and no temp files leak.
        reloaded = DeltaStore.open(store_path, NETWORK, STRATEGY)
        assert set(reloaded.nodes) == {"a"}
        directory = os.path.dirname(store_path)
        assert [name for name in os.listdir(directory) if name.endswith(".tmp")] == []


class TestDefaultPath:
    def test_default_path_is_keyed_by_network_and_strategy(self):
        path = default_store_path("n" * 64, "s" * 64)
        assert path == os.path.join(DEFAULT_STORE_DIR, f"{'n' * 16}-{'s' * 8}.json")
        assert default_store_path("n" * 64, "t" * 64) != path
