"""Tests for :class:`repro.verify.Session`: streaming, reports, persistence."""

import multiprocessing
import warnings

import pytest

from repro import core
from repro.core.results import condition_verdicts
from repro.errors import VerificationError
from repro.networks import registry
from repro.routing import build_running_example, path_topology, shortest_path_network
from repro.smt.incremental import reset_process_solver
from repro.verify import (
    Modular,
    Monolithic,
    Report,
    Session,
    Strawperson,
    is_report,
    verify,
)


@pytest.fixture(autouse=True)
def _isolate_process_solver():
    reset_process_solver()
    yield
    reset_process_solver()


def _figure8_annotated():
    example = build_running_example("symbolic")
    no_route = lambda r: r.is_none  # noqa: E731
    tagged = lambda r: r.is_some & r.payload.tag & (r.payload.lp == 100)  # noqa: E731
    interfaces = {
        "n": core.always_true(),
        "w": core.globally(lambda r: r.is_some & (r.payload.lp == 100)),
        "v": core.until(1, no_route, core.globally(tagged)),
        "d": core.until(2, no_route, core.globally(tagged)),
        "e": core.finally_(3, core.globally(lambda r: r.is_some)),
    }
    return core.annotate(example.network, interfaces)


class TestByteIdenticalVerdicts:
    def test_session_matches_legacy_check_modular_on_k4_spreach(self):
        """Acceptance: Session(Modular(symmetry="classes")) ≡ legacy checker."""
        benchmark = registry.build("fattree/reach", pods=4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = core.check_modular(benchmark.annotated, symmetry="classes")
        reset_process_solver()
        with Session(benchmark.annotated, Modular(symmetry="classes")) as session:
            modern = session.run()
        assert condition_verdicts(legacy) == condition_verdicts(modern)
        assert legacy.passed and modern.passed
        assert modern.symmetry_classes == legacy.symmetry_classes
        assert tuple(modern.node_reports) == tuple(legacy.node_reports)

    @pytest.mark.parametrize("backend", ["incremental", "persistent", "fresh"])
    def test_backends_agree_on_verdicts(self, backend):
        benchmark = registry.build("fattree/reach", pods=4)
        baseline = verify(benchmark.annotated, Modular(backend="fresh"))
        reset_process_solver()
        report = verify(benchmark.annotated, Modular(backend=backend))
        assert condition_verdicts(report) == condition_verdicts(baseline)


class TestPersistentSessions:
    def test_learned_clauses_carry_across_scopes_and_runs(self):
        """Acceptance: a reused persistent session retains learned clauses."""
        benchmark = registry.build("fattree/reach", pods=4)
        with Session(benchmark.annotated, Modular(backend="persistent")) as session:
            first = session.run()
            second = session.run()
        assert first.passed and second.passed
        assert condition_verdicts(first) == condition_verdicts(second)
        # Cross-scope learned-clause retention is visible in the cache
        # counters of both runs, and the second run starts from the carry
        # set the first run built up.
        assert first.backend_cache["learned_carried"] > 0
        assert second.backend_cache["learned_carried"] > 0

    def test_persistent_second_run_encodes_nothing_new(self):
        benchmark = registry.build("fattree/reach", pods=4)
        with Session(benchmark.annotated, Modular(backend="persistent")) as session:
            session.run()
            second = session.run()
        # All encoding work was done in run 1; run 2 is pure cache hits.
        assert second.backend_cache["tseitin_misses"] == 0
        assert second.backend_cache["guard_misses"] == 0

    def test_supplied_solver_must_match_backend(self):
        from repro.smt.incremental import IncrementalSolver

        benchmark = registry.build("ghost/reach")
        # fresh cannot use a solver at all.
        with pytest.raises(VerificationError, match="fresh"):
            Session(
                benchmark.annotated, Modular(backend="fresh"), solver=IncrementalSolver()
            ).run()
        # persistent needs persist_learned=True or the carry silently dies.
        with pytest.raises(VerificationError, match="persist_learned"):
            Session(
                benchmark.annotated,
                Modular(backend="persistent"),
                solver=IncrementalSolver(),
            ).run()

    def test_supplied_solver_rejected_for_facade_engines(self):
        from repro.smt.incremental import IncrementalSolver

        benchmark = registry.build("ghost/reach")
        for strategy in (Monolithic(), Strawperson()):
            with pytest.raises(VerificationError, match="does not use a session solver"):
                Session(benchmark.annotated, strategy, solver=IncrementalSolver())

    def test_supplied_solver_rejected_for_parallel_runs(self):
        from repro.smt.incremental import IncrementalSolver

        benchmark = registry.build("fattree/reach", pods=4)
        with pytest.raises(VerificationError, match="worker processes"):
            Session(
                benchmark.annotated, Modular(parallel=2), solver=IncrementalSolver()
            ).run()

    def test_supplied_solver_is_pinned_for_incremental_backend(self):
        from repro.smt.incremental import IncrementalSolver

        benchmark = registry.build("ghost/reach")
        solver = IncrementalSolver()
        with Session(benchmark.annotated, Modular(), solver=solver) as session:
            report = session.run()
        assert report.passed
        # The run's encoding work landed on the supplied solver, and the
        # report's counters were measured from it.
        statistics = solver.cache_statistics()
        assert statistics["tseitin_misses"] > 0
        assert report.backend_cache["tseitin_misses"] == statistics["tseitin_misses"]

    def test_carry_size_gauge_is_not_differenced(self):
        benchmark = registry.build("fattree/reach", pods=4)
        with Session(benchmark.annotated, Modular(backend="persistent")) as session:
            session.run()
            second = session.run()
        # The gauge reports the live carry-set size, not a per-run delta —
        # a second run with a full, stable carry set must not read as zero.
        assert second.backend_cache["learned_carry_size"] > 0

    def test_closed_session_rejects_runs(self):
        benchmark = registry.build("ghost/reach")
        session = Session(benchmark.annotated, Modular(backend="persistent"))
        session.run()
        session.close()
        with pytest.raises(VerificationError, match="closed"):
            session.run()

    def test_crash_recovery_keeps_later_runs_sound(self, monkeypatch):
        from repro.smt.sat.solver import CdclSolver

        benchmark = registry.build("fattree/reach", pods=4)
        baseline = verify(benchmark.annotated, Modular(backend="fresh"))
        calls = {"n": 0}
        original = CdclSolver.solve

        def explode_once(self, *args, **kwargs):
            if calls["n"] == 0:
                calls["n"] += 1
                raise RuntimeError("interrupted mid-solve")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(CdclSolver, "solve", explode_once)
        with Session(benchmark.annotated, Modular(backend="persistent")) as session:
            with pytest.raises(RuntimeError, match="interrupted mid-solve"):
                session.run()
            report = session.run()
        assert condition_verdicts(report) == condition_verdicts(baseline)


class TestStreaming:
    def test_stream_yields_every_condition_then_finalizes(self):
        annotated = _figure8_annotated()
        with Session(annotated) as session:
            events = list(session.stream())
            report = session.report
        assert len(events) == report.conditions_checked
        assert {event.node for event in events} == set(annotated.nodes)
        assert all(event.condition in core.CONDITION_KINDS for event in events)

    def test_stream_supports_early_exit_on_failure(self):
        example = build_running_example("symbolic")
        interfaces = {
            node: core.globally(lambda r: r.is_none) for node in example.network.topology.nodes
        }
        annotated = core.annotate(example.network, interfaces)
        with Session(annotated) as session:
            for event in session.stream():
                if not event.holds:
                    break
            else:  # pragma: no cover - the run must fail
                pytest.fail("expected a failing event")
            # Abandoning the stream leaves no finalized report.
            with pytest.raises(VerificationError, match="no completed run"):
                session.report

    def test_symmetry_streams_propagated_events(self):
        benchmark = registry.build("fattree/reach", pods=4)
        with Session(benchmark.annotated, Modular(symmetry="classes")) as session:
            events = list(session.stream())
        propagated = [event for event in events if event.propagated_from is not None]
        assert propagated, "class members should receive propagated verdicts"

    def test_new_run_cancels_an_abandoned_stream(self):
        benchmark = registry.build("ghost/reach")
        with Session(benchmark.annotated, Modular(backend="persistent")) as session:
            abandoned = session.stream()
            next(abandoned)
            # Starting a new run cancels the in-flight one deterministically
            # (no waiting for garbage collection) instead of corrupting the
            # shared solver state by interleaving.
            report = session.run()
            assert report.passed and session.runs == 1
            with pytest.raises(StopIteration):
                next(abandoned)

    def test_runs_counter_tracks_completed_runs(self):
        benchmark = registry.build("ghost/reach")
        with Session(benchmark.annotated) as session:
            assert session.runs == 0
            session.run()
            assert session.runs == 1
            session.run()
            assert session.runs == 2

    def test_abandoned_stream_recovers_the_pinned_solver(self):
        """Regression: abandoning a stream (GeneratorExit) used to leave the
        session-owned persistent solver with the abandoned batch's SAT scope
        open; the next run on the same session must start from a clean scope
        with byte-identical verdicts and sane learned-clause counters."""
        benchmark = registry.build("fattree/reach", pods=4)
        with Session(benchmark.annotated, Modular(backend="persistent")) as clean:
            expected = condition_verdicts(clean.run())
        with Session(benchmark.annotated, Modular(backend="persistent")) as session:
            stream = session.stream()
            for _ in range(4):
                next(stream)
            stream.close()  # the consumer walks away mid-run
            # Abandonment recovered the pinned solver: assertion frames are
            # back at the root and a fresh scope was rotated in.
            assert len(session._solver._frames) == 1
            first = session.run()
            second = session.run()
        assert condition_verdicts(first) == expected
        assert condition_verdicts(second) == expected
        assert first.backend_cache["learned_carried"] > 0
        assert second.backend_cache["learned_carried"] > 0


class TestLiveParallelStreaming:
    def test_parallel_stream_is_live_not_barrier(self):
        """Acceptance: a Modular(parallel=2) stream yields its first
        ConditionResult before the last worker batch completes.

        Deterministic handshake: one node's interface blocks inside its
        worker until the parent has *consumed* an event from another batch.
        A barrier-style engine deadlocks here (no event is released before
        the pool completes, and the pool cannot complete unreleased) and
        fails via the worker's timeout."""
        context = multiprocessing.get_context("fork")
        release = context.Event()

        def gated(route):
            if not release.wait(timeout=60):
                raise RuntimeError(
                    "no event reached the consumer while workers were still "
                    "running: the stream is barrier-style, not live"
                )
            return route.is_some

        topology = path_topology(4)
        network = shortest_path_network(topology, "n0")
        interfaces = {
            node: core.finally_(index, core.globally(lambda r: r.is_some))
            for index, node in enumerate(topology.nodes)
        }
        # The gated node is dispatched last (window = 2 workers, 4 items).
        interfaces["n3"] = core.finally_(3, core.globally(gated))
        annotated = core.annotate(network, interfaces)

        events = []
        with Session(annotated, Modular(parallel=2)) as session:
            for event in session.stream():
                events.append(event)
                release.set()
            report = session.report
        assert report.passed
        assert len(events) == report.conditions_checked
        assert tuple(report.node_reports) == annotated.nodes

    def test_parallel_streaming_matches_sequential_run(self):
        """Verdicts and ordering are completion-order independent, and the
        parallel run aggregates worker cache deltas into backend_cache."""
        benchmark = registry.build("fattree/reach", pods=4)
        sequential = verify(benchmark.annotated, Modular(parallel=1))
        reset_process_solver()
        parallel = verify(benchmark.annotated, Modular(parallel=2))
        assert condition_verdicts(sequential) == condition_verdicts(parallel)
        assert tuple(parallel.node_reports) == tuple(sequential.node_reports)
        assert parallel.backend_cache is not None
        # One SAT scope per node batch, measured inside the workers.
        assert parallel.backend_cache["scopes"] == len(benchmark.annotated.nodes)


class TestStopOnFailure:
    def test_stop_on_failure_checks_strictly_fewer_conditions(self, one_failing_node_annotated):
        """Acceptance: a failure-injected stop-on-failure run checks strictly
        fewer conditions than the full run and reports the same failing
        condition."""
        annotated = one_failing_node_annotated()
        full = verify(annotated, Modular())
        stopped = verify(annotated, Modular(stop_on_failure=True))

        def failing_conditions(report):
            return {
                (result.node, result.condition)
                for node_report in report.node_reports.values()
                for result in node_report.results
                if not result.holds
            }

        assert not full.passed and not stopped.passed
        assert stopped.stopped_early and not full.stopped_early
        assert stopped.conditions_checked < full.conditions_checked
        assert stopped.conditions_skipped > 0
        # The stop run's failing conditions are exactly the first failing
        # batch — present in the full run's failure set too.
        assert failing_conditions(stopped) <= failing_conditions(full)
        assert ("n2", "inductive") in failing_conditions(stopped)

    def test_stop_on_failure_skip_accounting(self, one_failing_node_annotated):
        annotated = one_failing_node_annotated(length=6, failing="n2")
        report = verify(annotated, Modular(stop_on_failure=True))
        # Sequential scheduling stops right after n2: n3..n5 never checked.
        assert sorted(report.node_reports) == ["n0", "n1", "n2"]
        assert report.conditions_skipped == 3 * len(core.CONDITION_KINDS)
        assert report.to_json()["stopped_early"] is True
        assert report.to_json()["conditions_skipped"] == report.conditions_skipped
        assert "stopped early" in report.summary()

    def test_stop_on_failure_parallel_stops_dispatch_and_pool(self, one_failing_node_annotated):
        annotated = one_failing_node_annotated(length=10, failing="n1")
        full = verify(annotated, Modular())
        report = verify(annotated, Modular(parallel=2, stop_on_failure=True))
        assert report.stopped_early and not report.passed
        # Completion order decides *which* failing batch stops the run (the
        # poisoned node's own in-flight batch may be discarded), but every
        # reported failure must be one the full run reports too.
        assert report.failed_nodes
        assert set(report.failed_nodes) <= set(full.failed_nodes)
        # Queued nodes were never dispatched once the failing batch arrived.
        assert len(report.node_reports) < 10
        assert report.conditions_skipped > 0
        for child in multiprocessing.active_children():
            child.join(timeout=10)
        assert multiprocessing.active_children() == []

    def test_stop_on_failure_with_symmetry_classes(self, one_failing_node_annotated):
        annotated = one_failing_node_annotated()
        full = verify(annotated, Modular(symmetry="classes"))
        stopped = verify(annotated, Modular(symmetry="classes", stop_on_failure=True))
        assert not full.passed and not stopped.passed
        assert stopped.stopped_early
        assert stopped.conditions_checked <= full.conditions_checked

    def test_passing_run_is_unaffected_by_stop_on_failure(self):
        benchmark = registry.build("ghost/reach")
        baseline = verify(benchmark.annotated, Modular())
        enabled = verify(benchmark.annotated, Modular(stop_on_failure=True))
        assert enabled.passed and not enabled.stopped_early
        assert enabled.conditions_skipped == 0
        assert condition_verdicts(enabled) == condition_verdicts(baseline)


class TestOtherEngines:
    def test_monolithic_session(self):
        annotated = _figure8_annotated()
        with Session(annotated, Monolithic(timeout=60)) as session:
            events = list(session.stream())
            report = session.report
        assert report.passed and not report.timed_out
        assert len(events) == 1 and events[0].condition == "monolithic"

    def test_strawperson_with_explicit_interfaces(self):
        from repro.symbolic import SymBool

        example = build_running_example("symbolic")
        spurious = lambda r: r.is_some & (r.payload.lp == 200) & ~r.payload.tag  # noqa: E731
        interfaces = {
            "n": lambda r: SymBool.true(),
            "w": lambda r: r.is_some & (r.payload.lp == 100),
            "v": spurious,
            "d": spurious,
            "e": lambda r: r.is_none,
        }
        report = verify(example.network, Strawperson(interfaces=interfaces))
        assert report.passed  # the §2.2 unsoundness, reproduced via the new API

    def test_strawperson_defaults_to_erased_interfaces(self):
        annotated = _figure8_annotated()
        with Session(annotated, Strawperson()) as session:
            events = list(session.stream())
            report = session.report
        assert {event.node for event in events} == set(annotated.nodes)
        assert set(report.node_results) == set(annotated.nodes)

    def test_strawperson_without_annotations_needs_interfaces(self):
        example = build_running_example("symbolic")
        with pytest.raises(VerificationError, match="AnnotatedNetwork"):
            verify(example.network, Strawperson())


class TestReportProtocol:
    def test_all_reports_satisfy_the_protocol(self):
        annotated = _figure8_annotated()
        modular = verify(annotated)
        monolithic = verify(annotated, Monolithic(timeout=60))
        strawperson = verify(annotated, Strawperson())
        for report in (modular, monolithic, strawperson):
            assert is_report(report), type(report).__name__
            assert isinstance(report, Report)
            assert report.verdict in ("pass", "fail", "timeout")
            assert report.wall_time >= 0
            payload = report.to_json()
            assert payload["verdict"] == report.verdict
            assert "backend_cache" in payload

    def test_timeout_verdict(self):
        benchmark = registry.build("fattree/reach", pods=4)
        with Session(benchmark.annotated, Monolithic(timeout=0.001)) as session:
            events = list(session.stream())
            report = session.report
        assert report.verdict == "timeout"
        assert report.to_json()["timed_out"] is True
        # The streamed event distinguishes a timeout from a counterexample.
        assert events[0].condition == "monolithic (timeout)"

    def test_modular_to_json_round_trips(self):
        import json

        benchmark = registry.build("ghost/reach")
        report = verify(benchmark.annotated, Modular(symmetry="classes"))
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["engine"] == "modular"
        assert payload["symmetry"] == "classes"
        assert set(payload["nodes"]) == set(benchmark.annotated.nodes)


class TestSessionValidation:
    def test_non_strategy_rejected(self):
        benchmark = registry.build("ghost/reach")
        with pytest.raises(TypeError, match="Strategy"):
            Session(benchmark.annotated, strategy="modular")

    def test_unknown_node_rejected(self):
        benchmark = registry.build("ghost/reach")
        with pytest.raises(VerificationError, match="unknown node"):
            verify(benchmark.annotated, nodes=["nope"])

    def test_monolithic_rejects_node_subsets(self):
        benchmark = registry.build("ghost/reach")
        with pytest.raises(VerificationError, match="whole network"):
            verify(benchmark.annotated, Monolithic(), nodes=["nope"])
