"""The legacy entry points must warn, delegate, and agree with the new API."""

import pytest

from repro import core
from repro.core.results import condition_verdicts
from repro.errors import BenchmarkError, VerificationError
from repro.networks import registry
from repro.networks.benchmarks import build_benchmark
from repro.routing import build_running_example
from repro.smt.incremental import reset_process_solver
from repro.symbolic import SymBool
from repro.verify import Modular, Monolithic, Strawperson, verify


@pytest.fixture(autouse=True)
def _isolate_process_solver():
    reset_process_solver()
    yield
    reset_process_solver()


def _ghost():
    return registry.build("ghost/reach").annotated


class TestCheckModularShim:
    def test_warns_and_matches_verify(self):
        annotated = _ghost()
        with pytest.warns(DeprecationWarning, match="check_modular is deprecated"):
            legacy = core.check_modular(annotated, symmetry="classes", jobs=1)
        reset_process_solver()
        modern = verify(annotated, Modular(symmetry="classes"))
        assert condition_verdicts(legacy) == condition_verdicts(modern)

    def test_incremental_false_maps_to_fresh_backend(self):
        annotated = _ghost()
        with pytest.warns(DeprecationWarning):
            legacy = core.check_modular(annotated, incremental=False)
        assert legacy.backend_cache is None
        assert legacy.passed

    def test_legacy_jobs_zero_still_runs_sequentially(self):
        annotated = _ghost()
        with pytest.warns(DeprecationWarning):
            report = core.check_modular(annotated, jobs=0)
        assert report.passed
        assert report.parallelism == 1

    def test_legacy_error_type_preserved(self):
        annotated = _ghost()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(VerificationError, match="symmetry mode"):
                core.check_modular(annotated, symmetry="bogus")


class TestCheckMonolithicShim:
    def test_warns_and_matches_verify(self):
        annotated = _ghost()
        with pytest.warns(DeprecationWarning, match="check_monolithic is deprecated"):
            legacy = core.check_monolithic(annotated, timeout=60)
        modern = verify(annotated, Monolithic(timeout=60))
        assert legacy.passed == modern.passed
        assert legacy.timed_out == modern.timed_out

    def test_exhausted_budget_still_returns_a_report(self):
        # The legacy API accepted timeout <= 0 and returned whatever report
        # the solver produced before the deadline check fired; the strategy
        # validation rejects that value, but the shim must not raise.
        annotated = _ghost()
        with pytest.warns(DeprecationWarning):
            report = core.check_monolithic(annotated, timeout=0)
        assert report.verdict in ("fail", "timeout")
        assert report.wall_time >= 0


class TestCheckStrawpersonShim:
    def test_warns_and_matches_verify(self):
        example = build_running_example("symbolic")
        interfaces = {
            node: (lambda r: SymBool.true()) for node in example.network.topology.nodes
        }
        with pytest.warns(DeprecationWarning, match="check_strawperson is deprecated"):
            legacy = core.check_strawperson(example.network, interfaces)
        modern = verify(example.network, Strawperson(interfaces=interfaces))
        assert legacy.node_results == modern.node_results


class TestBuildBenchmarkShim:
    def test_warns_and_matches_registry(self):
        with pytest.warns(DeprecationWarning, match="build_benchmark is deprecated"):
            legacy = build_benchmark("reach", 4)
        modern = registry.build("fattree/reach", pods=4).raw
        assert legacy.name == modern.name == "SpReach"
        assert legacy.node_count == modern.node_count

    def test_unknown_policy_still_a_benchmark_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(BenchmarkError, match="unknown policy"):
                build_benchmark("no-such-policy", 4)


class TestSweepSettingsShim:
    def test_warns_and_converts_to_strategies(self):
        from repro.harness import SweepSettings

        with pytest.warns(DeprecationWarning, match="SweepSettings"):
            settings = SweepSettings(
                monolithic_timeout=30, jobs=2, symmetry="classes", run_monolithic=False
            )
        modular, monolithic = settings.strategies()
        assert modular == Modular(symmetry="classes", parallel=2)
        assert monolithic is None
