"""Tests for network instances and the synchronous simulator."""

import pytest

from repro.errors import RoutingError
from repro.routing import (
    Network,
    SymbolicVariable,
    Topology,
    build_running_example,
    path_topology,
    reachability_network,
    shortest_path_network,
    simulate,
    stable_routes,
)
from repro.routing.simulation import SimulationTrace
from repro.symbolic import BitVecShape, OptionShape, SymBool


class TestNetworkConstruction:
    def _tiny(self):
        topology = Topology(edges=[("a", "b")])
        shape = OptionShape(BitVecShape(4))
        return topology, shape

    def test_mapping_based_definitions(self):
        topology, shape = self._tiny()
        network = Network(
            topology,
            shape,
            initial_routes={"a": shape.some(0), "b": shape.none()},
            transfer_functions={("a", "b"): lambda r: r},
            merge=lambda x, y: x,
        )
        assert network.initial_route("b").is_none.concrete_value() is True
        assert network.transfer(("a", "b"), shape.some(1)).payload.concrete_value() == 1

    def test_missing_initial_routes_detected(self):
        topology, shape = self._tiny()
        with pytest.raises(RoutingError):
            Network(
                topology,
                shape,
                initial_routes={"a": shape.none()},
                transfer_functions={("a", "b"): lambda r: r},
                merge=lambda x, y: x,
            )

    def test_missing_transfer_functions_detected(self):
        topology, shape = self._tiny()
        with pytest.raises(RoutingError):
            Network(
                topology,
                shape,
                initial_routes={"a": shape.none(), "b": shape.none()},
                transfer_functions={},
                merge=lambda x, y: x,
            )

    def test_transfer_on_unknown_edge_rejected(self):
        network = reachability_network(path_topology(2), "n0")
        with pytest.raises(RoutingError):
            network.transfer(("n0", "n5"), network.route_shape.none())

    def test_merge_all_requires_routes(self):
        network = reachability_network(path_topology(2), "n0")
        with pytest.raises(RoutingError):
            network.merge_all([])

    def test_symbolic_variables(self):
        topology, shape = self._tiny()
        announcement = shape.fresh("ann")
        network = Network(
            topology,
            shape,
            initial_routes=lambda node: announcement if node == "a" else shape.none(),
            transfer_functions=lambda edge: (lambda r: r),
            merge=lambda x, y: x,
            symbolics=(SymbolicVariable("ann", announcement, announcement.is_some),),
        )
        assert not network.is_closed
        assert not network.symbolic_constraints().is_concrete() or True
        extended = network.with_symbolics(SymbolicVariable("extra", shape.fresh("extra")))
        assert len(extended.symbolics) == 2

    def test_symbolic_variable_needs_name(self):
        with pytest.raises(RoutingError):
            SymbolicVariable("", SymBool.true())


class TestSimulation:
    def test_running_example_matches_figure_3(self):
        example = build_running_example("none")
        trace = simulate(example.network)
        assert trace.converged
        expected = {
            0: {"n": None, "w": (100, 0, False), "v": None, "d": None, "e": None},
            1: {"n": None, "w": (100, 0, False), "v": (100, 1, True), "d": None, "e": None},
            2: {"n": None, "w": (100, 0, False), "v": (100, 1, True), "d": (100, 2, True), "e": None},
            3: {
                "n": None,
                "w": (100, 0, False),
                "v": (100, 1, True),
                "d": (100, 2, True),
                "e": (100, 3, True),
            },
        }
        for time, state in expected.items():
            simulated = trace.state_at(time)
            for node, fields in state.items():
                if fields is None:
                    assert simulated[node] is None
                else:
                    lp, length, tag = fields
                    assert simulated[node] == {"lp": lp, "len": length, "tag": tag}

    def test_shortest_path_matches_bfs(self):
        topology = path_topology(5)
        network = shortest_path_network(topology, "n0")
        stable = stable_routes(network)
        distances = topology.bfs_distances("n0")
        for node, hops in distances.items():
            assert stable[node] == hops

    def test_reachability_network(self):
        topology = path_topology(4)
        stable = stable_routes(reachability_network(topology, "n3"))
        assert all(value is True for value in stable.values())

    def test_unreachable_nodes_keep_no_route(self):
        topology = Topology(nodes=["a", "b", "island"], edges=[("a", "b"), ("b", "a")])
        stable = stable_routes(shortest_path_network(topology, "a"))
        assert stable["island"] is None
        assert stable["b"] == 1

    def test_open_networks_cannot_be_simulated(self):
        example = build_running_example("symbolic")
        with pytest.raises(RoutingError):
            simulate(example.network)

    def test_state_at_clamps_only_after_convergence(self):
        example = build_running_example("none")
        trace = simulate(example.network)
        assert trace.state_at(100) == trace.stable_state()
        with pytest.raises(RoutingError):
            trace.state_at(-1)
        with pytest.raises(RoutingError):
            trace.route_at("zzz", 0)

    def test_unconverged_trace_reports_failure(self):
        trace = SimulationTrace(states=[{"a": None}, {"a": 1}], converged_at=None)
        assert not trace.converged
        with pytest.raises(RoutingError):
            trace.stable_state()
        with pytest.raises(RoutingError):
            trace.state_at(5)

    def test_ghost_field_is_threaded_through(self):
        example = build_running_example("none", with_fromw_ghost=True)
        stable = simulate(example.network).stable_state()
        assert stable["e"]["fromw"] is True
        assert stable["w"]["fromw"] is True
