"""Tests for the directed topology class and topology builders."""

import pytest

from repro.errors import RoutingError
from repro.routing import Topology, path_topology, ring_topology, star_topology


class TestTopology:
    def test_add_nodes_and_edges(self):
        topology = Topology(nodes=["a", "b"], edges=[("a", "b")])
        assert topology.node_count == 2
        assert topology.edge_count == 1
        assert topology.has_edge("a", "b")
        assert not topology.has_edge("b", "a")
        assert "a" in topology and "z" not in topology

    def test_add_edge_creates_nodes(self):
        topology = Topology()
        topology.add_edge("x", "y")
        assert set(topology.nodes) == {"x", "y"}

    def test_idempotent_additions(self):
        topology = Topology()
        topology.add_edge("a", "b")
        topology.add_edge("a", "b")
        topology.add_node("a")
        assert topology.edge_count == 1

    def test_self_loops_rejected(self):
        with pytest.raises(RoutingError):
            Topology().add_edge("a", "a")

    def test_empty_node_name_rejected(self):
        with pytest.raises(RoutingError):
            Topology().add_node("")

    def test_predecessors_and_successors(self):
        topology = Topology(edges=[("a", "b"), ("c", "b"), ("b", "d")])
        assert set(topology.predecessors("b")) == {"a", "c"}
        assert set(topology.successors("b")) == {"d"}
        assert topology.in_degree("b") == 2
        assert topology.out_degree("b") == 1
        assert set(topology.in_edges("b")) == {("a", "b"), ("c", "b")}

    def test_unknown_node_rejected(self):
        topology = Topology(nodes=["a"])
        with pytest.raises(RoutingError):
            topology.predecessors("zzz")

    def test_undirected_edges(self):
        topology = Topology()
        topology.add_undirected_edge("a", "b")
        assert topology.has_edge("a", "b") and topology.has_edge("b", "a")

    def test_bfs_distances_follow_edge_direction(self):
        topology = Topology(edges=[("a", "b"), ("b", "c")])
        assert topology.bfs_distances("a") == {"a": 0, "b": 1, "c": 2}
        assert topology.bfs_distances("c") == {"c": 0}
        assert topology.bfs_distances("c", reverse=True) == {"c": 0, "b": 1, "a": 2}

    def test_diameter_and_connectivity(self):
        ring = ring_topology(5)
        assert ring.is_strongly_connected()
        assert ring.diameter() == 2
        line = path_topology(4, bidirectional=False)
        assert not line.is_strongly_connected()
        assert line.diameter() == 3


class TestBuilders:
    def test_path_topology(self):
        path = path_topology(3)
        assert path.node_count == 3
        assert path.edge_count == 4  # two undirected links
        with pytest.raises(RoutingError):
            path_topology(0)

    def test_ring_topology(self):
        ring = ring_topology(4)
        assert ring.node_count == 4
        assert ring.edge_count == 8
        with pytest.raises(RoutingError):
            ring_topology(2)

    def test_star_topology(self):
        star = star_topology(5)
        assert star.node_count == 6
        assert star.in_degree("hub") == 5
        with pytest.raises(RoutingError):
            star_topology(0)
