"""Tests for the eBGP route family, decision process and policy combinators."""

import pytest

from repro import smt
from repro.errors import RoutingError
from repro.routing import (
    BgpPolicy,
    bgp_better,
    bgp_merge,
    bgp_route_family,
    drop_all_policy,
    identity_policy,
)
from repro.symbolic import BoolShape, values_equal


def is_valid(symbool):
    return smt.prove(symbool.term).valid


FAMILY = bgp_route_family(communities=("gold", "silver"))


def route(**overrides):
    values = FAMILY.default_announcement()
    values.update(overrides)
    return FAMILY.route.some(values)


class TestRouteFamily:
    def test_fields_match_table_3(self):
        names = set(FAMILY.payload.fields)
        assert {"prefix", "ad", "lp", "med", "origin", "as_path_length", "communities"} <= names

    def test_ghost_fields(self):
        family = bgp_route_family(ghost_fields={"external": BoolShape()})
        assert "external" in family.payload.fields
        announcement = family.default_announcement(external=True)
        assert announcement["external"] is True

    def test_ghost_field_clash_rejected(self):
        with pytest.raises(RoutingError):
            bgp_route_family(ghost_fields={"lp": BoolShape()})

    def test_unknown_ghost_value_rejected(self):
        with pytest.raises(RoutingError):
            FAMILY.default_announcement(no_such_field=1)

    def test_default_announcement_values(self):
        values = FAMILY.default_announcement(prefix=7, lp=150, communities=("gold",))
        assert values["prefix"] == 7
        assert values["lp"] == 150
        assert values["as_path_length"] == 0
        assert values["communities"] == ("gold",)


class TestDecisionProcess:
    def test_prefers_presence(self):
        present, absent = route(), FAMILY.route.none()
        assert values_equal(bgp_merge(present, absent), present).concrete_value() is True
        assert values_equal(bgp_merge(absent, present), present).concrete_value() is True
        assert bgp_merge(absent, absent).is_none.concrete_value() is True

    def test_prefers_lower_admin_distance(self):
        better = route(ad=5, lp=50)
        worse = route(ad=10, lp=200)
        assert values_equal(bgp_merge(better, worse), better).concrete_value() is True

    def test_prefers_higher_local_preference(self):
        high = route(lp=200, as_path_length=9)
        low = route(lp=100, as_path_length=1)
        assert values_equal(bgp_merge(high, low), high).concrete_value() is True

    def test_prefers_shorter_as_path(self):
        short = route(as_path_length=1, med=9)
        long = route(as_path_length=5, med=0)
        assert values_equal(bgp_merge(long, short), short).concrete_value() is True

    def test_prefers_better_origin_then_lower_med(self):
        igp = route(origin="igp", med=9)
        egp = route(origin="egp", med=0)
        assert values_equal(bgp_merge(igp, egp), igp).concrete_value() is True
        low_med = route(med=1)
        high_med = route(med=9)
        assert values_equal(bgp_merge(high_med, low_med), low_med).concrete_value() is True

    def test_merge_is_idempotent_symbolically(self):
        left = FAMILY.route.fresh("left")
        idempotent = values_equal(bgp_merge(left, left), left)
        assert smt.prove(idempotent.term, FAMILY.route.constraint(left).term).valid

    def test_merge_is_commutative_when_the_decision_is_strict(self):
        # When the decision process strictly prefers one side (the usual case),
        # the merge is order-independent.  Ties between routes that differ only
        # in uncompared fields (prefix, communities) are broken by argument
        # order, exactly as in real BGP implementations.
        left = FAMILY.route.fresh("left")
        right = FAMILY.route.fresh("right")
        strict = ~(bgp_better(left.payload, right.payload) & bgp_better(right.payload, left.payload))
        assumptions = FAMILY.route.constraint(left) & FAMILY.route.constraint(right) & strict
        commutative = values_equal(bgp_merge(left, right), bgp_merge(right, left))
        assert smt.prove(commutative.term, assumptions.term).valid

    def test_merge_selects_one_of_its_arguments(self):
        left = FAMILY.route.fresh("a")
        right = FAMILY.route.fresh("b")
        merged = bgp_merge(left, right)
        one_of = values_equal(merged, left) | values_equal(merged, right)
        assert smt.prove(one_of.term).valid

    def test_better_is_total_on_concrete_routes(self):
        assert bgp_better(route(lp=200).payload, route(lp=100).payload).concrete_value() is True
        assert bgp_better(route(lp=100).payload, route(lp=200).payload).concrete_value() is False


class TestPolicies:
    def test_identity_policy_increments_path(self):
        result = identity_policy().apply(route(as_path_length=3))
        assert result.payload.as_path_length.concrete_value() == 4

    def test_drop_all_policy(self):
        assert drop_all_policy().apply(route()).is_none.concrete_value() is True

    def test_community_filtering(self):
        tagged = route(communities=("gold",))
        plain = route()
        deny = BgpPolicy(deny_communities=("gold",))
        assert deny.apply(tagged).is_none.concrete_value() is True
        assert deny.apply(plain).is_some.concrete_value() is True
        require = BgpPolicy(require_communities=("gold",))
        assert require.apply(tagged).is_some.concrete_value() is True
        assert require.apply(plain).is_none.concrete_value() is True

    def test_guard(self):
        policy = BgpPolicy(guard=lambda payload: payload.lp == 100)
        assert policy.apply(route(lp=100)).is_some.concrete_value() is True
        assert policy.apply(route(lp=90)).is_none.concrete_value() is True

    def test_community_updates(self):
        policy = BgpPolicy(add_communities=("gold",), remove_communities=("silver",))
        result = policy.apply(route(communities=("silver",)))
        communities = result.payload.communities
        assert communities.contains("gold").concrete_value() is True
        assert communities.contains("silver").concrete_value() is False

    def test_attribute_overwrites(self):
        policy = BgpPolicy(set_local_preference=250, set_med=7, increment_path=False)
        result = policy.apply(route(lp=10, med=1, as_path_length=2))
        assert result.payload.lp.concrete_value() == 250
        assert result.payload.med.concrete_value() == 7
        assert result.payload.as_path_length.concrete_value() == 2

    def test_transform_hook(self):
        policy = BgpPolicy(transform=lambda payload: payload.with_fields(prefix=9))
        assert policy.apply(route(prefix=1)).payload.prefix.concrete_value() == 9

    def test_policy_preserves_absence(self):
        policy = BgpPolicy(add_communities=("gold",), set_local_preference=5)
        assert policy.apply(FAMILY.route.none()).is_none.concrete_value() is True

    def test_as_transfer(self):
        transfer = BgpPolicy().as_transfer()
        assert transfer(route()).payload.as_path_length.concrete_value() == 1
