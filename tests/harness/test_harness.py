"""Tests for the experiment harness: sweeps, tables and the CLI."""

import pytest

from repro.harness import (
    ExperimentResult,
    SweepSettings,
    figure14_table,
    format_table,
    ghost_state_table,
    internet2_table,
    lines_of_code_table,
    scaling_table,
    sweep_fattree,
    sweep_wan,
)
from repro.harness.cli import build_argument_parser, main


FAST = SweepSettings(run_monolithic=False)


class TestSweeps:
    def test_fattree_sweep_produces_one_point_per_size(self):
        results = sweep_fattree("reach", [4], settings=FAST)
        assert len(results) == 1
        point = results[0]
        assert point.benchmark == "SpReach"
        assert point.nodes == 20
        assert point.modular is not None and point.modular.passed
        assert point.monolithic is None
        row = point.as_row()
        assert row["tp_pass"] is True
        assert row["ms_outcome"] == "skipped"

    def test_fattree_sweep_with_monolithic(self):
        settings = SweepSettings(monolithic_timeout=60)
        results = sweep_fattree("reach", [4], settings=settings)
        point = results[0]
        assert point.monolithic is not None
        assert point.as_row()["ms_outcome"] in ("pass", "timeout")
        assert point.modular_wall_time is not None
        assert point.modular_median is not None
        assert point.modular_p99 is not None

    def test_wan_sweep(self):
        results = sweep_wan([4], internal_routers=4, settings=FAST)
        assert len(results) == 1
        assert results[0].nodes == 8
        assert results[0].modular.passed

    def test_all_pairs_sweep(self):
        results = sweep_fattree("reach", [4], all_pairs=True, settings=FAST)
        assert results[0].benchmark == "ApReach"


class TestTables:
    def test_format_table_alignment_and_none(self):
        text = format_table(("a", "bee"), [(1, None), ("xx", 2.5)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "-" in lines[1]
        assert "2.500" in text
        assert "-" in lines[2]

    def test_scaling_and_figure14_tables(self):
        results = sweep_fattree("reach", [4], settings=FAST)
        scaling = scaling_table(results)
        assert "nodes" in scaling and "20" in scaling
        figure = figure14_table(results)
        assert "SpReach" in figure and "Tp median [s]" in figure

    def test_internet2_table(self):
        results = sweep_wan([4], internal_routers=4, settings=FAST)
        table = internet2_table(results)
        assert "external" in table and "8" in table

    def test_ghost_state_table(self):
        table = ghost_state_table(node_count=20, edge_count=64)
        assert "reachability to d" in table
        assert "fault tolerance" in table
        assert "64" in table

    def test_lines_of_code_table_structure(self):
        table = lines_of_code_table()
        for benchmark in ("Reach", "Len", "Vf", "Hijack", "BlockToExternal"):
            assert benchmark in table
        assert "interface LoC" in table


class TestCli:
    def test_parser_covers_all_subcommands(self):
        parser = build_argument_parser()
        for command in (["table1"], ["table2"], ["figure1", "--pods", "4"], ["internet2"]):
            assert parser.parse_args(command).command == command[0]
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_table_commands_print(self, capsys):
        assert main(["table1"]) == 0
        assert "reachability to d" in capsys.readouterr().out
        assert main(["table2"]) == 0
        assert "BlockToExternal" in capsys.readouterr().out

    def test_figure14_command_runs_small_sweep(self, capsys):
        code = main(["figure14", "--policy", "reach", "--pods", "4", "--skip-monolithic"])
        assert code == 0
        output = capsys.readouterr().out
        assert "SpReach" in output

    def test_internet2_command_runs_small_sweep(self, capsys):
        code = main(["internet2", "--peers", "4", "--internal", "4", "--skip-monolithic"])
        assert code == 0
        assert "BlockToExternal" not in capsys.readouterr().err
