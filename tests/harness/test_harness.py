"""Tests for the experiment harness: sweeps, tables and result records."""

import pytest

from repro.harness import (
    ExperimentResult,
    SweepSettings,
    figure14_table,
    format_table,
    ghost_state_table,
    internet2_table,
    lines_of_code_table,
    results_to_json,
    run_point,
    scaling_table,
    sweep_fattree,
    sweep_wan,
    symmetry_table,
)
from repro.networks import registry
from repro.verify import Modular, Monolithic


class TestSweeps:
    def test_fattree_sweep_produces_one_point_per_size(self):
        results = sweep_fattree("reach", [4], monolithic=None)
        assert len(results) == 1
        point = results[0]
        assert point.benchmark == "SpReach"
        assert point.nodes == 20
        assert point.modular is not None and point.modular.passed
        assert point.monolithic is None
        row = point.as_row()
        assert row["tp_pass"] is True
        assert row["ms_outcome"] == "skipped"

    def test_fattree_sweep_with_monolithic(self):
        results = sweep_fattree("reach", [4], monolithic=Monolithic(timeout=60))
        point = results[0]
        assert point.monolithic is not None
        assert point.as_row()["ms_outcome"] in ("pass", "timeout")
        assert point.modular_wall_time is not None
        assert point.modular_median is not None
        assert point.modular_p99 is not None

    def test_wan_sweep(self):
        results = sweep_wan([4], internal_routers=4, monolithic=None)
        assert len(results) == 1
        assert results[0].nodes == 8
        assert results[0].modular.passed

    def test_all_pairs_sweep(self):
        results = sweep_fattree("reach", [4], all_pairs=True, monolithic=None)
        assert results[0].benchmark == "ApReach"

    def test_sweep_streams_events_to_observer(self):
        events = []
        results = sweep_fattree("reach", [4], monolithic=None, on_event=events.append)
        assert len(events) == results[0].modular.conditions_checked
        assert all(event.holds for event in events)

    def test_monolithic_events_reach_the_observer(self):
        """Regression: run_point only streamed the modular session to
        on_event; monolithic verdicts were silently dropped."""
        benchmark = registry.build("ghost/reach")
        events = []
        point = run_point(
            "unit",
            benchmark.name,
            benchmark.annotated,
            nodes=len(benchmark.annotated.nodes),
            modular=Modular(),
            monolithic=Monolithic(timeout=60),
            on_event=events.append,
        )
        monolithic_events = [
            event for event in events if event.condition.startswith("monolithic")
        ]
        assert len(monolithic_events) == 1
        assert monolithic_events[0].node == "*"
        assert monolithic_events[0].holds == point.monolithic.passed
        modular_events = [
            event for event in events if not event.condition.startswith("monolithic")
        ]
        assert len(modular_events) == point.modular.conditions_checked

    def test_run_point_with_strategy_objects(self):
        benchmark = registry.build("fattree/reach", pods=4)
        point = run_point(
            "unit",
            benchmark.name,
            benchmark.annotated,
            nodes=benchmark.node_count,
            modular=Modular(symmetry="classes"),
            monolithic=None,
        )
        assert point.modular.symmetry == "classes"
        assert point.modular.passed

    def test_json_records_carry_backend_cache(self):
        results = sweep_fattree("reach", [4], monolithic=None)
        records = results_to_json(results)
        assert len(records) == 1
        record = records[0]
        assert record["benchmark"] == "SpReach"
        assert record["modular"]["verdict"] == "pass"
        # The cache counters must be present both nested and at top level so
        # BENCH_*.json trajectories can track hit-rates across PRs.
        assert record["backend_cache"] is not None
        assert record["backend_cache"]["tseitin_hits"] >= 0
        assert record["modular"]["backend_cache"] == record["backend_cache"]
        import json

        json.dumps(records)  # must be serialisable as-is

    def test_json_records_round_trip_delta_counters(self, tmp_path):
        """Regression: the delta reuse counters must survive the full
        as_row/to_json path so ``--json``/``BENCH_*.json`` trajectories can
        track reuse rates across PRs."""
        import json

        benchmark = registry.build("fattree/reach", pods=4)
        store = str(tmp_path / "delta.json")
        strategy = Modular(delta="reuse", store=store)

        def point():
            return run_point(
                "unit",
                benchmark.name,
                benchmark.annotated,
                nodes=benchmark.node_count,
                modular=strategy,
                monolithic=None,
            )

        cold, warm = point(), point()
        record = json.loads(json.dumps(results_to_json([cold, warm])))
        cold_row, warm_row = record[0]["row"], record[1]["row"]
        assert cold_row["tp_delta"] == warm_row["tp_delta"] == "reuse"
        assert cold_row["tp_reused"] == 0
        assert cold_row["tp_recheck"] == cold_row["tp_conditions"]
        assert warm_row["tp_reused"] == warm_row["tp_conditions"] > 0
        assert warm_row["tp_recheck"] == 0
        modular = record[1]["modular"]
        assert modular["delta"] == "reuse"
        assert modular["conditions_reused"] == warm_row["tp_reused"]
        assert modular["conditions_recheck"] == 0

    def test_legacy_positional_sweep_settings_still_work(self):
        from repro.harness import scaling_comparison

        with pytest.warns(DeprecationWarning, match="SweepSettings"):
            settings = SweepSettings(run_monolithic=False)
        # Pre-redesign callers passed settings in the third positional slot.
        results = scaling_comparison("reach", [4], settings)
        assert results[0].modular is not None and results[0].monolithic is None

    def test_legacy_positional_run_point_keeps_parameters(self):
        benchmark = registry.build("fattree/reach", pods=4)
        with pytest.warns(DeprecationWarning, match="SweepSettings"):
            settings = SweepSettings(run_monolithic=False)
        # Pre-redesign signature: run_point(exp, name, annotated, nodes,
        # settings, parameters) — both trailing positionals must survive.
        point = run_point(
            "unit", benchmark.name, benchmark.annotated, 20, settings, {"pods": 4}
        )
        assert point.parameters == {"pods": 4}
        assert point.modular is not None and point.monolithic is None

    def test_legacy_positional_experiment_is_not_silently_dropped(self):
        from repro.harness import scaling_comparison

        with pytest.warns(DeprecationWarning, match="SweepSettings"):
            settings = SweepSettings(run_monolithic=False)
        # The old signatures took more positionals after settings; those
        # cannot be placed in the new signature and must fail loudly
        # instead of mislabeling every sweep point.
        with pytest.raises(TypeError, match="positional"):
            sweep_fattree("reach", [4], False, settings, "figure1")

    def test_legacy_sweep_settings_still_work_with_warning(self):
        with pytest.warns(DeprecationWarning, match="SweepSettings"):
            settings = SweepSettings(run_monolithic=False, symmetry="classes", jobs=1)
        results = sweep_fattree("reach", [4], settings=settings)
        assert results[0].modular.symmetry == "classes"
        assert results[0].monolithic is None


class TestTables:
    def test_format_table_alignment_and_none(self):
        text = format_table(("a", "bee"), [(1, None), ("xx", 2.5)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "-" in lines[1]
        assert "2.500" in text
        assert "-" in lines[2]

    def test_scaling_and_figure14_tables(self):
        results = sweep_fattree("reach", [4], monolithic=None)
        scaling = scaling_table(results)
        assert "nodes" in scaling and "20" in scaling
        figure = figure14_table(results)
        assert "SpReach" in figure and "Tp median [s]" in figure

    def test_symmetry_table_partitions_conditions(self, tmp_path):
        """The --stats table: discharged + propagated + reused = conditions."""
        store = str(tmp_path / "delta.json")
        strategy = Modular(delta="reuse", store=store, symmetry="classes")
        cold = sweep_fattree("reach", [4], modular=strategy, monolithic=None)
        warm = sweep_fattree("reach", [4], modular=strategy, monolithic=None)
        table = symmetry_table(cold + warm)
        assert "reused" in table and "delta" in table and "reuse" in table
        warm_row = warm[0].as_row()
        assert warm_row["tp_reused"] == warm_row["tp_conditions"]
        assert warm_row["tp_discharged"] == 0
        assert str(warm_row["tp_reused"]) in table

    def test_internet2_table(self):
        results = sweep_wan([4], internal_routers=4, monolithic=None)
        table = internet2_table(results)
        assert "external" in table and "8" in table

    def test_ghost_state_table(self):
        table = ghost_state_table(node_count=20, edge_count=64)
        assert "reachability to d" in table
        assert "fault tolerance" in table
        assert "64" in table

    def test_lines_of_code_table_structure(self):
        table = lines_of_code_table()
        for benchmark in ("Reach", "Len", "Vf", "Hijack", "BlockToExternal"):
            assert benchmark in table
        assert "interface LoC" in table
