"""End-to-end CLI tests: argv → strategy → session → report → table.

Each test drives ``timepiece-bench`` through :func:`repro.harness.cli.main`
exactly as a shell would, asserting exit codes and printed table output for
the strategy surface (``--symmetry off|classes|spot-check``, ``--backend``,
``--stats``, ``--progress``, ``--json``).
"""

import json

import pytest

from repro.harness.cli import build_argument_parser, main
from repro.smt.incremental import reset_process_solver
from repro.verify import Modular


@pytest.fixture(autouse=True)
def _isolate_process_solver():
    reset_process_solver()
    yield
    reset_process_solver()


class TestParser:
    def test_parser_covers_all_subcommands(self):
        parser = build_argument_parser()
        for command in (
            ["table1"],
            ["table2"],
            ["benchmarks"],
            ["figure1", "--pods", "4"],
            ["internet2"],
        ):
            assert parser.parse_args(command).command == command[0]
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_argv_maps_onto_the_modular_strategy(self):
        from repro.harness.cli import _modular_strategy

        arguments = build_argument_parser().parse_args(
            [
                "figure14",
                "--symmetry",
                "spot-check",
                "--spot-check-seed",
                "9",
                "--backend",
                "fresh",
                "--jobs",
                "2",
                "--stop-on-failure",
            ]
        )
        assert _modular_strategy(arguments) == Modular(
            symmetry="spot-check",
            spot_check_seed=9,
            backend="fresh",
            parallel=2,
            stop_on_failure=True,
        )

    def test_stop_on_failure_defaults_off(self):
        from repro.harness.cli import _modular_strategy

        arguments = build_argument_parser().parse_args(["figure14"])
        assert _modular_strategy(arguments).stop_on_failure is False

    def test_bad_symmetry_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_argument_parser().parse_args(["figure14", "--symmetry", "bogus"])

    def test_jobs_zero_means_sequential(self, capsys):
        code = main(
            ["figure14", "--policy", "reach", "--pods", "4", "--skip-monolithic", "--jobs", "0"]
        )
        assert code == 0
        assert "SpReach" in capsys.readouterr().out

    def test_invalid_benchmark_parameter_is_a_usage_error(self, capsys):
        code = main(["figure14", "--policy", "reach", "--pods", "3", "--skip-monolithic"])
        assert code == 2
        captured = capsys.readouterr()
        assert "timepiece-bench: error:" in captured.err
        assert "even pod count" in captured.err
        assert "Traceback" not in captured.err

    def test_internal_value_errors_are_not_masked_as_usage_errors(self, monkeypatch):
        import repro.harness.cli as cli_module

        def explode(results):
            raise ValueError("internal rendering bug")

        monkeypatch.setattr(cli_module, "figure14_table", explode)
        with pytest.raises(ValueError, match="internal rendering bug"):
            main(["figure14", "--policy", "reach", "--pods", "4", "--skip-monolithic"])

    def test_invalid_strategy_combination_is_a_usage_error(self, capsys):
        code = main(
            [
                "figure14",
                "--pods",
                "4",
                "--skip-monolithic",
                "--backend",
                "persistent",
                "--jobs",
                "2",
            ]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "timepiece-bench: error:" in captured.err
        assert "persistent" in captured.err
        assert "Traceback" not in captured.err


class TestTableCommands:
    def test_table_commands_print(self, capsys):
        assert main(["table1"]) == 0
        assert "reachability to d" in capsys.readouterr().out
        assert main(["table2"]) == 0
        assert "BlockToExternal" in capsys.readouterr().out

    def test_benchmarks_command_lists_registry(self, capsys):
        assert main(["benchmarks"]) == 0
        output = capsys.readouterr().out
        for name in ("fattree/reach", "wan/block_to_external", "ghost/reach"):
            assert name in output
        assert "alias: wan/reach" in output


class TestSweepCommands:
    @pytest.mark.parametrize("symmetry", ["off", "classes", "spot-check"])
    def test_figure14_each_symmetry_mode(self, capsys, symmetry):
        code = main(
            [
                "figure14",
                "--policy",
                "reach",
                "--pods",
                "4",
                "--skip-monolithic",
                "--symmetry",
                symmetry,
                "--stats",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "SpReach" in output
        # --stats adds the symmetry and cache tables.
        assert "discharged" in output
        assert "tseitin_hits" in output
        if symmetry != "off":
            assert symmetry in output

    def test_figure1_command(self, capsys):
        code = main(["figure1", "--pods", "4", "--skip-monolithic"])
        assert code == 0
        assert "Tp total [s]" in capsys.readouterr().out

    def test_internet2_command_runs_small_sweep(self, capsys):
        code = main(
            ["internet2", "--peers", "4", "--internal", "4", "--skip-monolithic"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "BlockToExternal" not in captured.err
        assert "external" in captured.out

    def test_progress_streams_to_stderr(self, capsys):
        code = main(
            [
                "figure14",
                "--policy",
                "reach",
                "--pods",
                "4",
                "--skip-monolithic",
                "--progress",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "strategy: modular(" in captured.err
        assert "initial: ok" in captured.err
        assert "SpReach" in captured.out

    def test_progress_streams_during_parallel_runs(self, capsys):
        code = main(
            [
                "figure14",
                "--policy",
                "reach",
                "--pods",
                "4",
                "--skip-monolithic",
                "--jobs",
                "2",
                "--progress",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "initial: ok" in captured.err
        assert "SpReach" in captured.out

    def test_progress_shows_baseline_verdicts_too(self, capsys):
        """The monolithic engine's event reaches --progress (a tiny timeout
        keeps the baseline cheap; a timed-out run still emits its event)."""
        code = main(
            [
                "figure14",
                "--policy",
                "reach",
                "--pods",
                "4",
                "--timeout",
                "0.01",
                "--progress",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "monolithic" in captured.err

    def test_json_output_carries_cache_counters(self, capsys, tmp_path):
        target = tmp_path / "bench.json"
        code = main(
            [
                "figure14",
                "--policy",
                "reach",
                "--pods",
                "4",
                "--skip-monolithic",
                "--symmetry",
                "classes",
                "--json",
                str(target),
            ]
        )
        assert code == 0
        records = json.loads(target.read_text())
        assert len(records) == 1
        assert records[0]["modular"]["verdict"] == "pass"
        assert records[0]["backend_cache"]["scopes"] >= 1
        assert records[0]["modular"]["symmetry"] == "classes"
