"""Tests for the persistent incremental SMT backend."""

import pytest

from repro import core, smt
from repro.errors import SolverError
from repro.smt.incremental import IncrementalSolver, process_solver, reset_process_solver
from repro.smt.sat.solver import SatStatus
from repro.verify import Modular, verify


@pytest.fixture(autouse=True)
def _isolate_process_solver():
    reset_process_solver()
    yield
    reset_process_solver()


class TestIncrementalSolverBasics:
    def test_simple_sat_and_model(self):
        solver = IncrementalSolver()
        x = smt.bv_var("x", 4)
        solver.add(smt.bv_ult(x, smt.bv_const(4, 4)), smt.bv_ugt(x, smt.bv_const(2, 4)))
        result = solver.check()
        assert result.is_sat
        assert result.model()["x"] == 3

    def test_unsat(self):
        solver = IncrementalSolver()
        a = smt.bool_var("a")
        solver.add(a, smt.not_(a))
        assert solver.check().is_unsat

    def test_trivially_true_and_false(self):
        solver = IncrementalSolver()
        assert solver.check().is_sat  # no assertions at all
        solver.add(smt.true())
        assert solver.check().is_sat
        solver.push()
        solver.add(smt.false())
        assert solver.check().is_unsat
        solver.pop()
        assert solver.check().is_sat

    def test_push_pop_restores_assertions(self):
        solver = IncrementalSolver()
        a, b = smt.bool_var("a"), smt.bool_var("b")
        solver.add(a)
        solver.push()
        solver.add(smt.not_(a))
        assert solver.check().is_unsat
        solver.pop()
        result = solver.check(b)
        assert result.is_sat
        assert result.model()["a"] is True
        assert result.model()["b"] is True

    def test_pop_without_push_raises(self):
        with pytest.raises(SolverError):
            IncrementalSolver().pop()

    def test_non_boolean_assertion_rejected(self):
        solver = IncrementalSolver()
        with pytest.raises(SolverError):
            solver.add(smt.bv_var("x", 4))
        with pytest.raises(SolverError):
            solver.check(smt.bv_const(1, 2))

    def test_reasserting_a_term_is_free(self):
        solver = IncrementalSolver()
        x = smt.bv_var("reused", 8)
        formula = smt.bv_ult(smt.bv_add(x, smt.bv_const(3, 8)), smt.bv_const(100, 8))
        solver.push()
        solver.add(formula)
        assert solver.check().is_sat
        solver.pop()
        encoded = solver.statistics.variables
        assert encoded > 0
        for _ in range(3):
            solver.push()
            solver.add(formula)
            assert solver.check().is_sat
            solver.pop()
        # Re-checking the identical (hash-consed) term encodes nothing new.
        assert solver.statistics.variables == encoded

    def test_shared_subterms_encoded_once(self):
        solver = IncrementalSolver()
        x = smt.bv_var("shared", 8)
        base = smt.bv_ult(x, smt.bv_const(200, 8))
        first = smt.and_(base, smt.bv_ugt(x, smt.bv_const(3, 8)))
        second = smt.and_(base, smt.bv_ugt(x, smt.bv_const(7, 8)))
        solver.push()
        solver.add(first)
        assert solver.check().is_sat
        solver.pop()
        after_first = solver.statistics.variables
        solver.push()
        solver.add(second)
        assert solver.check().is_sat
        solver.pop()
        delta = solver.statistics.variables - after_first
        # The second query pays only for its unshared comparison, which is
        # far smaller than a full re-encoding.
        assert 0 < delta < after_first / 2

    def test_prove_matches_facade(self):
        solver = IncrementalSolver()
        x = smt.bv_var("p", 6)
        bound = smt.bv_const(10, 6)
        valid_goal = smt.implies(smt.bv_ult(x, bound), smt.bv_ule(x, bound))
        invalid_goal = smt.bv_ult(x, bound)
        assert smt.prove(valid_goal, solver=solver).valid
        assert smt.prove(valid_goal).valid
        incremental = smt.prove(invalid_goal, solver=solver)
        fresh = smt.prove(invalid_goal)
        assert not incremental.valid and not fresh.valid
        # Counterexamples may differ, but both must refute the goal.
        assert incremental.counterexample.evaluate(invalid_goal) is False
        assert fresh.counterexample.evaluate(invalid_goal) is False
        # The backend is left balanced: nothing asserted.
        assert solver.assertions == ()

    def test_check_sat_with_reusable_backend(self):
        solver = IncrementalSolver()
        a = smt.bool_var("q")
        assert smt.check_sat(a, solver=solver).is_sat
        assert smt.check_sat(smt.and_(a, smt.not_(a)), solver=solver).is_unsat
        assert solver.assertions == ()

    def test_new_scope_preserves_answers(self):
        solver = IncrementalSolver()
        x = smt.bv_var("scoped", 5)
        formula = smt.bv_ugt(x, smt.bv_const(17, 5))
        solver.add(formula)
        first = solver.check()
        assert first.is_sat
        solver.new_scope()
        second = solver.check()
        assert second.is_sat
        assert second.model()["scoped"] > 17

    def test_scope_rotation_is_automatic_beyond_the_clause_bound(self):
        solver = IncrementalSolver(max_scope_clauses=1)
        x = smt.bv_var("rotated", 6)
        for bound in (10, 20, 30):
            result = solver.check(smt.bv_ult(x, smt.bv_const(bound, 6)))
            assert result.is_sat
            assert result.model()["rotated"] < bound

    def test_compaction_rebuilds_encoding_state(self):
        solver = IncrementalSolver(max_variables=1)
        x = smt.bv_var("compact", 6)
        formula = smt.bv_ult(x, smt.bv_const(13, 6))
        assert smt.prove(smt.implies(formula, smt.bv_ule(x, smt.bv_const(13, 6))), solver=solver).valid
        assert solver.compactions >= 1
        # Still fully functional after the rebuild.
        result = smt.check_sat(formula, solver=solver)
        assert result.is_sat and result.model()["compact"] < 13

    def test_timeout_reports_unknown_not_a_model_error(self):
        result = smt.CheckResult(SatStatus.UNKNOWN, None)
        with pytest.raises(SolverError, match="unknown"):
            result.model()


class TestProcessSolver:
    def test_shared_instance_per_process(self):
        first = process_solver()
        assert process_solver() is first
        reset_process_solver()
        assert process_solver() is not first


_condition_verdicts = core.condition_verdicts


class TestVerificationConditionReuse:
    """Solver reuse across each node's three conditions matches fresh solvers."""

    def test_fattree_verdicts_match_fresh(self):
        from repro.networks import registry

        instance = registry.build("fattree/reach", pods=4)
        fresh = verify(instance.annotated, Modular(backend="fresh"))
        incremental = verify(instance.annotated, Modular(backend="incremental"))
        assert fresh.passed and incremental.passed
        assert _condition_verdicts(fresh) == _condition_verdicts(incremental)

    def test_fattree_failing_property_matches_fresh(self):
        from repro.networks import registry

        instance = registry.build("fattree/reach", pods=4)
        annotated = instance.annotated
        # Break one node's interface so a counterexample must be produced.
        broken = core.annotate(
            annotated.network,
            {
                node: (
                    core.globally(lambda route: route.is_none)
                    if index == 0
                    else annotated.interface(node)
                )
                for index, node in enumerate(annotated.nodes)
            },
        )
        fresh = verify(broken, Modular(backend="fresh"))
        incremental = verify(broken, Modular(backend="incremental"))
        assert not fresh.passed and not incremental.passed
        assert fresh.failed_nodes == incremental.failed_nodes
        assert _condition_verdicts(fresh) == _condition_verdicts(incremental)
        assert incremental.counterexamples()

    def test_wan_verdicts_match_fresh(self):
        from repro.config import WanParameters
        from repro.networks import build_wan_benchmark

        params = WanParameters(internal_routers=4, external_peers=4)
        benchmark = build_wan_benchmark(params)
        fresh = verify(benchmark.annotated, Modular(backend="fresh"))
        incremental = verify(benchmark.annotated, Modular(backend="incremental"))
        assert fresh.passed and incremental.passed
        assert _condition_verdicts(fresh) == _condition_verdicts(incremental)

    def test_buggy_wan_counterexamples_match_fresh(self):
        from repro.config import WanParameters
        from repro.networks import build_wan_benchmark

        params = WanParameters(internal_routers=4, external_peers=4, buggy=True)
        benchmark = build_wan_benchmark(params)
        fresh = verify(benchmark.annotated, Modular(backend="fresh"))
        incremental = verify(benchmark.annotated, Modular(backend="incremental"))
        assert not fresh.passed and not incremental.passed
        assert fresh.failed_nodes == incremental.failed_nodes

    def test_reserved_vc_prefix_is_rejected_for_network_symbolics(self):
        from repro.errors import VerificationError
        from repro.routing import path_topology, shortest_path_network
        from repro.routing.algebra import SymbolicVariable
        from repro.symbolic import SymBool

        topology = path_topology(2)
        network = shortest_path_network(topology, "n0").with_symbolics(
            SymbolicVariable("vc$time", SymBool.fresh("clash"))
        )
        annotated = core.annotate(
            network, {node: core.globally(lambda r: r.is_some) for node in topology.nodes}
        )
        with pytest.raises(VerificationError, match="reserved prefix"):
            verify(annotated)

    def test_awkward_node_names_do_not_alias_query_routes(self):
        # Names differing only in characters the fresh-name sanitiser used to
        # collapse (and names containing the bit-separator '#') must stay
        # distinct under the deterministic vc$ naming scheme.
        from repro.core.conditions import inductive_condition
        from repro.routing import shortest_path_network
        from repro.routing.topology import Topology

        topology = Topology(nodes=["a:b", "a;b", "a#b"])
        topology.add_undirected_edge("a:b", "a;b")
        topology.add_undirected_edge("a;b", "a#b")
        network = shortest_path_network(topology, "a:b")
        annotated = core.annotate(
            network,
            {
                node: core.finally_(index, core.globally(lambda r: r.is_some))
                for index, node in enumerate(("a:b", "a;b", "a#b"))
            },
        )
        condition = inductive_condition(annotated, "a;b")
        route_names = set(condition.neighbor_routes)
        assert route_names == {"a:b", "a#b"}
        report = verify(annotated)
        assert report.passed
        fresh = verify(annotated, Modular(backend="fresh"))
        assert _condition_verdicts(fresh) == _condition_verdicts(report)

    def test_incremental_encodes_fewer_variables(self):
        from repro.networks import registry

        instance = registry.build("fattree/reach", pods=4)
        fresh_before = smt.GLOBAL_STATISTICS.snapshot()
        verify(instance.annotated, Modular(backend="fresh"))
        fresh_stats = smt.GLOBAL_STATISTICS.since(fresh_before)

        incremental_before = smt.GLOBAL_STATISTICS.snapshot()
        verify(instance.annotated, Modular(backend="incremental"))
        verify(instance.annotated, Modular(backend="incremental"))
        incremental_stats = smt.GLOBAL_STATISTICS.since(incremental_before)

        # Two full incremental runs encode fewer CNF variables than one
        # fresh run: the second run is pure cache hits.
        assert 0 < incremental_stats.variables < fresh_stats.variables


class TestLearnedClausePersistence:
    def test_learned_units_carry_across_scopes(self):
        solver = IncrementalSolver(persist_learned=True)
        a = smt.bool_var("carry_a")
        solver.add(a)
        assert solver.check().is_sat
        # Conflict analysis stores length-1 resolvents in the CDCL core's
        # pending-units list (assertions themselves are guarded decisions,
        # so nothing else reaches the root trail); plant one to pin down
        # the harvest path deterministically.
        local = next(iter(solver._var_map.values()))
        solver._sat._pending_units.append(local)
        solver.new_scope()
        assert solver.cache_statistics()["learned_carry_size"] > 0
        # Re-checking the same structure maps the variable again, so the
        # carried unit becomes relevant and is injected into the new scope.
        assert solver.check().is_sat
        assert solver.cache_statistics()["learned_carried"] > 0

    def test_carried_clauses_never_change_answers(self):
        plain = IncrementalSolver()
        persistent = IncrementalSolver(persist_learned=True)
        x = smt.bv_var("carry_x", 5)
        queries = [
            smt.bv_ult(x, smt.bv_const(9, 5)),
            smt.and_(smt.bv_ult(x, smt.bv_const(9, 5)), smt.bv_ugt(x, smt.bv_const(20, 5))),
            smt.bv_ugt(x, smt.bv_const(3, 5)),
        ]
        for query in queries:
            for solver in (plain, persistent):
                solver.new_scope()
            assert plain.check(query).status == persistent.check(query).status
