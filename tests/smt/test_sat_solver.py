"""Tests for the CDCL SAT core (unit tests plus a brute-force fuzz oracle)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.smt.sat import BruteForceSolver, CdclSolver, SatStatus
from repro.smt.sat.heap import ActivityHeap
from repro.smt.sat.solver import luby


class TestLuby:
    def test_first_elements(self):
        assert [luby(i) for i in range(1, 16)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]

    def test_rejects_non_positive(self):
        with pytest.raises(SolverError):
            luby(0)

    def test_values_are_powers_of_two(self):
        for index in range(1, 200):
            value = luby(index)
            assert value & (value - 1) == 0


class TestActivityHeap:
    def test_pop_returns_highest_activity(self):
        activity = [0.0, 1.0, 5.0, 3.0]
        heap = ActivityHeap(activity)
        for variable in (1, 2, 3):
            heap.push(variable)
        assert heap.pop() == 2
        assert heap.pop() == 3
        assert heap.pop() == 1

    def test_push_is_idempotent(self):
        activity = [0.0, 1.0]
        heap = ActivityHeap(activity)
        heap.push(1)
        heap.push(1)
        assert len(heap) == 1

    def test_update_after_bump(self):
        activity = [0.0, 1.0, 2.0, 3.0]
        heap = ActivityHeap(activity)
        for variable in (1, 2, 3):
            heap.push(variable)
        activity[1] = 10.0
        heap.update(1)
        assert heap.pop() == 1

    def test_contains(self):
        heap = ActivityHeap([0.0, 0.0])
        assert 1 not in heap
        heap.push(1)
        assert 1 in heap


class TestCdclBasics:
    def test_empty_problem_is_sat(self):
        assert CdclSolver().solve() == SatStatus.SAT

    def test_single_unit_clause(self):
        solver = CdclSolver()
        solver.add_clause([1])
        assert solver.solve() == SatStatus.SAT
        assert solver.model()[1] is True

    def test_conflicting_units(self):
        solver = CdclSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() == SatStatus.UNSAT

    def test_empty_clause_is_unsat(self):
        solver = CdclSolver()
        solver.add_clause([1, -1])  # tautology, dropped
        solver.add_clause([])
        assert solver.solve() == SatStatus.UNSAT

    def test_zero_literal_rejected(self):
        with pytest.raises(SolverError):
            CdclSolver().add_clause([0])

    def test_simple_implication_chain(self):
        solver = CdclSolver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve() == SatStatus.SAT
        model = solver.model()
        assert model[1] and model[2] and model[3]

    def test_model_satisfies_clauses(self):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]]
        solver = CdclSolver()
        for clause in clauses:
            solver.add_clause(list(clause))
        assert solver.solve() == SatStatus.SAT
        model = solver.model()
        for clause in clauses:
            assert any(model[abs(lit)] == (lit > 0) for lit in clause)

    def test_pigeonhole_3_into_2_unsat(self):
        # Variables p[i][j]: pigeon i sits in hole j.
        def var(pigeon, hole):
            return pigeon * 2 + hole + 1

        solver = CdclSolver()
        for pigeon in range(3):
            solver.add_clause([var(pigeon, 0), var(pigeon, 1)])
        for hole in range(2):
            for first in range(3):
                for second in range(first + 1, 3):
                    solver.add_clause([-var(first, hole), -var(second, hole)])
        assert solver.solve() == SatStatus.UNSAT

    def test_assumptions(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) == SatStatus.SAT
        assert solver.model()[2] is True
        assert solver.solve(assumptions=[-1, -2]) == SatStatus.UNSAT
        # The problem itself is still satisfiable afterwards.
        assert solver.solve() == SatStatus.SAT

    def test_timeout_returns_unknown_or_answer(self):
        solver = CdclSolver()
        for clause in ([1, 2], [-1, 2], [1, -2], [-1, -2, 3]):
            solver.add_clause(list(clause))
        result = solver.solve(timeout=10.0)
        assert result in (SatStatus.SAT, SatStatus.UNKNOWN)

    def test_statistics_populated(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        solver.add_clause([1, -2])
        solver.add_clause([-1, -2, 3])
        solver.solve()
        assert solver.statistics["decisions"] >= 1


class TestAssumptionBacktracking:
    """Regressions for the assumption-state corruption bug.

    ``solve`` used to return UNSAT without unwinding the trail when a later
    assumption was falsified by an earlier assumption's propagation, leaving
    the solver at a nonzero decision level — any subsequent ``add_clause``
    raised and later ``solve`` calls saw a polluted trail.
    """

    def test_failed_assumption_backtracks_to_level_zero(self):
        solver = CdclSolver()
        solver.add_clause([-1, 2])  # 1 implies 2
        # Assuming 1 propagates 2, so the later assumption -2 is falsified.
        assert solver.solve(assumptions=[1, -2]) == SatStatus.UNSAT
        assert solver.decision_level == 0

    def test_add_clause_works_after_failed_assumptions(self):
        solver = CdclSolver()
        solver.add_clause([-1, 2])
        assert solver.solve(assumptions=[1, -2]) == SatStatus.UNSAT
        solver.add_clause([3])  # raised SolverError before the fix
        assert solver.solve() == SatStatus.SAT
        assert solver.model()[3] is True

    def test_resolve_after_failed_assumptions_sees_clean_trail(self):
        solver = CdclSolver()
        solver.add_clause([-1, 2])
        assert solver.solve(assumptions=[1, -2]) == SatStatus.UNSAT
        # The earlier assumption must not linger: -1 alone is satisfiable.
        assert solver.solve(assumptions=[-1]) == SatStatus.SAT
        assert solver.model()[1] is False
        assert solver.solve(assumptions=[1]) == SatStatus.SAT
        assert solver.model()[2] is True

    def test_solver_is_reusable_after_sat(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) == SatStatus.SAT
        assert solver.decision_level == 0
        solver.add_clause([-2, 3])  # adding clauses after SAT must work too
        assert solver.solve(assumptions=[-1]) == SatStatus.SAT
        model = solver.model()
        assert model[2] and model[3]

    def test_late_clause_falsified_by_root_assignments(self):
        # A clause whose literals are all false at level 0 when it arrives
        # must be detected even though propagation never revisits them.
        solver = CdclSolver()
        solver.add_clause([1])
        solver.add_clause([2])
        assert solver.solve() == SatStatus.SAT
        solver.add_clause([-1, -2])
        assert solver.solve() == SatStatus.UNSAT

    def test_assumption_failure_does_not_poison_the_database(self):
        solver = CdclSolver()
        solver.add_clause([-1, 2])
        solver.add_clause([-1, -2])  # 1 is contradictory, 2 free otherwise
        assert solver.solve(assumptions=[1]) == SatStatus.UNSAT
        # The database itself is satisfiable; failure under assumptions must
        # not have set the permanent unsatisfiable flag.
        assert solver.solve() == SatStatus.SAT
        assert solver.model()[1] is False


class TestLearnedClauseDeletion:
    def _hard_random_clauses(self, rng, num_vars=14, num_clauses=60):
        # Random 3-SAT near the phase transition: enough conflicts that the
        # tiny max_learned budgets below actually trigger deletion.
        clauses = []
        for _ in range(num_clauses):
            variables = rng.sample(range(1, num_vars + 1), 3)
            clauses.append([rng.choice([1, -1]) * v for v in variables])
        return clauses

    def test_aggressive_deletion_does_not_change_answers(self):
        rng = random.Random(20260729)
        total_deleted = 0
        for _ in range(30):
            clauses = self._hard_random_clauses(rng)
            aggressive = CdclSolver(max_learned=4)
            brute = BruteForceSolver()
            for clause in clauses:
                aggressive.add_clause(list(clause))
                brute.add_clause(list(clause))
            expected = brute.solve()
            actual = aggressive.solve()
            assert actual == expected, f"disagreement on {clauses}"
            if actual == SatStatus.SAT:
                model = aggressive.model()
                for clause in clauses:
                    assert any(model[abs(lit)] == (lit > 0) for lit in clause)
            total_deleted += aggressive.statistics["deleted"]
        # The tiny budget must actually have exercised the deletion path.
        assert total_deleted > 0

    def test_deletion_under_assumptions(self):
        rng = random.Random(4242)
        for _ in range(15):
            clauses = self._hard_random_clauses(rng)
            assumptions = [rng.choice([1, -1]) * rng.randint(1, 14) for _ in range(2)]
            aggressive = CdclSolver(max_learned=2)
            brute = BruteForceSolver()
            for clause in clauses:
                aggressive.add_clause(list(clause))
                brute.add_clause(list(clause))
            for literal in assumptions:
                brute.add_clause([literal])
            expected = brute.solve()
            actual = aggressive.solve(assumptions=assumptions)
            assert actual == expected, f"disagreement on {clauses} under {assumptions}"
            # Reusable afterwards: the unassumed database answer still agrees.
            plain_brute = BruteForceSolver()
            for clause in clauses:
                plain_brute.add_clause(list(clause))
            assert aggressive.solve() == plain_brute.solve()


def _random_clauses(rng, max_vars=10, max_clauses=40):
    num_vars = rng.randint(1, max_vars)
    num_clauses = rng.randint(1, max_clauses)
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, 3)
        clause = [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(size)]
        clauses.append(clause)
    return clauses


class TestAgainstBruteForce:
    def test_seeded_fuzz(self):
        rng = random.Random(20230615)
        for _ in range(150):
            clauses = _random_clauses(rng)
            cdcl = CdclSolver()
            brute = BruteForceSolver()
            for clause in clauses:
                cdcl.add_clause(list(clause))
                brute.add_clause(list(clause))
            expected = brute.solve()
            actual = cdcl.solve()
            assert actual == expected, f"disagreement on {clauses}"
            if actual == SatStatus.SAT:
                model = cdcl.model()
                for clause in clauses:
                    assert any(model[abs(lit)] == (lit > 0) for lit in clause)

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=6).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_hypothesis_equivalence_with_brute_force(self, clauses):
        cdcl = CdclSolver()
        brute = BruteForceSolver()
        for clause in clauses:
            cdcl.add_clause(list(clause))
            brute.add_clause(list(clause))
        assert cdcl.solve() == brute.solve()


class TestRootImpliedLiterals:
    def test_units_and_their_propagations_are_reported(self):
        from repro.smt.sat.solver import CdclSolver

        solver = CdclSolver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        assert solver.solve().name == "SAT"
        assert {1, 2} <= set(solver.root_implied_literals())
