"""Tests for the SMT solver facade (check/prove/model/push/pop) and bit-blasting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import smt
from repro.errors import SolverError
from repro.smt.bitblast import BitBlaster
from repro.smt.walker import evaluate


class TestCheckSat:
    def test_trivially_true_and_false(self):
        assert smt.check_sat(smt.true()).is_sat
        assert smt.check_sat(smt.false()).is_unsat

    def test_model_for_boolean_query(self):
        a, b = smt.bool_var("a"), smt.bool_var("b")
        result = smt.check_sat(smt.and_(a, smt.not_(b)))
        assert result.is_sat
        model = result.model()
        assert model["a"] is True and model["b"] is False

    def test_model_for_bitvector_query(self):
        x = smt.bv_var("x", 8)
        result = smt.check_sat(smt.and_(smt.bv_ult(smt.bv_const(10, 8), x), smt.bv_ult(x, smt.bv_const(13, 8))))
        assert result.is_sat
        assert result.model()["x"] in (11, 12)

    def test_unsat_has_no_model(self):
        x = smt.bv_var("x", 4)
        result = smt.check_sat(smt.and_(smt.bv_ult(x, smt.bv_const(2, 4)), smt.bv_ugt(x, smt.bv_const(10, 4))))
        assert result.is_unsat
        with pytest.raises(SolverError, match="unsat"):
            result.model()

    def test_model_error_reports_the_actual_status(self):
        # A timed-out query is UNKNOWN, not unsatisfiable — the error message
        # must not claim otherwise.
        from repro.smt.sat.solver import SatStatus

        result = smt.CheckResult(SatStatus.UNKNOWN, None)
        with pytest.raises(SolverError, match="unknown"):
            result.model()
        with pytest.raises(SolverError, match="unsat"):
            smt.CheckResult(SatStatus.UNSAT, None).model()

    def test_model_evaluate_satisfies_goal(self):
        x, y = smt.bv_var("x", 6), smt.bv_var("y", 6)
        goal = smt.and_(smt.eq(smt.bv_add(x, y), smt.bv_const(20, 6)), smt.bv_ult(x, y))
        result = smt.check_sat(goal)
        assert result.is_sat
        assert result.model().evaluate(goal) is True


class TestProve:
    def test_valid_propositional_facts(self):
        a, b = smt.bool_var("a"), smt.bool_var("b")
        assert smt.prove(smt.or_(a, smt.not_(a))).valid
        assert smt.prove(smt.iff(smt.not_(smt.or_(a, b)), smt.and_(smt.not_(a), smt.not_(b)))).valid

    def test_valid_bitvector_facts(self):
        x = smt.bv_var("x", 8)
        assert smt.prove(smt.bv_ule(x, smt.bv_const(255, 8))).valid
        assert smt.prove(smt.eq(smt.bv_add(x, smt.bv_const(0, 8)), x)).valid
        y = smt.bv_var("y", 8)
        assert smt.prove(smt.eq(smt.bv_add(x, y), smt.bv_add(y, x))).valid

    def test_invalid_gives_counterexample(self):
        x = smt.bv_var("x", 8)
        result = smt.prove(smt.bv_ult(x, smt.bv_const(100, 8)))
        assert not result.valid
        assert result.counterexample is not None
        assert result.counterexample["x"] >= 100

    def test_assumptions_are_respected(self):
        x = smt.bv_var("x", 8)
        assumption = smt.bv_ult(x, smt.bv_const(10, 8))
        goal = smt.bv_ult(x, smt.bv_const(20, 8))
        assert smt.prove(goal, assumption).valid
        assert not smt.prove(goal).valid

    def test_contradictory_assumptions_prove_anything(self):
        x = smt.bv_var("x", 4)
        contradiction = smt.and_(smt.bv_ult(x, smt.bv_const(1, 4)), smt.bv_ugt(x, smt.bv_const(2, 4)))
        assert smt.prove(smt.false(), contradiction).valid


class TestSolverObject:
    def test_push_pop(self):
        solver = smt.Solver()
        a = smt.bool_var("a")
        solver.add(a)
        solver.push()
        solver.add(smt.not_(a))
        assert solver.check().is_unsat
        solver.pop()
        assert solver.check().is_sat

    def test_pop_without_push(self):
        with pytest.raises(SolverError):
            smt.Solver().pop()

    def test_only_bool_terms_assertable(self):
        with pytest.raises(SolverError):
            smt.Solver().add(smt.bv_const(1, 4))

    def test_statistics_accumulate(self):
        solver = smt.Solver()
        x = smt.bv_var("x", 8)
        solver.add(smt.eq(smt.bv_add(x, x), smt.bv_const(10, 8)))
        solver.check()
        assert solver.statistics.variables > 0
        assert solver.statistics.clauses > 0


class TestBitBlaster:
    def _equisatisfiable_value(self, term, env):
        """Blasted term evaluates identically to the original under ``env``."""
        blaster = BitBlaster()
        blasted = blaster.blast(term)
        blasted_env = {}
        for name, value in env.items():
            if isinstance(value, bool):
                blasted_env[name] = value
            else:
                for bit in range(16):
                    blasted_env[f"{name}#{bit}"] = bool((value >> bit) & 1)
        return evaluate(term, env), evaluate(blasted, blasted_env)

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=60, deadline=None)
    def test_addition_matches_python(self, left, right):
        x, y = smt.bv_var("bx", 8), smt.bv_var("by", 8)
        term = smt.eq(smt.bv_add(x, y), smt.bv_const((left + right) % 256, 8))
        original, blasted = self._equisatisfiable_value(term, {"bx": left, "by": right})
        assert original is True
        assert blasted is True

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=60, deadline=None)
    def test_comparisons_match_python(self, left, right):
        x, y = smt.bv_var("cx", 8), smt.bv_var("cy", 8)
        env = {"cx": left, "cy": right}
        for builder, expected in (
            (smt.bv_ult, left < right),
            (smt.bv_ule, left <= right),
        ):
            original, blasted = self._equisatisfiable_value(builder(x, y), env)
            assert original == expected
            assert blasted == expected

    def test_subtraction_two_complement(self):
        x, y = smt.bv_var("sx", 8), smt.bv_var("sy", 8)
        term = smt.eq(smt.bv_sub(x, y), smt.bv_const((5 - 9) % 256, 8))
        original, blasted = self._equisatisfiable_value(term, {"sx": 5, "sy": 9})
        assert original is True and blasted is True
