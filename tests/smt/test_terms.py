"""Tests for hash-consed terms."""

import pytest

from repro import smt
from repro.errors import TermError
from repro.smt.terms import Term, free_variables, iter_subterms, term_size


class TestHashConsing:
    def test_identical_constructions_are_shared(self):
        x1 = smt.bool_var("x")
        x2 = smt.bool_var("x")
        assert x1 is x2

    def test_same_structure_is_shared(self):
        a, b = smt.bool_var("a"), smt.bool_var("b")
        left = smt.and_(a, b)
        right = smt.and_(a, b)
        assert left is right

    def test_different_structure_not_shared(self):
        a, b = smt.bool_var("a"), smt.bool_var("b")
        assert smt.and_(a, b) is not smt.or_(a, b)

    def test_bv_constants_shared_by_value_and_width(self):
        assert smt.bv_const(5, 8) is smt.bv_const(5, 8)
        assert smt.bv_const(5, 8) is not smt.bv_const(5, 9)

    def test_equality_is_identity(self):
        a = smt.bool_var("a")
        assert a == a
        assert not (a == smt.bool_var("b"))


class TestConstants:
    def test_bool_constants(self):
        assert smt.true().is_true()
        assert smt.false().is_false()
        assert smt.true().bool_value() is True
        assert smt.false().bool_value() is False
        assert smt.bool_const(True) is smt.true()

    def test_bv_constant_value(self):
        term = smt.bv_const(42, 8)
        assert term.is_bv_const()
        assert term.bv_value() == 42
        assert term.width() == 8

    def test_bv_constant_wraps(self):
        assert smt.bv_const(256, 8).bv_value() == 0

    def test_const_value_dispatch(self):
        assert smt.true().const_value() is True
        assert smt.bv_const(7, 4).const_value() == 7

    def test_value_accessors_reject_wrong_kind(self):
        with pytest.raises(TermError):
            smt.bv_const(1, 4).bool_value()
        with pytest.raises(TermError):
            smt.true().bv_value()
        with pytest.raises(TermError):
            smt.true().var_name()
        with pytest.raises(TermError):
            smt.bool_var("x").width()


class TestTraversal:
    def test_iter_subterms_visits_each_once(self):
        a, b, c = smt.bool_var("a"), smt.bool_var("b"), smt.bool_var("c")
        shared = smt.and_(a, b)
        formula = smt.or_(shared, smt.and_(shared, c))
        visited = list(iter_subterms(formula))
        assert len(visited) == len({t.term_id for t in visited})
        assert shared in visited
        assert a in visited and b in visited and c in visited

    def test_free_variables(self):
        x = smt.bv_var("x", 8)
        y = smt.bv_var("y", 8)
        formula = smt.bv_ult(smt.bv_add(x, y), smt.bv_const(10, 8))
        names = set(free_variables(formula))
        assert names == {"x", "y"}

    def test_term_size_counts_distinct_nodes(self):
        a = smt.bool_var("a")
        assert term_size(a) == 1
        assert term_size(smt.and_(a, smt.bool_var("b"))) == 3

    def test_intern_table_grows(self):
        before = Term.intern_table_size()
        smt.bool_var("completely-new-variable-name-for-intern-test")
        assert Term.intern_table_size() == before + 1

    def test_repr_is_sexpression_like(self):
        a, b = smt.bool_var("a"), smt.bool_var("b")
        assert "and" in repr(smt.and_(a, b))
