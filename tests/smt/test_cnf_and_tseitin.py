"""Tests for the CNF container, DIMACS helpers and the Tseitin encoder."""

import pytest

from repro import smt
from repro.errors import SolverError
from repro.smt import dimacs
from repro.smt.cnf import Cnf
from repro.smt.sat import BruteForceSolver, CdclSolver, SatStatus
from repro.smt.tseitin import TseitinEncoder
from repro.smt.walker import evaluate


class TestCnf:
    def test_variable_allocation(self):
        cnf = Cnf()
        first = cnf.new_var("a")
        second = cnf.new_var()
        assert (first, second) == (1, 2)
        assert cnf.var_for_name("a") == 1
        assert cnf.var_for_name("b") == 3

    def test_duplicate_names_rejected(self):
        cnf = Cnf()
        cnf.new_var("a")
        with pytest.raises(SolverError):
            cnf.new_var("a")

    def test_add_clause_drops_tautologies_and_duplicates(self):
        cnf = Cnf()
        cnf.new_var("a")
        cnf.new_var("b")
        cnf.add_clause([1, -1])
        assert cnf.num_clauses == 0
        cnf.add_clause([1, 1, 2])
        assert cnf.clauses == [[1, 2]]

    def test_out_of_range_literal_rejected(self):
        cnf = Cnf()
        with pytest.raises(SolverError):
            cnf.add_clause([1])
        cnf.new_var()
        with pytest.raises(SolverError):
            cnf.add_clause([0])

    def test_dimacs_output(self):
        cnf = Cnf()
        cnf.new_var()
        cnf.new_var()
        cnf.add_clause([1, -2])
        text = cnf.to_dimacs()
        assert "p cnf 2 1" in text
        assert "1 -2 0" in text


class TestDimacs:
    def test_round_trip(self):
        cnf = Cnf()
        cnf.new_var()
        cnf.new_var()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1, 2])
        text = dimacs.dumps(cnf, comments=["round trip"])
        parsed = dimacs.loads(text)
        assert parsed.num_vars == 2
        assert parsed.clauses == [[1, 2], [-1, 2]]

    def test_loads_requires_header(self):
        with pytest.raises(SolverError):
            dimacs.loads("1 2 0\n")

    def test_file_round_trip(self, tmp_path):
        cnf = Cnf()
        cnf.new_var()
        cnf.add_clause([1])
        path = tmp_path / "problem.cnf"
        dimacs.dump_file(cnf, str(path))
        loaded = dimacs.load_file(str(path))
        assert loaded.clauses == [[1]]


def _solve_with_tseitin(term):
    """Encode a boolean term and return (status, model-evaluated-term)."""
    cnf = Cnf()
    encoder = TseitinEncoder(cnf)
    encoder.assert_term(term)
    solver = CdclSolver()
    solver.ensure_vars(cnf.num_vars)
    for clause in cnf.clauses:
        solver.add_clause(clause)
    status = solver.solve()
    if status != SatStatus.SAT:
        return status, None
    assignment = solver.model()
    env = {name: assignment.get(var, False) for name, var in cnf.name_to_var.items()}
    return status, evaluate(term, env)


class TestTseitin:
    def test_satisfiable_formula_model_satisfies_original(self):
        a, b, c = (smt.bool_var(name) for name in "abc")
        formula = smt.and_(smt.or_(a, b), smt.or_(smt.not_(a), c), smt.eq(b, c))
        status, value = _solve_with_tseitin(formula)
        assert status == SatStatus.SAT
        assert value is True

    def test_unsatisfiable_formula(self):
        a = smt.bool_var("a")
        formula = smt.and_(smt.eq(a, smt.bool_var("b")), a, smt.not_(smt.bool_var("b")))
        status, _ = _solve_with_tseitin(formula)
        assert status == SatStatus.UNSAT

    def test_ite_encoding(self):
        c, a, b = (smt.bool_var(name) for name in "cab")
        formula = smt.and_(smt.ite(c, a, b), smt.not_(a))
        status, value = _solve_with_tseitin(formula)
        assert status == SatStatus.SAT
        assert value is True

    def test_agrees_with_brute_force_on_small_formulas(self):
        a, b, c, d = (smt.bool_var(name) for name in "abcd")
        formulas = [
            smt.and_(smt.or_(a, b, c), smt.or_(smt.not_(a), smt.not_(b)), d),
            smt.eq(smt.and_(a, b), smt.or_(c, d)),
            smt.and_(a, smt.not_(a)),
            smt.or_(smt.and_(a, b), smt.and_(smt.not_(a), smt.not_(b))),
        ]
        for formula in formulas:
            cnf = Cnf()
            encoder = TseitinEncoder(cnf)
            encoder.assert_term(formula)
            cdcl = CdclSolver()
            brute = BruteForceSolver()
            cdcl.ensure_vars(cnf.num_vars)
            for clause in cnf.clauses:
                cdcl.add_clause(list(clause))
                brute.add_clause(list(clause))
            assert cdcl.solve() == brute.solve()
