"""Tests for term traversal: substitution and evaluation."""

import pytest

from repro import smt
from repro.errors import TermError
from repro.smt.walker import evaluate, substitute


class TestSubstitute:
    def test_substitute_variable(self):
        x = smt.bv_var("x", 8)
        formula = smt.bv_add(x, smt.bv_const(1, 8))
        result = substitute(formula, {"x": smt.bv_const(41, 8)})
        assert result.bv_value() == 42

    def test_substitute_folds_through_structure(self):
        a, b = smt.bool_var("a"), smt.bool_var("b")
        formula = smt.and_(a, smt.or_(b, smt.not_(a)))
        result = substitute(formula, {"a": smt.true()})
        assert result is b

    def test_substitute_missing_variables_left_alone(self):
        a, b = smt.bool_var("a"), smt.bool_var("b")
        formula = smt.and_(a, b)
        assert substitute(formula, {"a": a}) is formula

    def test_substitute_sort_mismatch_rejected(self):
        x = smt.bv_var("x", 8)
        with pytest.raises(TermError):
            substitute(x, {"x": smt.true()})

    def test_substitute_shared_subterms_once(self):
        x = smt.bv_var("x", 4)
        shared = smt.bv_add(x, smt.bv_const(1, 4))
        formula = smt.and_(smt.bv_ult(shared, smt.bv_const(5, 4)), smt.bv_ule(shared, smt.bv_const(7, 4)))
        result = substitute(formula, {"x": smt.bv_const(2, 4)})
        assert result is smt.true()


class TestEvaluate:
    def test_evaluate_boolean_structure(self):
        a, b = smt.bool_var("a"), smt.bool_var("b")
        formula = smt.or_(smt.and_(a, b), smt.not_(a))
        assert evaluate(formula, {"a": True, "b": True}) is True
        assert evaluate(formula, {"a": True, "b": False}) is False
        assert evaluate(formula, {"a": False, "b": False}) is True

    def test_evaluate_bitvector_arithmetic(self):
        x, y = smt.bv_var("x", 8), smt.bv_var("y", 8)
        total = smt.bv_add(x, y)
        assert evaluate(total, {"x": 200, "y": 100}) == 44  # wraps at 256
        assert evaluate(smt.bv_sub(x, y), {"x": 3, "y": 5}) == 254
        assert evaluate(smt.bv_ult(x, y), {"x": 3, "y": 5}) is True
        assert evaluate(smt.bv_ule(x, y), {"x": 5, "y": 5}) is True

    def test_evaluate_ite_and_eq(self):
        x = smt.bv_var("x", 4)
        formula = smt.ite(smt.eq(x, smt.bv_const(3, 4)), smt.bv_const(1, 4), smt.bv_const(0, 4))
        assert evaluate(formula, {"x": 3}) == 1
        assert evaluate(formula, {"x": 4}) == 0

    def test_unassigned_variables_default(self):
        a = smt.bool_var("a")
        x = smt.bv_var("x", 8)
        assert evaluate(a, {}) is False
        assert evaluate(x, {}) == 0

    def test_unassigned_variables_strict_mode(self):
        with pytest.raises(TermError):
            evaluate(smt.bool_var("a"), {}, default=False)

    def test_strict_mode_error_names_the_variable(self):
        with pytest.raises(TermError, match="missing_var"):
            evaluate(smt.bool_var("missing_var"), {}, default=False)

    def test_defaults_apply_through_nested_structure(self):
        a, b = smt.bool_var("a"), smt.bool_var("b")
        x = smt.bv_var("x", 4)
        # b defaults to False, x to 0: a ∧ (¬b ∨ x = 1) reduces to a.
        formula = smt.and_(a, smt.or_(smt.not_(b), smt.eq(x, smt.bv_const(1, 4))))
        assert evaluate(formula, {"a": True}) is True
        assert evaluate(formula, {"a": False}) is False

    def test_values_are_masked_to_width(self):
        x = smt.bv_var("x", 4)
        assert evaluate(x, {"x": 300}) == 300 % 16
