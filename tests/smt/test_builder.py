"""Tests for the simplifying term constructors."""

import pytest

from repro import smt
from repro.errors import SortError, TermError


class TestBooleanSimplification:
    def test_not_folds_constants(self):
        assert smt.not_(smt.true()) is smt.false()
        assert smt.not_(smt.false()) is smt.true()

    def test_double_negation(self):
        a = smt.bool_var("a")
        assert smt.not_(smt.not_(a)) is a

    def test_and_neutral_and_absorbing(self):
        a = smt.bool_var("a")
        assert smt.and_(a, smt.true()) is a
        assert smt.and_(a, smt.false()) is smt.false()
        assert smt.and_() is smt.true()

    def test_or_neutral_and_absorbing(self):
        a = smt.bool_var("a")
        assert smt.or_(a, smt.false()) is a
        assert smt.or_(a, smt.true()) is smt.true()
        assert smt.or_() is smt.false()

    def test_and_deduplicates_and_flattens(self):
        a, b, c = (smt.bool_var(n) for n in "abc")
        nested = smt.and_(smt.and_(a, b), smt.and_(b, c))
        assert set(nested.args) == {a, b, c}

    def test_complementary_literals(self):
        a = smt.bool_var("a")
        assert smt.and_(a, smt.not_(a)) is smt.false()
        assert smt.or_(a, smt.not_(a)) is smt.true()

    def test_implication_is_disjunction(self):
        a, b = smt.bool_var("a"), smt.bool_var("b")
        assert smt.implies(a, b) is smt.or_(smt.not_(a), b)
        assert smt.implies(smt.false(), a) is smt.true()
        assert smt.implies(smt.true(), a) is a

    def test_xor_of_equal_terms(self):
        a = smt.bool_var("a")
        assert smt.xor(a, a) is smt.false()

    def test_and_requires_bools(self):
        with pytest.raises(SortError):
            smt.and_(smt.bv_const(1, 4))

    def test_empty_variable_name_rejected(self):
        with pytest.raises(TermError):
            smt.bool_var("")
        with pytest.raises(TermError):
            smt.bv_var("", 4)


class TestIte:
    def test_constant_condition(self):
        a, b = smt.bool_var("a"), smt.bool_var("b")
        assert smt.ite(smt.true(), a, b) is a
        assert smt.ite(smt.false(), a, b) is b

    def test_identical_branches(self):
        c, a = smt.bool_var("c"), smt.bool_var("a")
        assert smt.ite(c, a, a) is a

    def test_boolean_special_cases(self):
        c, a = smt.bool_var("c"), smt.bool_var("a")
        assert smt.ite(c, smt.true(), smt.false()) is c
        assert smt.ite(c, smt.false(), smt.true()) is smt.not_(c)
        assert smt.ite(c, smt.true(), a) is smt.or_(c, a)
        assert smt.ite(c, smt.false(), a) is smt.and_(smt.not_(c), a)

    def test_branch_sorts_must_match(self):
        with pytest.raises(SortError):
            smt.ite(smt.bool_var("c"), smt.true(), smt.bv_const(1, 4))


class TestEquality:
    def test_reflexive(self):
        x = smt.bv_var("x", 8)
        assert smt.eq(x, x) is smt.true()

    def test_constants_folded(self):
        assert smt.eq(smt.bv_const(3, 4), smt.bv_const(3, 4)) is smt.true()
        assert smt.eq(smt.bv_const(3, 4), smt.bv_const(4, 4)) is smt.false()
        assert smt.eq(smt.true(), smt.false()) is smt.false()

    def test_boolean_constant_sides_fold(self):
        a = smt.bool_var("a")
        assert smt.eq(a, smt.true()) is a
        assert smt.eq(smt.false(), a) is smt.not_(a)

    def test_commutative_sharing(self):
        x, y = smt.bv_var("x", 8), smt.bv_var("y", 8)
        assert smt.eq(x, y) is smt.eq(y, x)

    def test_mixed_sorts_rejected(self):
        with pytest.raises(SortError):
            smt.eq(smt.bool_var("a"), smt.bv_const(1, 1))

    def test_distinct(self):
        x, y = smt.bv_var("x", 8), smt.bv_var("y", 8)
        assert smt.distinct(x, x) is smt.false()
        assert smt.distinct(x, y) is smt.not_(smt.eq(x, y))


class TestBitVectorBuilders:
    def test_add_constant_folding(self):
        assert smt.bv_add(smt.bv_const(3, 8), smt.bv_const(4, 8)).bv_value() == 7
        assert smt.bv_add(smt.bv_const(255, 8), smt.bv_const(1, 8)).bv_value() == 0

    def test_add_zero_identity(self):
        x = smt.bv_var("x", 8)
        assert smt.bv_add(x, smt.bv_const(0, 8)) is x
        assert smt.bv_add(smt.bv_const(0, 8), x) is x

    def test_sub_folding(self):
        assert smt.bv_sub(smt.bv_const(4, 8), smt.bv_const(3, 8)).bv_value() == 1
        assert smt.bv_sub(smt.bv_const(0, 8), smt.bv_const(1, 8)).bv_value() == 255
        x = smt.bv_var("x", 8)
        assert smt.bv_sub(x, x).bv_value() == 0
        assert smt.bv_sub(x, smt.bv_const(0, 8)) is x

    def test_comparisons_fold(self):
        three, four = smt.bv_const(3, 8), smt.bv_const(4, 8)
        assert smt.bv_ult(three, four) is smt.true()
        assert smt.bv_ult(four, three) is smt.false()
        assert smt.bv_ule(three, three) is smt.true()
        assert smt.bv_ugt(four, three) is smt.true()
        assert smt.bv_uge(three, four) is smt.false()

    def test_comparison_bounds(self):
        x = smt.bv_var("x", 8)
        assert smt.bv_ult(x, smt.bv_const(0, 8)) is smt.false()
        assert smt.bv_ule(smt.bv_const(0, 8), x) is smt.true()
        assert smt.bv_ule(x, smt.bv_const(255, 8)) is smt.true()
        assert smt.bv_ult(x, x) is smt.false()
        assert smt.bv_ule(x, x) is smt.true()

    def test_width_mismatch_rejected(self):
        with pytest.raises(SortError):
            smt.bv_add(smt.bv_var("x", 8), smt.bv_var("y", 9))
        with pytest.raises(SortError):
            smt.bv_ult(smt.bool_var("a"), smt.bool_var("b"))

    def test_min_max(self):
        three, four = smt.bv_const(3, 8), smt.bv_const(4, 8)
        assert smt.bv_min(three, four).bv_value() == 3
        assert smt.bv_max(three, four).bv_value() == 4

    def test_saturating_add(self):
        assert smt.bv_saturating_add(smt.bv_const(3, 4), smt.bv_const(4, 4)).bv_value() == 7
        assert smt.bv_saturating_add(smt.bv_const(10, 4), smt.bv_const(10, 4)).bv_value() == 15
        assert smt.bv_saturating_add(smt.bv_const(15, 4), smt.bv_const(1, 4)).bv_value() == 15
