"""Tests for the SMT sort system."""

import pytest

from repro.errors import SortError
from repro.smt.sorts import BOOL, BitVecSort, bitvec, check_same_sort, width_for_value


class TestBoolSort:
    def test_bool_is_singleton_like(self):
        assert BOOL.is_bool()
        assert not BOOL.is_bitvec()

    def test_bool_equality(self):
        from repro.smt.sorts import BoolSort

        assert BOOL == BoolSort()


class TestBitVecSort:
    def test_width_must_be_positive(self):
        with pytest.raises(SortError):
            BitVecSort(0)
        with pytest.raises(SortError):
            BitVecSort(-3)

    def test_max_value(self):
        assert BitVecSort(1).max_value == 1
        assert BitVecSort(8).max_value == 255
        assert BitVecSort(16).max_value == 65535

    def test_mask_wraps_values(self):
        sort = BitVecSort(8)
        assert sort.mask(256) == 0
        assert sort.mask(257) == 1
        assert sort.mask(-1) == 255

    def test_structural_equality(self):
        assert bitvec(8) == BitVecSort(8)
        assert bitvec(8) != bitvec(9)
        assert bitvec(4).is_bitvec()

    def test_repr_mentions_width(self):
        assert "8" in repr(bitvec(8))


class TestHelpers:
    def test_check_same_sort_accepts_equal(self):
        assert check_same_sort(bitvec(4), bitvec(4), "test") == bitvec(4)

    def test_check_same_sort_rejects_different(self):
        with pytest.raises(SortError):
            check_same_sort(bitvec(4), bitvec(5), "test")
        with pytest.raises(SortError):
            check_same_sort(BOOL, bitvec(1), "test")

    def test_width_for_value(self):
        assert width_for_value(0) == 1
        assert width_for_value(1) == 1
        assert width_for_value(2) == 2
        assert width_for_value(255) == 8
        assert width_for_value(256) == 9

    def test_width_for_negative_value_rejected(self):
        with pytest.raises(SortError):
            width_for_value(-1)
