"""Tests for the WAN BlockToExternal benchmark and the ghost-state constructions."""

import pytest

from repro import core
from repro.config import BTE_COMMUNITY, WanParameters
from repro.verify import Modular, Monolithic, verify
from repro.networks import (
    build_wan_benchmark,
    block_to_external_predicate,
    ghost_state_catalog,
    no_transit_network,
    reachability_from_destination,
    unordered_waypoint_network,
)


SMALL = WanParameters(internal_routers=4, external_peers=4)


class TestWanBenchmark:
    def test_structure(self):
        benchmark = build_wan_benchmark(SMALL)
        assert benchmark.node_count == 8
        assert len(benchmark.compiled.internal_nodes) == 4
        assert len(benchmark.compiled.external_nodes) == 4
        assert benchmark.config_line_count > 50
        assert BTE_COMMUNITY in benchmark.config_text

    def test_interfaces_follow_node_roles(self):
        benchmark = build_wan_benchmark(SMALL)
        annotated = benchmark.annotated
        # Internal nodes are unconstrained; external nodes carry the isolation
        # predicate (so their interface is not the trivial one).
        internal = benchmark.compiled.internal_nodes[0]
        external = benchmark.compiled.external_nodes[0]
        route = benchmark.compiled.family.route.some(
            benchmark.compiled.family.default_announcement(communities=(BTE_COMMUNITY,))
        )
        from repro.symbolic import SymBV

        width = annotated.time_width()
        time = SymBV.constant(0, width)
        assert annotated.interface(internal)(route, time).concrete_value() is True
        assert annotated.interface(external)(route, time).concrete_value() is False

    def test_block_to_external_verifies_modularly(self):
        benchmark = build_wan_benchmark(SMALL)
        report = verify(benchmark.annotated)
        assert report.passed

    def test_block_to_external_verifies_monolithically(self):
        benchmark = build_wan_benchmark(SMALL)
        report = verify(benchmark.annotated, Monolithic(timeout=120))
        assert report.passed or report.timed_out

    def test_buggy_configuration_is_rejected_with_counterexample(self):
        benchmark = build_wan_benchmark(
            WanParameters(internal_routers=4, external_peers=4, buggy=True)
        )
        report = verify(benchmark.annotated)
        assert not report.passed
        assert "peer0" in report.failed_nodes
        counterexample = report.counterexamples()[0]
        assert counterexample.node == "peer0"

    def test_predicate_semantics(self):
        benchmark = build_wan_benchmark(SMALL)
        family = benchmark.compiled.family
        clean = family.route.some(family.default_announcement())
        tagged = family.route.some(family.default_announcement(communities=(BTE_COMMUNITY,)))
        absent = family.route.none()
        assert block_to_external_predicate(clean).concrete_value() is True
        assert block_to_external_predicate(tagged).concrete_value() is False
        assert block_to_external_predicate(absent).concrete_value() is True

    def test_custom_config_text_is_used(self):
        text = build_wan_benchmark(SMALL).config_text
        again = build_wan_benchmark(SMALL, config_text=text)
        assert again.config_text == text


class TestGhostState:
    def test_catalog_matches_table_1(self):
        rows = {row.property_name: row for row in ghost_state_catalog()}
        assert len(rows) == 8
        assert rows["reachability to d"].bits(20, 64) == 1
        assert rows["routing loops"].bits(20, 64) == 20
        assert rows["fault tolerance"].bits(20, 64) == 64
        assert rows["ordered waypoint"].bits(16, 0) == 4
        assert rows["no-transit"].bits(5, 6) == 2

    def test_reachability_from_destination_verifies(self):
        report = verify(reachability_from_destination())
        assert report.passed

    def test_unordered_waypoint_verifies(self):
        annotated = unordered_waypoint_network()
        report = verify(annotated)
        assert report.passed, report.counterexamples()[:1]

    def test_no_transit_verifies(self):
        report = verify(no_transit_network())
        assert report.passed, report.counterexamples()[:1]


class TestSymmetryFallback:
    """WAN and ghost networks carry no symmetry hints: ``symmetry="classes"``
    must take the generic canonical-hash path (or degrade to singleton
    classes, i.e. per-node checking) with verdicts identical to ``off``."""

    def _agree_across_modes(self, annotated):
        from repro.smt.incremental import reset_process_solver

        assert annotated.symmetry_key is None
        baseline = None
        for mode in ("off", "classes", "spot-check"):
            reset_process_solver()
            report = verify(annotated, Modular(symmetry=mode))
            verdicts = core.condition_verdicts(report)
            if baseline is None:
                baseline = verdicts
            assert verdicts == baseline, mode
        reset_process_solver()
        return report

    def test_wan_generic_path_matches_off(self):
        report = self._agree_across_modes(build_wan_benchmark(SMALL).annotated)
        # structurally identical external peers collapse into shared classes
        assert report.symmetry_classes < len(report.node_reports)

    def test_buggy_wan_counterexamples_survive_symmetry(self):
        from repro.smt.incremental import reset_process_solver

        buggy = WanParameters(internal_routers=4, external_peers=4, buggy=True)
        annotated = build_wan_benchmark(buggy).annotated
        off = verify(annotated, Modular(symmetry="off"))
        reset_process_solver()
        classes = verify(annotated, Modular(symmetry="classes"))
        assert not off.passed
        assert off.failed_nodes == classes.failed_nodes
        assert core.condition_verdicts(off) == core.condition_verdicts(classes)

    def test_ghost_networks_generic_path_matches_off(self):
        for annotated in (
            reachability_from_destination(),
            unordered_waypoint_network(),
            no_transit_network(),
        ):
            self._agree_across_modes(annotated)
