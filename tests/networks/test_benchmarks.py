"""Tests for the fattree benchmark suite (Reach/Len/Vf/Hijack, Sp and Ap)."""

import pytest

from repro import core
from repro.errors import BenchmarkError
from repro.networks import HIJACKER, registry
from repro.verify import verify
from repro.networks.benchmarks import COMPACT_WIDTHS
from repro.routing import simulate


class TestConstruction:
    def test_unknown_policy_rejected(self):
        with pytest.raises(BenchmarkError):
            registry.build("fattree/no-such-policy", pods=4)

    @pytest.mark.parametrize("policy", ["reach", "length", "valley_freedom", "hijack"])
    def test_single_destination_metadata(self, policy):
        benchmark = registry.build(f"fattree/{policy}", pods=4).raw
        assert benchmark.policy == policy
        assert not benchmark.all_pairs
        assert benchmark.destination is not None
        expected_nodes = 20 + (1 if policy == "hijack" else 0)
        assert benchmark.node_count == expected_nodes
        assert benchmark.annotated.max_witness_time() == 4

    @pytest.mark.parametrize("policy", ["reach", "length", "valley_freedom", "hijack"])
    def test_all_pairs_metadata(self, policy):
        benchmark = registry.build(f"fattree/{policy}", pods=4, all_pairs=True).raw
        assert benchmark.all_pairs
        assert benchmark.destination is None
        assert benchmark.network.symbolics  # the symbolic destination (and more)

    def test_hijacker_node_attached_to_all_cores(self):
        benchmark = registry.build("fattree/hijack", pods=4).raw
        topology = benchmark.network.topology
        for core_node in benchmark.fattree.core_nodes:
            assert topology.has_edge(HIJACKER, core_node)
            assert topology.has_edge(core_node, HIJACKER)

    def test_custom_widths_are_used(self):
        widths = dict(COMPACT_WIDTHS, prefix_width=6)
        benchmark = registry.build("fattree/reach", pods=4, widths=widths).raw
        assert benchmark.family.payload.fields["prefix"].width == 6


class TestVerification:
    @pytest.mark.parametrize("policy", ["reach", "length", "valley_freedom", "hijack"])
    def test_single_destination_benchmarks_verify(self, policy):
        benchmark = registry.build(f"fattree/{policy}", pods=4).raw
        report = verify(benchmark.annotated)
        assert report.passed, report.counterexamples()[:1]

    @pytest.mark.parametrize("policy", ["reach", "valley_freedom"])
    def test_all_pairs_benchmarks_verify(self, policy):
        benchmark = registry.build(f"fattree/{policy}", pods=4, all_pairs=True).raw
        report = verify(benchmark.annotated)
        assert report.passed, report.counterexamples()[:1]

    def test_reach_simulation_agrees(self):
        benchmark = registry.build("fattree/reach", pods=4).raw
        stable = simulate(benchmark.network).stable_state()
        assert all(route is not None for route in stable.values())
        destination_route = stable[benchmark.destination]
        assert destination_route["as_path_length"] == 0

    def test_length_simulation_within_bounds(self):
        benchmark = registry.build("fattree/length", pods=4).raw
        stable = simulate(benchmark.network).stable_state()
        destination = benchmark.destination
        for node, route in stable.items():
            assert route is not None
            assert route["as_path_length"] == benchmark.fattree.distance_to_destination(
                node, destination
            )

    def test_valley_freedom_simulation_has_no_down_tags_on_adjacent_nodes(self):
        benchmark = registry.build("fattree/valley_freedom", pods=4).raw
        stable = simulate(benchmark.network).stable_state()
        destination = benchmark.destination
        for node, route in stable.items():
            assert route is not None
            if benchmark.fattree.adjacent_to_destination(node, destination):
                assert "down" not in route["communities"]

    def test_reach_with_too_strong_property_fails(self):
        benchmark = registry.build("fattree/reach", pods=4).raw
        nodes = benchmark.annotated.nodes
        too_strong = {
            node: core.finally_(1, core.globally(lambda r: r.is_some)) for node in nodes
        }
        annotated = core.AnnotatedNetwork(
            benchmark.network,
            interfaces={node: benchmark.annotated.interface(node) for node in nodes},
            properties=too_strong,
        )
        report = verify(annotated)
        assert not report.passed

    def test_broken_valley_freedom_policy_is_caught(self):
        """Dropping *untagged* routes on up edges breaks reachability."""
        from repro.routing import Network
        from repro.routing.bgp import BgpPolicy
        from repro.networks.benchmarks import DOWN_COMMUNITY

        benchmark = registry.build("fattree/valley_freedom", pods=4).raw
        fattree = benchmark.fattree
        network = benchmark.network

        def broken_transfer(edge):
            source, target = edge
            if fattree.is_up_edge(source, target):
                return BgpPolicy(require_communities=(DOWN_COMMUNITY,)).apply
            return network.transfer_function(edge)

        broken = Network(
            topology=network.topology,
            route_shape=network.route_shape,
            initial_routes=network.initial_route,
            transfer_functions=broken_transfer,
            merge=network.merge,
            symbolics=network.symbolics,
        )
        annotated = core.AnnotatedNetwork(
            broken,
            interfaces={n: benchmark.annotated.interface(n) for n in benchmark.annotated.nodes},
            properties={n: benchmark.annotated.node_property(n) for n in benchmark.annotated.nodes},
        )
        report = verify(annotated)
        assert not report.passed
