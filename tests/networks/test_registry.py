"""Tests for the benchmark registry (:mod:`repro.networks.registry`)."""

import pytest

from repro.core.annotations import AnnotatedNetwork
from repro.errors import BenchmarkError
from repro.networks import registry
from repro.networks.registry import BenchmarkSpec, BuiltBenchmark, Parameter
from repro.verify import verify


class TestCatalogue:
    def test_builtin_names(self):
        names = registry.benchmark_names()
        assert {
            "fattree/reach",
            "fattree/length",
            "fattree/valley_freedom",
            "fattree/hijack",
            "wan/block_to_external",
            "ghost/reach",
            "ghost/no_transit",
            "ghost/waypoint",
        } <= set(names)

    def test_aliases_resolve(self):
        assert registry.get_spec("wan/reach") is registry.get_spec("wan/block_to_external")
        assert "wan/reach" in registry.benchmark_names(include_aliases=True)
        assert "wan/reach" not in registry.benchmark_names()

    def test_unknown_name_lists_catalogue(self):
        with pytest.raises(BenchmarkError) as excinfo:
            registry.build("fattree/bogus")
        assert "fattree/reach" in str(excinfo.value)

    def test_specs_carry_descriptions(self):
        for name in registry.benchmark_names():
            assert registry.get_spec(name).description


class TestBuild:
    def test_fattree_build_is_uniform(self):
        built = registry.build("fattree/reach", pods=4)
        assert isinstance(built, BuiltBenchmark)
        assert built.name == "SpReach"
        assert built.node_count == 20
        assert built.parameters == {"pods": 4, "all_pairs": False, "widths": None}
        assert isinstance(built.annotated, AnnotatedNetwork)
        assert built.raw.policy == "reach"

    def test_wan_build_via_alias(self):
        built = registry.build("wan/reach", internal_routers=4, external_peers=4)
        assert built.name == "BlockToExternal"
        assert built.node_count == 8

    def test_ghost_builds_wrap_annotated_networks(self):
        for name in ("ghost/reach", "ghost/no_transit", "ghost/waypoint"):
            built = registry.build(name)
            assert isinstance(built.annotated, AnnotatedNetwork)
            assert built.node_count == built.annotated.network.topology.node_count

    def test_ghost_waypoint_parameter(self):
        built = registry.build("ghost/waypoint", waypoints=("firewall",))
        assert "firewall" in built.annotated.nodes
        assert "scrubber" not in built.annotated.nodes

    def test_built_benchmarks_verify(self):
        report = verify(registry.build("ghost/no_transit").annotated)
        assert report.passed


class TestValidation:
    def test_unknown_parameter_rejected_with_allowed_list(self):
        with pytest.raises(BenchmarkError) as excinfo:
            registry.build("fattree/reach", pods=4, frobnicate=True)
        assert "frobnicate" in str(excinfo.value)
        assert "pods" in str(excinfo.value)

    def test_type_checked(self):
        with pytest.raises(BenchmarkError, match="must be int"):
            registry.build("fattree/reach", pods="four")
        with pytest.raises(BenchmarkError, match="must be bool"):
            registry.build("fattree/reach", pods=4, all_pairs="yes")

    def test_range_checked_before_building(self):
        with pytest.raises(BenchmarkError, match="even pod count"):
            registry.build("fattree/reach", pods=5)
        with pytest.raises(BenchmarkError, match="at least 3"):
            registry.build("wan/block_to_external", internal_routers=1)

    def test_bool_is_not_an_int(self):
        with pytest.raises(BenchmarkError, match="must be int"):
            registry.build("fattree/reach", pods=True)

    def test_none_rejected_unless_default_is_none(self):
        with pytest.raises(BenchmarkError, match="'pods' must be int"):
            registry.build("fattree/reach", pods=None)
        # widths defaults to None, so None stays allowed there.
        assert registry.build("fattree/reach", pods=4, widths=None).name == "SpReach"


class TestRegistration:
    def test_duplicate_names_rejected(self):
        with pytest.raises(BenchmarkError, match="already registered"):
            registry.register(
                BenchmarkSpec(name="fattree/reach", builder=lambda: None, description="dup")
            )

    def test_custom_registration_round_trip(self):
        spec = BenchmarkSpec(
            name="test/tiny",
            builder=lambda: registry.build("ghost/reach").annotated,
            description="a test-only entry",
            parameters=(),
        )
        registry.register(spec)
        try:
            built = registry.build("test/tiny")
            assert built.name == "test/tiny"
            assert isinstance(built.annotated, AnnotatedNetwork)
        finally:
            registry._REGISTRY.pop("test/tiny")

    def test_parameter_validate_reports_benchmark_and_value(self):
        parameter = Parameter("n", int, 1, check=lambda v: None if v > 0 else "must be positive")
        with pytest.raises(BenchmarkError, match=r"'bench'.*'n' must be positive.*-3"):
            parameter.validate("bench", -3)
