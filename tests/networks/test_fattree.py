"""Tests for the fattree topology generator and role/distance metadata."""

import pytest

from repro.errors import BenchmarkError
from repro.networks import AGGREGATION, CORE, EDGE, Fattree, fattree_size, pods_for_node_budget


class TestStructure:
    def test_node_and_edge_counts_match_the_paper(self):
        """A k-fattree has 1.25·k² nodes and k³ directed edges."""
        for pods in (4, 6, 8):
            fattree = Fattree(pods)
            assert fattree.node_count == fattree_size(pods) == int(1.25 * pods * pods)
            assert fattree.topology.edge_count == pods**3

    def test_pod_count_validation(self):
        with pytest.raises(BenchmarkError):
            Fattree(3)
        with pytest.raises(BenchmarkError):
            Fattree(0)

    def test_roles_partition_the_nodes(self):
        fattree = Fattree(4)
        assert len(fattree.core_nodes) == 4
        assert len(fattree.aggregation_nodes) == 8
        assert len(fattree.edge_nodes) == 8
        assert set(fattree.nodes) == set(
            fattree.core_nodes + fattree.aggregation_nodes + fattree.edge_nodes
        )

    def test_pod_metadata(self):
        fattree = Fattree(4)
        assert fattree.pod_of("core-0") is None
        assert fattree.pod_of("agg-2-1") == 2
        assert fattree.role("edge-3-0") == EDGE
        assert fattree.role("agg-0-0") == AGGREGATION
        assert fattree.role("core-1") == CORE
        assert len(fattree.edge_nodes_of_pod(1)) == 2
        assert len(fattree.aggregation_nodes_of_pod(1)) == 2
        with pytest.raises(BenchmarkError):
            fattree.role("nonexistent")

    def test_wiring(self):
        fattree = Fattree(4)
        topology = fattree.topology
        # Aggregation switches connect to every edge switch of their pod...
        assert topology.has_edge("agg-0-0", "edge-0-1")
        assert topology.has_edge("edge-0-1", "agg-0-0")
        # ...but not to other pods' edge switches.
        assert not topology.has_edge("agg-0-0", "edge-1-0")
        # Aggregation switch i connects to core group i.
        assert topology.has_edge("agg-0-0", "core-0") and topology.has_edge("agg-0-0", "core-1")
        assert not topology.has_edge("agg-0-0", "core-2")
        assert topology.has_edge("agg-0-1", "core-2") and topology.has_edge("agg-0-1", "core-3")

    def test_up_down_edge_classification(self):
        fattree = Fattree(4)
        assert fattree.is_down_edge("core-0", "agg-0-0")
        assert fattree.is_down_edge("agg-0-0", "edge-0-0")
        assert fattree.is_up_edge("edge-0-0", "agg-0-0")
        assert fattree.is_up_edge("agg-0-0", "core-0")
        assert not fattree.is_down_edge("edge-0-0", "agg-0-0")

    def test_fattree_is_strongly_connected_with_diameter_four(self):
        fattree = Fattree(4)
        assert fattree.topology.is_strongly_connected()
        assert fattree.topology.diameter() == 4

    def test_pods_for_node_budget(self):
        assert pods_for_node_budget(20) == [4]
        assert pods_for_node_budget(100) == [4, 6, 8]
        assert pods_for_node_budget(10) == []


class TestDistances:
    def test_distance_cases_match_section_6(self):
        fattree = Fattree(4)
        destination = "edge-1-1"
        assert fattree.distance_to_destination(destination, destination) == 0
        assert fattree.distance_to_destination("agg-1-0", destination) == 1
        assert fattree.distance_to_destination("core-3", destination) == 2
        assert fattree.distance_to_destination("edge-1-0", destination) == 2
        assert fattree.distance_to_destination("agg-0-1", destination) == 3
        assert fattree.distance_to_destination("edge-3-0", destination) == 4

    def test_distances_agree_with_bfs(self):
        fattree = Fattree(4)
        destination = fattree.default_destination()
        bfs = fattree.topology.bfs_distances(destination)
        for node in fattree.nodes:
            assert fattree.distance_to_destination(node, destination) == bfs[node]

    def test_destination_must_be_an_edge_node(self):
        fattree = Fattree(4)
        with pytest.raises(BenchmarkError):
            fattree.distance_to_destination("edge-0-0", "core-0")

    def test_adjacency_to_destination(self):
        fattree = Fattree(4)
        destination = "edge-2-0"
        assert fattree.adjacent_to_destination(destination, destination)
        assert fattree.adjacent_to_destination("agg-2-1", destination)
        assert not fattree.adjacent_to_destination("edge-2-1", destination)
        assert not fattree.adjacent_to_destination("core-0", destination)
        assert not fattree.adjacent_to_destination("agg-0-0", destination)
