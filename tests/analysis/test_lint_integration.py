"""End-to-end lint integration: registry hygiene, seeded mutations, zero SAT.

This file enforces the two-sided contract of the static-analysis layer:
healthy benchmarks lint *clean* (info notes allowed), the documented seeded
mutations are *detected*, and linting performs no solver work whatsoever —
no SAT checks, no bit-blasting, no Tseitin encoding.  It also covers the
session/CLI wiring: ``Session.run(lint=...)``, ``verify(..., lint=...)``
and the ``timepiece-bench lint`` subcommand.
"""

import json

import pytest

from repro import core, smt
from repro.analysis import lint_benchmark, lint_network
from repro.analysis.mutations import (
    add_unused_community,
    lower_witness_time,
    make_interface_vacuous,
)
from repro.config import WanParameters, generate_wan_config
from repro.errors import AnalysisError, VerificationError
from repro.harness.cli import main as cli_main
from repro.networks import registry
from repro.networks.wan import build_wan_benchmark
from repro.routing import path_topology, shortest_path_network
from repro.smt.incremental import process_cache_statistics
from repro.verify import LINT_MODES, Session, verify


def reach_example(broken_node=None):
    """A 3-node reachability path; optionally plant the §3 bug on one node."""
    topology = path_topology(3)
    network = shortest_path_network(topology, "n0")
    interfaces = {
        node: core.finally_(index, core.globally(lambda r: r.is_some))
        for index, node in enumerate(("n0", "n1", "n2"))
    }
    if broken_node is not None:
        # Demand the route one step before it can arrive.
        distance = int(broken_node[1])
        interfaces[broken_node] = core.finally_(
            distance - 1, core.globally(lambda r: r.is_some)
        )
    return core.annotate(network, interfaces)


class TestRegistryHygiene:
    @pytest.mark.parametrize(
        "name", ["fattree/reach", "ghost/reach", "wan/block_to_external"]
    )
    def test_benchmarks_lint_clean(self, name):
        # The CI lint-smoke covers the full registry; this keeps a cheap
        # cross-family sample inside the tier-1 suite.
        report = lint_benchmark(registry.build(name))
        assert report.clean, report.describe()
        assert report.target == registry.build(name).name
        assert report.passes  # every registered pass ran

    def test_lint_performs_no_solver_work(self):
        solver_before = smt.GLOBAL_STATISTICS.snapshot()
        cache_before = process_cache_statistics()
        lint_benchmark(registry.build("fattree/reach"))
        lint_network(reach_example(broken_node="n2"))
        assert smt.GLOBAL_STATISTICS.since(solver_before).checks == 0
        assert process_cache_statistics() == cache_before


class TestSeededMutations:
    def test_witness_time_mutation_detected(self):
        built = registry.build("fattree/reach")
        mutated, node, distance = lower_witness_time(built.annotated)
        report = lint_network(mutated, name="mutated")
        assert "TP004" in report.codes()
        [finding] = report.by_code("TP004")
        assert finding.node == node
        assert f"{distance} hops away" in finding.message
        # The mutated member genuinely diverges from its symmetry class.
        assert "TP008" in report.codes()

    def test_vacuous_interface_mutation_detected(self):
        built = registry.build("fattree/reach")
        mutated, node = make_interface_vacuous(built.annotated)
        report = lint_network(mutated, name="mutated")
        assert "TP002" in report.codes()
        assert any(finding.node == node for finding in report.by_code("TP002"))

    def test_unused_community_mutation_detected(self):
        parameters = WanParameters(internal_routers=4, external_peers=2)
        mutated_text = add_unused_community(generate_wan_config(parameters))
        wan = build_wan_benchmark(parameters, config_text=mutated_text)
        report = lint_network(
            wan.annotated, config=wan.compiled.resolved, name="mutated"
        )
        [finding] = report.by_code("TP010")
        assert "LINT-UNUSED" in finding.message
        assert finding.line is not None

    def test_mutation_detection_needs_no_solver(self):
        solver_before = smt.GLOBAL_STATISTICS.snapshot()
        cache_before = process_cache_statistics()
        built = registry.build("fattree/reach")
        mutated, _, _ = lower_witness_time(built.annotated)
        assert not lint_network(mutated).clean
        assert smt.GLOBAL_STATISTICS.since(solver_before).checks == 0
        assert process_cache_statistics() == cache_before


class TestSessionWiring:
    def test_strict_mode_fails_fast_before_any_dispatch(self):
        annotated = reach_example(broken_node="n2")
        solver_before = smt.GLOBAL_STATISTICS.snapshot()
        with pytest.raises(AnalysisError) as excinfo:
            Session(annotated).run(lint="strict")
        assert any(finding.code == "TP004" for finding in excinfo.value.diagnostics)
        # Fail-fast means fail-before-SAT.
        assert smt.GLOBAL_STATISTICS.since(solver_before).checks == 0

    def test_strict_mode_passes_clean_networks_through(self):
        report = Session(reach_example()).run(lint="strict")
        assert report.verdict == "pass"
        assert report.diagnostics == []

    def test_warn_mode_attaches_diagnostics_and_serialises(self):
        report = Session(reach_example(broken_node="n2")).run(lint="warn")
        # The SAT run corroborates what lint predicted without a solver.
        assert report.verdict == "fail"
        assert any(finding.code == "TP004" for finding in report.diagnostics)
        payload = report.to_json()
        assert any(entry["code"] == "TP004" for entry in payload["diagnostics"])

    def test_no_lint_means_no_diagnostics(self):
        report = Session(reach_example()).run()
        assert report.diagnostics == []

    def test_verify_forwards_the_lint_keyword(self):
        with pytest.raises(AnalysisError):
            verify(reach_example(broken_node="n2"), lint="strict")

    def test_unknown_lint_mode_rejected_eagerly(self):
        assert LINT_MODES == ("warn", "strict")
        with pytest.raises(VerificationError):
            Session(reach_example()).run(lint="loud")


class TestCliLint:
    def test_lint_subcommand_clean_benchmark_exits_zero(self, capsys):
        assert cli_main(["lint", "fattree/reach"]) == 0
        out = capsys.readouterr().out
        assert "lint clean" in out

    def test_lint_subcommand_writes_json(self, tmp_path, capsys):
        path = tmp_path / "lint.json"
        assert cli_main(["lint", "fattree/reach", "--json", str(path)]) == 0
        capsys.readouterr()
        [entry] = json.loads(path.read_text())
        assert entry["clean"] is True
        assert entry["target"] == "SpReach"

    def test_lint_subcommand_unknown_benchmark_exits_two(self, capsys):
        assert cli_main(["lint", "no/such_benchmark"]) == 2
        assert "no/such_benchmark" in capsys.readouterr().err
