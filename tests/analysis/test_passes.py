"""Unit tests for the individual lint passes and their building blocks."""

import pytest

from repro import core
from repro.analysis import (
    AnalysisPass,
    LintTarget,
    available_passes,
    lint_network,
    register_pass,
)
from repro.analysis.configlint import ConfigLintPass
from repro.analysis.distance import DistancePass, earliest_route_demand, origin_distances
from repro.analysis.sortcheck import check_term_sorts, term_path
from repro.analysis.vacuity import conjuncts, propagate, unit_assignments
from repro.config import analyze, parse_config
from repro.errors import AnalysisError
from repro.routing import path_topology, shortest_path_network
from repro.smt.sorts import BOOL, BitVecSort
from repro.smt.terms import FALSE, OP_AND, OP_BVCONST, OP_ITE, OP_NOT, TRUE, make_term
from repro.symbolic import SymBV, SymBool


def reach(interfaces=None, properties=None, symmetry_key=None):
    """A 3-node path annotated for reachability, with optional overrides."""
    topology = path_topology(3)
    network = shortest_path_network(topology, "n0")
    if interfaces is None:
        interfaces = {
            node: core.finally_(index, core.globally(lambda r: r.is_some))
            for index, node in enumerate(("n0", "n1", "n2"))
        }
    if properties is None:
        properties = {
            node: core.finally_(2, core.globally(lambda r: r.is_some))
            for node in topology.nodes
        }
    return core.AnnotatedNetwork(network, interfaces, properties, symmetry_key=symmetry_key)


class TestSortChecker:
    def test_well_sorted_cone_is_clean(self):
        x, y = SymBool.variable("x"), SymBool.variable("y")
        assert check_term_sorts((x & ~y).term) == []

    def test_ill_sorted_argument_reported_with_path(self):
        x = SymBool.variable("x")
        clock = SymBV.variable("clock", 4)
        bad = make_term(OP_NOT, (clock.term,), None, BOOL)
        root = make_term(OP_AND, (x.term, bad), None, BOOL)
        problems = check_term_sorts(root)
        assert any(term is bad and "argument 0 of not" in message for term, message in problems)
        assert term_path(root, bad) == "and[1]"

    def test_unknown_operator_reported(self):
        rogue = make_term("frobnicate", (), None, BOOL)
        [(term, message)] = check_term_sorts(rogue)
        assert term is rogue
        assert "unknown operator" in message

    def test_wrong_arity_reported(self):
        x, y = SymBool.variable("x"), SymBool.variable("y")
        truncated = make_term(OP_ITE, (x.term, y.term), None, BOOL)
        [(_, message)] = check_term_sorts(truncated)
        assert "expects 3 argument(s), got 2" in message

    def test_bvconst_out_of_range_reported(self):
        oversized = make_term(OP_BVCONST, (), 999, BitVecSort(4))
        [(_, message)] = check_term_sorts(oversized)
        assert "out of range" in message

    def test_visited_set_collects_only_clean_cones(self):
        x = SymBool.variable("x")
        clock = SymBV.variable("clock", 4)
        bad = make_term(OP_NOT, (clock.term,), None, BOOL)
        root = make_term(OP_AND, (x.term, bad), None, BOOL)
        visited: set[int] = set()
        assert check_term_sorts(root, visited)
        assert x.term.term_id in visited  # the clean leaf is cleared
        assert bad.term_id not in visited  # offenders are re-reported next run
        assert root.term_id not in visited  # ...and so is anything containing one
        clean_root = (x & SymBool.variable("y")).term
        assert check_term_sorts(clean_root, visited) == []
        assert clean_root.term_id in visited
        # A second walk over a cleared cone prunes immediately.
        assert check_term_sorts(clean_root, visited) == []


class TestConstraintPropagation:
    def test_conjuncts_flatten_nested_conjunctions(self):
        x, y, z = (SymBool.variable(name) for name in "xyz")
        term = ((x & y) & z).term
        assert {conjunct.payload for conjunct in conjuncts(term)} == {"x", "y", "z"}

    def test_unit_assignments_recognise_all_unit_shapes(self):
        x, y = SymBool.variable("x"), SymBool.variable("y")
        clock = SymBV.variable("clock", 4)
        assumptions = (x & ~y & (clock == SymBV.constant(2, 4))).term
        units = unit_assignments(assumptions)
        assert units["x"] is TRUE
        assert units["y"] is FALSE
        assert units["clock"].payload == 2

    def test_unit_assignments_detect_contradictory_constants(self):
        clock = SymBV.variable("clock", 4)
        both = ((clock == SymBV.constant(2, 4)) & (clock == SymBV.constant(3, 4))).term
        assert unit_assignments(both) is None

    def test_propagate_refutes_goal_under_units(self):
        x = SymBool.variable("x")
        clock = SymBV.variable("clock", 4)
        assumptions = (x & (clock == SymBV.constant(2, 4))).term
        goal = (clock == SymBV.constant(3, 4)).term
        folded_assumptions, folded_goal = propagate(assumptions, goal)
        assert folded_assumptions.is_bool_const() and folded_assumptions.bool_value()
        assert folded_goal.is_false()

    def test_propagate_collapses_contradictory_assumptions(self):
        clock = SymBV.variable("clock", 4)
        assumptions = ((clock == SymBV.constant(2, 4)) & (clock == SymBV.constant(3, 4))).term
        goal = SymBool.variable("x").term
        folded_assumptions, _ = propagate(assumptions, goal)
        assert folded_assumptions.is_false()


class TestVacuityPass:
    def test_trivially_false_interface_is_tp003(self):
        annotated = reach(
            interfaces={
                "n0": core.globally(lambda r: r.is_some),
                "n1": core.finally_(1, core.globally(lambda r: r.is_some)),
                "n2": core.globally(lambda r: SymBool.false()),
            }
        )
        report = lint_network(annotated)
        findings = report.by_code("TP003")
        assert [finding.node for finding in findings] == ["n2"]
        # TP003 is the root cause: n2 itself gets no per-condition or distance
        # findings (the neighbour n1, whose inductive assumptions embed the
        # contradictory interface, legitimately reports TP005).
        assert not report.by_code("TP004")
        assert all(finding.node != "n2" for finding in report.by_code("TP005"))

    def test_vacuously_true_interface_is_tp002(self):
        annotated = reach(
            interfaces={
                "n0": core.globally(lambda r: r.is_some),
                "n1": core.finally_(1, core.globally(lambda r: r.is_some)),
                "n2": core.always_true(),
            }
        )
        report = lint_network(annotated)
        assert [finding.node for finding in report.by_code("TP002")] == ["n2"]

    def test_always_true_interface_with_trivial_property_is_not_tp002(self):
        annotated = reach(
            interfaces={node: core.always_true() for node in ("n0", "n1", "n2")},
            properties={node: core.always_true() for node in ("n0", "n1", "n2")},
        )
        report = lint_network(annotated)
        assert not report.by_code("TP002")
        # Fully unconstrained nodes are coverage notes instead...
        assert len(report.by_code("TP007")) == 3
        # ...and notes alone keep the report clean.
        assert report.clean

    def test_constant_false_property_is_tp006(self):
        annotated = reach(properties={
            "n0": core.always_true(),
            "n1": core.always_true(),
            "n2": core.globally(lambda r: SymBool.false()),
        })
        report = lint_network(annotated)
        findings = report.by_code("TP006")
        assert findings
        assert all(finding.node == "n2" for finding in findings)
        assert any(finding.condition == "safety" for finding in findings)


class TestDistancePass:
    def test_origin_distances_bfs(self):
        annotated = reach()
        assert origin_distances(annotated.network) == {"n0": 0, "n1": 1, "n2": 2}

    def test_earliest_route_demand_probes_concrete_times(self):
        annotated = reach()
        target = LintTarget(annotated)
        # F^2(G(has route)) tolerates the absent route until time 2.
        assert earliest_route_demand(target, "n2", probe_limit=3) == 2
        assert earliest_route_demand(target, "n2", probe_limit=2) is None

    def test_witness_time_below_distance_is_tp004(self):
        annotated = reach(
            interfaces={
                "n0": core.finally_(0, core.globally(lambda r: r.is_some)),
                "n1": core.finally_(1, core.globally(lambda r: r.is_some)),
                # n2 sits two hops from the origin but demands a route at time 1.
                "n2": core.finally_(1, core.globally(lambda r: r.is_some)),
            }
        )
        report = lint_network(annotated)
        [finding] = report.by_code("TP004")
        assert finding.node == "n2"
        assert "2 hops away" in finding.message

    def test_consistent_interfaces_are_not_flagged(self):
        report = lint_network(reach())
        assert not report.by_code("TP004")
        assert report.clean


class TestCoveragePass:
    def test_inconsistent_symmetry_class_is_tp008(self):
        annotated = reach(symmetry_key=lambda node: "tail" if node != "n0" else None)
        # n1 and n2 share a hint key but carry different witness times.
        report = lint_network(annotated)
        [finding] = report.by_code("TP008")
        assert finding.node == "n1"  # the representative
        assert "'n2'" in finding.message

    def test_consistent_symmetry_class_is_silent(self):
        shared = core.finally_(2, core.globally(lambda r: r.is_some))
        annotated = reach(
            interfaces={"n0": core.globally(lambda r: r.is_some), "n1": shared, "n2": shared},
            symmetry_key=lambda node: "tail" if node != "n0" else None,
        )
        # n2's interface is loose but identical to n1's: no TP008 (the
        # inductive failure, if any, is the verifier's to find on the
        # representative).
        assert not lint_network(annotated).by_code("TP008")


class TestLintTarget:
    def test_deep_nodes_without_hint_is_every_node(self):
        target = LintTarget(reach())
        assert target.deep_nodes() == target.nodes

    def test_deep_nodes_with_hint_keeps_representatives_and_unhinted(self):
        annotated = reach(symmetry_key=lambda node: "tail" if node != "n0" else None)
        target = LintTarget(annotated)
        assert target.deep_nodes() == ("n0", "n1")

    def test_interface_values_fold_constants_only(self):
        annotated = reach(
            interfaces={
                "n0": core.always_true(),
                "n1": core.globally(lambda r: SymBool.false()),
                "n2": core.globally(lambda r: r.is_some),
            }
        )
        target = LintTarget(annotated)
        assert target.interface_value("n0") is True
        assert target.interface_value("n1") is False
        assert target.interface_value("n2") is None

    def test_targets_for_the_same_network_share_memos(self):
        annotated = reach()
        first = LintTarget(annotated)
        first.conditions("n1")
        second = LintTarget(annotated)
        assert second.memo("conditions") is first.memo("conditions")
        assert "n1" in second.memo("conditions")


class TestPassRegistry:
    def test_builtin_passes_all_registered(self):
        # Registration order follows import order, so only membership is stable.
        assert set(available_passes()) == {"sorts", "vacuity", "distance", "coverage", "config"}

    def test_register_requires_a_name(self):
        class Nameless(AnalysisPass):
            name = ""

        with pytest.raises(AnalysisError):
            register_pass(Nameless)

    def test_register_rejects_duplicate_names(self):
        class Duplicate(AnalysisPass):
            name = "sorts"

        with pytest.raises(AnalysisError):
            register_pass(Duplicate)


HYGIENE_CONFIG = """
community GOLD members 65535:1;
community UNUSED members 65535:2;
prefix-list internal { 10; }
prefix-list dead { 99; }
policy-statement keep {
    term all { then { accept; } }
    term never { then { reject; } }
}
policy-statement GOLD {
    term by-list { from { prefix-list internal; } then { accept; } }
    term by-tag { from { community GOLD; } then { accept; } }
}
router a {
    announce prefix 10;
    neighbor b { import keep; export GOLD; }
}
router b {
    neighbor a { import keep; }
}
"""


class TestConfigLintPass:
    def test_config_findings_map_to_stable_codes(self):
        resolved = analyze(parse_config(HYGIENE_CONFIG))
        report = lint_network(reach(), config=resolved, passes=[ConfigLintPass()])
        assert report.codes() == ("TP009", "TP010", "TP011", "TP012")
        [unreachable] = report.by_code("TP009")
        assert "'never'" in unreachable.message
        [unused_community] = report.by_code("TP010")
        assert unused_community.source == "community 'UNUSED'"
        assert unused_community.line is not None
        [unused_list] = report.by_code("TP011")
        assert "'dead'" in unused_list.message
        [shadowed] = report.by_code("TP012")
        assert "'GOLD'" in shadowed.message

    def test_targets_without_config_skip_the_pass(self):
        report = lint_network(reach(), passes=[ConfigLintPass()])
        assert len(report) == 0
        assert report.passes == ("config",)


class TestDistanceHelpers:
    def test_distance_pass_abstains_without_option_routes(self):
        class Opaque:
            route_shape = object()
            topology = None

        assert origin_distances(Opaque()) is None
        assert list(DistancePass().run(LintTarget(reach()))) == []
