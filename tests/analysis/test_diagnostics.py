"""Tests for the diagnostic model: codes, reports, strict-mode raising."""

import pytest

from repro.analysis import CODES, SEVERITIES, Diagnostic, LintReport, diagnostic, merge_lint_reports
from repro.errors import AnalysisError


class TestDiagnostic:
    def test_every_code_has_a_fixed_severity(self):
        for code, (severity, title) in CODES.items():
            assert severity in SEVERITIES
            assert title
            assert diagnostic(code, "msg").severity == severity

    def test_unknown_code_rejected(self):
        with pytest.raises(AnalysisError):
            diagnostic("TP999", "nope")

    def test_describe_includes_code_severity_and_location(self):
        finding = diagnostic("TP004", "too early", node="core-0", condition="inductive")
        line = finding.describe()
        assert line.startswith("TP004 error")
        assert "[core-0/inductive]" in line
        assert "too early" in line

    def test_config_location_rendering(self):
        finding = diagnostic("TP010", "unused", source="community 'GOLD'", line=3, column=1)
        assert "community 'GOLD' (line 3, column 1)" in finding.location()

    def test_to_json_round_trips_all_fields(self):
        finding = diagnostic("TP001", "bad sort", node="a", term_path="goal/and[0]")
        payload = finding.to_json()
        assert payload["code"] == "TP001"
        assert payload["severity"] == "error"
        assert payload["term_path"] == "goal/and[0]"
        assert Diagnostic(**{k: payload[k] for k in (
            "code", "message", "node", "condition", "term_path", "source", "line", "column"
        )}) == finding

    def test_diagnostics_sort_deterministically(self):
        a = diagnostic("TP002", "m", node="a")
        b = diagnostic("TP004", "m", node="a")
        assert sorted([b, a]) == [a, b]


class TestLintReport:
    def _report(self, *codes):
        return LintReport(diagnostics=tuple(diagnostic(code, "msg") for code in codes))

    def test_clean_allows_infos(self):
        assert self._report().clean
        assert self._report("TP007").clean
        assert not self._report("TP002").clean
        assert not self._report("TP004").clean

    def test_by_severity_partitions(self):
        report = self._report("TP004", "TP002", "TP007", "TP003")
        assert [d.code for d in report.errors] == ["TP004", "TP003"]
        assert [d.code for d in report.warnings] == ["TP002"]
        assert [d.code for d in report.infos] == ["TP007"]
        with pytest.raises(AnalysisError):
            report.by_severity("fatal")

    def test_codes_sorted_and_by_code(self):
        report = self._report("TP007", "TP004", "TP004")
        assert report.codes() == ("TP004", "TP007")
        assert len(report.by_code("TP004")) == 2
        with pytest.raises(AnalysisError):
            report.by_code("TP999")

    def test_summary_counts(self):
        report = self._report("TP004", "TP007")
        assert "1 error(s)" in report.summary()
        assert "1 info(s)" in report.summary()
        assert "lint clean" in self._report().summary()

    def test_raise_for_findings_carries_offenders_only(self):
        report = self._report("TP004", "TP007")
        with pytest.raises(AnalysisError) as excinfo:
            report.raise_for_findings(context="unit test")
        assert "unit test" in str(excinfo.value)
        assert [d.code for d in excinfo.value.diagnostics] == ["TP004"]
        self._report("TP007").raise_for_findings()  # clean: no raise

    def test_merge_concatenates_and_dedupes_pass_names(self):
        merged = merge_lint_reports(
            [
                LintReport(diagnostics=(diagnostic("TP004", "m"),), passes=("a", "b"), wall_time=0.1),
                LintReport(diagnostics=(diagnostic("TP010", "m"),), passes=("b", "c"), wall_time=0.2),
            ],
            target="merged",
        )
        assert merged.codes() == ("TP004", "TP010")
        assert merged.passes == ("a", "b", "c")
        assert merged.wall_time == pytest.approx(0.3)
        assert merged.target == "merged"

    def test_iteration_and_length(self):
        report = self._report("TP004", "TP007")
        assert len(report) == 2
        assert [d.code for d in report] == ["TP004", "TP007"]
