"""Tests for semantic analysis, policy compilation and the WAN generator."""

import pytest

from repro.config import (
    BTE_COMMUNITY,
    WanParameters,
    analyze,
    generate_wan_config,
    load_config,
    parse_config,
)
from repro.config.semantics import lint
from repro.errors import BenchmarkError, ConfigSemanticError
from repro.routing import simulate

VALID = """
community GOLD members 65535:1;
prefix-list internal { 10; }
policy-statement keep { term all { then { accept; } } }
router a {
    announce prefix 10;
    neighbor b { import keep; export keep; }
}
router b {
    neighbor a { import keep; export keep; }
}
"""


class TestSemantics:
    def test_valid_configuration(self):
        resolved = analyze(parse_config(VALID))
        assert resolved.internal_routers == ("a", "b")
        assert resolved.external_routers == ()
        assert resolved.community_names == ("GOLD",)
        assert resolved.prefixes_in_list("internal") == (10,)

    def test_implicit_external_routers(self):
        source = VALID + "\nrouter c { neighbor mystery { import keep; } }\n"
        resolved = analyze(parse_config(source))
        assert "mystery" in resolved.external_routers
        assert "mystery" in resolved.all_nodes

    @pytest.mark.parametrize(
        "snippet,message_part",
        [
            ("community GOLD members 65535:2;", "duplicate community"),
            ("policy-statement keep { term all { then { accept; } } }", "duplicate policy"),
            ("router a { }", "duplicate router"),
            (
                "policy-statement empty { }",
                "no terms",
            ),
            (
                "policy-statement bad { term t { from { community NOPE; } then { accept; } } }",
                "undeclared",
            ),
            (
                "policy-statement bad { term t { from { prefix-list nope; } then { accept; } } }",
                "undeclared",
            ),
            (
                "policy-statement bad { term t { then { add community NOPE; accept; } } }",
                "undeclared",
            ),
            (
                "policy-statement bad { term t { then { set med 3; } } }",
                "never accepts",
            ),
            ("router z { neighbor z { import keep; } }", "itself"),
            ("router z { neighbor a { import missing-policy; } }", "undeclared policy"),
        ],
    )
    def test_semantic_errors(self, snippet, message_part):
        with pytest.raises(ConfigSemanticError) as excinfo:
            analyze(parse_config(VALID + "\n" + snippet))
        assert message_part.split()[0] in str(excinfo.value)

    def test_duplicate_terms_rejected(self):
        source = """
        policy-statement p {
            term t { then { accept; } }
            term t { then { reject; } }
        }
        """
        with pytest.raises(ConfigSemanticError):
            analyze(parse_config(source))


#: A configuration where every declaration is referenced — the lint baseline.
TIDY = """
community GOLD members 65535:1;
prefix-list internal { 10; }
policy-statement keep {
    term pick { from { prefix-list internal; } then { accept; } }
    term tag { from { community GOLD; } then { accept; } }
}
router a {
    announce prefix 10;
    neighbor b { import keep; export keep; }
}
router b {
    neighbor a { import keep; export keep; }
}
"""


class TestConfigLint:
    """Hygiene findings: consumable configs that probably don't mean what
    their author intended.  The static-analysis layer maps these to TP009–
    TP012 diagnostics (see tests/analysis/test_passes.py)."""

    def _findings(self, source):
        return lint(analyze(parse_config(source)))

    def test_tidy_config_has_no_findings(self):
        assert self._findings(TIDY) == ()

    def test_unreachable_terms_after_catch_all(self):
        source = TIDY + (
            "\npolicy-statement both {"
            " term all { then { accept; } }"
            " term late { then { reject; } } }\n"
        )
        [finding] = self._findings(source)
        assert finding.kind == "unreachable-term"
        assert "'late'" in finding.message and "'all'" in finding.message
        assert finding.source == "policy 'both'"
        assert finding.location is not None

    def test_unused_community_and_prefix_list(self):
        source = TIDY + "\ncommunity SPARE members 65535:9;\nprefix-list idle { 42; }\n"
        findings = self._findings(source)
        assert {finding.kind for finding in findings} == {
            "unused-community",
            "unused-prefix-list",
        }
        messages = " ".join(finding.message for finding in findings)
        assert "'SPARE'" in messages and "'idle'" in messages

    def test_shadowed_names_across_namespaces(self):
        source = TIDY + "\npolicy-statement GOLD { term t { then { accept; } } }\n"
        [finding] = self._findings(source)
        assert finding.kind == "shadowed-name"
        assert "'GOLD'" in finding.message
        assert "community" in finding.message and "policy-statement" in finding.message

    def test_findings_never_block_compilation(self):
        source = TIDY + "\ncommunity SPARE members 65535:9;\n"
        resolved = analyze(parse_config(source))
        assert self._findings(source)
        assert "SPARE" in resolved.community_names


POLICY_BEHAVIOUR = """
community GOLD members 65535:1;
community BTE members 65535:666;
prefix-list internal { 10; 11; }

policy-statement shape {
    term reject-internal {
        from { prefix-list internal; }
        then { reject; }
    }
    term boost-gold {
        from { community GOLD; }
        then { set local-preference 200; add community BTE; accept; }
    }
    term tag-prefix-99 {
        from { prefix 99; }
        then { prepend as-path 3; accept; }
    }
}

router a {
    announce prefix 20;
    neighbor b { export shape; }
}
router b {
    neighbor a { }
}
"""


class TestPolicyCompilation:
    def _compiled(self):
        return load_config(POLICY_BEHAVIOUR)

    def _route(self, compiled, **overrides):
        values = compiled.family.default_announcement()
        values.update(overrides)
        return compiled.family.route.some(values)

    def test_first_match_reject(self):
        compiled = self._compiled()
        shape = compiled.policies["shape"]
        assert shape(self._route(compiled, prefix=10)).is_none.concrete_value() is True
        assert shape(self._route(compiled, prefix=11)).is_none.concrete_value() is True

    def test_actions_applied_on_match(self):
        compiled = self._compiled()
        shape = compiled.policies["shape"]
        boosted = shape(self._route(compiled, prefix=20, communities=("GOLD",)))
        assert boosted.is_some.concrete_value() is True
        assert boosted.payload.lp.concrete_value() == 200
        assert boosted.payload.communities.contains("BTE").concrete_value() is True

    def test_prepend_and_prefix_match(self):
        compiled = self._compiled()
        shape = compiled.policies["shape"]
        prepended = shape(self._route(compiled, prefix=99, as_path_length=1))
        assert prepended.payload.as_path_length.concrete_value() == 4

    def test_default_reject_when_no_term_matches(self):
        compiled = self._compiled()
        shape = compiled.policies["shape"]
        unmatched = shape(self._route(compiled, prefix=20))
        assert unmatched.is_none.concrete_value() is True

    def test_absent_routes_stay_absent(self):
        compiled = self._compiled()
        shape = compiled.policies["shape"]
        assert shape(compiled.family.route.none()).is_none.concrete_value() is True

    def test_compiled_network_structure(self):
        compiled = self._compiled()
        topology = compiled.network.topology
        assert topology.has_edge("a", "b") and topology.has_edge("b", "a")
        assert compiled.internal_nodes == ("a", "b")

    def test_transfer_composes_export_and_increment(self):
        compiled = self._compiled()
        outgoing = compiled.network.transfer(
            ("a", "b"), self._route(compiled, prefix=20, communities=("GOLD",))
        )
        # export sets lp=200 and adds BTE, then the session adds one hop.
        assert outgoing.payload.lp.concrete_value() == 200
        assert outgoing.payload.as_path_length.concrete_value() == 1


class TestGeneratorAndSimulation:
    def test_generated_config_is_well_formed(self):
        parameters = WanParameters(internal_routers=5, external_peers=7)
        resolved = analyze(parse_config(generate_wan_config(parameters)))
        assert len(resolved.internal_routers) == 5
        assert len(resolved.external_routers) == 7
        assert BTE_COMMUNITY in resolved.community_names

    def test_generator_parameter_validation(self):
        with pytest.raises(BenchmarkError):
            WanParameters(internal_routers=2)
        with pytest.raises(BenchmarkError):
            WanParameters(external_peers=0)

    def test_buggy_variant_differs(self):
        clean = generate_wan_config(WanParameters(internal_routers=4, external_peers=4))
        buggy = generate_wan_config(WanParameters(internal_routers=4, external_peers=4, buggy=True))
        assert "export-to-external-buggy" in buggy
        assert "export-to-external-buggy" not in clean

    def test_closed_generated_network_simulates(self):
        """With concrete initial routes the compiled WAN converges."""
        parameters = WanParameters(internal_routers=4, external_peers=4)
        compiled = load_config(generate_wan_config(parameters))
        # Externals have symbolic announcements, so bind them closed first.
        closed = load_config(
            generate_wan_config(parameters), symbolic_internal_initials=False
        )
        # Replace external symbolic announcements by "no route" for simulation.
        network = closed.network
        from repro.routing import Network

        concrete = Network(
            topology=network.topology,
            route_shape=network.route_shape,
            initial_routes=lambda node: (
                closed.family.route.none()
                if node in closed.external_nodes
                else network.initial_route(node)
            ),
            transfer_functions=network.transfer_function,
            merge=network.merge,
        )
        trace = simulate(concrete, max_rounds=40)
        assert trace.converged
        stable = trace.stable_state()
        # Every external peer hears some internal prefix.
        externals_with_routes = [node for node in closed.external_nodes if stable[node] is not None]
        assert externals_with_routes
        # No external peer ever sees the BTE community in the stable state.
        for node in closed.external_nodes:
            if stable[node] is not None:
                assert BTE_COMMUNITY not in stable[node]["communities"]
        assert compiled.network.topology.node_count == concrete.topology.node_count
