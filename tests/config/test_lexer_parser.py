"""Tests for the policy-DSL lexer and parser."""

import pytest

from repro.config import parse_config, tokenize
from repro.config.tokens import TokenKind
from repro.errors import ConfigSyntaxError

SAMPLE = """
# A small but complete configuration.
community BTE members 65535:666;
community GOLD members 65535:1;

prefix-list internal { 10; 11; }

policy-statement import-peer {
    term reject-internal {
        from { prefix-list internal; }
        then { reject; }
    }
    term classify {
        from { community GOLD; prefix 99; }
        then {
            set local-preference 200;
            set med 5;
            add community GOLD;
            remove community BTE;
            prepend as-path 2;
            accept;
        }
    }
    term default {
        then { accept; }
    }
}

router edge1 {
    announce prefix 10;
    neighbor edge2 { import import-peer; export import-peer; }
    neighbor peer1 { import import-peer; }
}

router peer1 {
    external;
    neighbor edge1 { }
}
"""


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("policy-statement x { term t { then { accept; } } }")
        kinds = [token.kind for token in tokens]
        assert kinds[0] == TokenKind.IDENTIFIER
        assert TokenKind.LEFT_BRACE in kinds
        assert TokenKind.SEMICOLON in kinds
        assert kinds[-1] == TokenKind.EOF

    def test_numbers_and_community_values(self):
        tokens = tokenize("10 65535:666 hello-world a.b.c")
        assert tokens[0].kind == TokenKind.NUMBER and tokens[0].text == "10"
        assert tokens[1].kind == TokenKind.IDENTIFIER and tokens[1].text == "65535:666"
        assert tokens[2].text == "hello-world"
        assert tokens[3].text == "a.b.c"

    def test_comments_are_skipped(self):
        tokens = tokenize("# line comment\n/* block\ncomment */ router")
        assert tokens[0].text == "router"

    def test_string_literals(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind == TokenKind.STRING
        assert tokens[0].text == "hello world"

    def test_positions_are_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_lexical_errors(self):
        with pytest.raises(ConfigSyntaxError):
            tokenize("router @")
        with pytest.raises(ConfigSyntaxError):
            tokenize('"unterminated')
        with pytest.raises(ConfigSyntaxError):
            tokenize("/* unterminated")


class TestParser:
    def test_full_sample_parses(self):
        config = parse_config(SAMPLE)
        assert [c.name for c in config.communities] == ["BTE", "GOLD"]
        assert config.prefix_lists[0].prefixes == (10, 11)
        assert config.policy_names() == ["import-peer"]
        assert config.router_names() == ["edge1", "peer1"]

    def test_policy_structure(self):
        config = parse_config(SAMPLE)
        policy = config.policies[0]
        assert [term.name for term in policy.terms] == ["reject-internal", "classify", "default"]
        classify = policy.terms[1]
        assert {match.kind for match in classify.matches} == {"community", "prefix"}
        kinds = [action.kind for action in classify.actions]
        assert kinds == ["set-lp", "set-med", "add-community", "remove-community", "prepend", "accept"]
        assert classify.terminal_action is not None
        assert classify.terminal_action.kind == "accept"

    def test_router_structure(self):
        config = parse_config(SAMPLE)
        edge1, peer1 = config.routers
        assert edge1.announced_prefixes == (10,)
        assert not edge1.external
        assert [n.name for n in edge1.neighbors] == ["edge2", "peer1"]
        assert edge1.neighbors[0].import_policy == "import-peer"
        assert edge1.neighbors[1].export_policy is None
        assert peer1.external
        assert peer1.neighbors[0].import_policy is None

    def test_statistics(self):
        stats = parse_config(SAMPLE).statistics()
        assert stats["communities"] == 2
        assert stats["policies"] == 1
        assert stats["terms"] == 3
        assert stats["routers"] == 2
        assert stats["sessions"] == 3

    @pytest.mark.parametrize(
        "source",
        [
            "bogus-top-level;",
            "community X members;",
            "prefix-list P { nope; }",
            "policy-statement P { term t { then { accept } } }",  # missing semicolon
            "policy-statement P { term t { then { explode; } } }",
            "policy-statement P { term t { from { bogus x; } then { accept; } } }",
            "policy-statement P { term t { then { set colour 3; } } }",
            "router r { neighbor n { paint red; } }",
            "router r { announce 10; }",
        ],
    )
    def test_syntax_errors(self, source):
        with pytest.raises(ConfigSyntaxError):
            parse_config(source)

    def test_error_locations_reported(self):
        try:
            parse_config("router r {\n  bogus;\n}")
        except ConfigSyntaxError as error:
            assert error.line == 2
        else:
            pytest.fail("expected a syntax error")
