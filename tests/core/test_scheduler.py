"""Tests for the adaptive class scheduler: windows, work-stealing, skew.

The destination quotient collapses all-pairs benchmarks into a handful of
classes — fewer classes than workers, and wildly uneven sizes.  These tests
pin the scheduler semantics on a *synthetic* skewed partition (one giant
class plus singletons over a cheap path network), independent of the
quotient itself: the split plan is deterministic, splits keep multiple
workers busy, verdicts and report order match the unsplit baseline, and the
crash / stop-on-failure / degrade contracts of the pre-refactor dispatcher
are unchanged.
"""

import multiprocessing
import os

import pytest

from repro import core
from repro.core.parallel import (
    MAX_WINDOW,
    SCHEDULER_MODES,
    SchedulerStats,
    _class_work_items,
    _window_size,
    check_classes_in_parallel,
)
from repro.core.symmetry import SymmetryClass
from repro.routing import path_topology, shortest_path_network
from repro.verify import Modular, verify


def _assert_no_orphaned_workers():
    for child in multiprocessing.active_children():
        child.join(timeout=10)
    assert multiprocessing.active_children() == []


def _verdicts(reports):
    return [
        (report.node, [(result.condition, result.holds) for result in report.results])
        for report in reports
    ]


class TestWindowSize:
    def test_decays_to_one_at_the_tail(self):
        assert _window_size(1, 4) == 1
        assert _window_size(4, 4) == 1
        assert _window_size(0, 4) == 1

    def test_grows_with_backlog_up_to_the_cap(self):
        assert _window_size(8, 4) == 2
        assert _window_size(9, 4) == 3
        assert _window_size(1000, 4) == MAX_WINDOW

    def test_degenerate_worker_counts(self):
        assert _window_size(10, 0) == 1
        assert _window_size(10, -1) == 1


def _classes(*groups):
    return [SymmetryClass(key=index, members=tuple(group)) for index, group in enumerate(groups)]


class TestSplitPlan:
    def test_splits_largest_class_in_place_until_workers_covered(self):
        classes = _classes(("a", "b", "c", "d"), ("e",))
        stats = SchedulerStats()
        items = _class_work_items(classes, 4, core.CONDITION_KINDS, "adaptive", stats)
        # The giant class splits into one item per condition kind, at its
        # original position, so dispatch order still follows class order.
        assert items == [(0, (kind,)) for kind in core.CONDITION_KINDS] + [(1, None)]
        assert stats.classes_stolen == 1

    def test_plan_is_deterministic_on_ties(self):
        classes = _classes(("a", "b"), ("c", "d"), ("e", "f"))
        first = _class_work_items(classes, 8, core.CONDITION_KINDS, "adaptive", SchedulerStats())
        second = _class_work_items(classes, 8, core.CONDITION_KINDS, "adaptive", SchedulerStats())
        assert first == second
        # Ties break to the earliest class.
        assert first[0] == (0, (core.CONDITION_KINDS[0],))

    def test_fixed_scheduler_and_single_job_never_split(self):
        classes = _classes(("a", "b", "c", "d"), ("e",))
        for jobs, scheduler in ((4, "fixed"), (1, "adaptive")):
            stats = SchedulerStats()
            items = _class_work_items(classes, jobs, core.CONDITION_KINDS, scheduler, stats)
            assert items == [(0, None), (1, None)]
            assert stats.classes_stolen == 0

    def test_spot_check_classes_are_never_split(self):
        classes = [
            SymmetryClass(key=0, members=("a", "b", "c", "d"), spot_member="b"),
            SymmetryClass(key=1, members=("e",)),
        ]
        stats = SchedulerStats()
        items = _class_work_items(classes, 8, core.CONDITION_KINDS, "adaptive", stats)
        # Only the splittable singleton can be stolen; the spot-check class
        # must stay whole (its extra member is compared against the full
        # verdict vector in one place).
        assert (0, None) in items
        assert all(index != 0 or sub is None for index, sub in items)

    def test_single_condition_kind_cannot_split(self):
        classes = _classes(("a", "b", "c", "d"))
        stats = SchedulerStats()
        items = _class_work_items(classes, 4, ("inductive",), "adaptive", stats)
        assert items == [(0, None)]
        assert stats.classes_stolen == 0


class TestSkewedPartition:
    """End-to-end scheduler runs over a synthetic one-giant-class partition."""

    def _annotated(self, length=6):
        topology = path_topology(length)
        network = shortest_path_network(topology, "n0")
        interfaces = {
            node: core.finally_(index, core.globally(lambda r: r.is_some))
            for index, node in enumerate(topology.nodes)
        }
        return core.annotate(network, interfaces)

    def _skewed_classes(self, annotated):
        # One giant class of the interior nodes (same in-degree, so the
        # class is structurally plausible) plus the endpoint singletons —
        # the shape the destination quotient produces on all-pairs runs.
        return [
            SymmetryClass(key="interior", members=("n1", "n2", "n3", "n4")),
            SymmetryClass(key="head", members=("n0",)),
            SymmetryClass(key="tail", members=("n5",)),
        ]

    def test_work_stealing_keeps_multiple_workers_busy(self):
        annotated = self._annotated()
        classes = self._skewed_classes(annotated)
        stats = SchedulerStats()
        reports, totals = check_classes_in_parallel(
            annotated,
            classes,
            delay=0,
            jobs=4,
            conditions=core.CONDITION_KINDS,
            fail_fast=True,
            stats=stats,
        )
        # Deterministic report order: class order, members in member order.
        assert [report.node for report in reports] == [
            member for cls in classes for member in cls.members
        ]
        # 3 classes < 4 workers forced a split of the giant class...
        assert stats.classes_stolen >= 1
        # ...which kept at least two distinct worker processes busy.
        assert len(stats.worker_pids) >= 2
        assert sum(stats.window.values()) >= len(classes)
        assert totals is not None
        _assert_no_orphaned_workers()

    def test_split_and_fixed_schedulers_agree_on_verdicts(self):
        annotated = self._annotated()
        classes = self._skewed_classes(annotated)
        adaptive_stats = SchedulerStats()
        adaptive, _ = check_classes_in_parallel(
            annotated,
            classes,
            delay=0,
            jobs=4,
            conditions=core.CONDITION_KINDS,
            fail_fast=True,
            stats=adaptive_stats,
        )
        fixed, _ = check_classes_in_parallel(
            annotated,
            classes,
            delay=0,
            jobs=4,
            conditions=core.CONDITION_KINDS,
            fail_fast=True,
            scheduler="fixed",
        )
        assert adaptive_stats.classes_stolen >= 1
        assert _verdicts(adaptive) == _verdicts(fixed)
        _assert_no_orphaned_workers()

    def test_adaptive_runs_are_reproducible(self):
        annotated = self._annotated()
        classes = self._skewed_classes(annotated)
        first, _ = check_classes_in_parallel(
            annotated, classes, delay=0, jobs=4,
            conditions=core.CONDITION_KINDS, fail_fast=True,
        )
        second, _ = check_classes_in_parallel(
            annotated, classes, delay=0, jobs=4,
            conditions=core.CONDITION_KINDS, fail_fast=True,
        )
        assert _verdicts(first) == _verdicts(second)
        _assert_no_orphaned_workers()

    def test_unknown_scheduler_is_rejected(self):
        annotated = self._annotated()
        classes = self._skewed_classes(annotated)
        with pytest.raises(ValueError, match="unknown scheduler"):
            check_classes_in_parallel(
                annotated, classes, delay=0, jobs=2,
                conditions=core.CONDITION_KINDS, fail_fast=True,
                scheduler="eager",
            )
        assert "adaptive" in SCHEDULER_MODES and "fixed" in SCHEDULER_MODES

    def test_crash_propagates_through_split_plan(self):
        topology = path_topology(6)
        network = shortest_path_network(topology, "n0")

        def exploding_predicate(route):
            raise RuntimeError("worker exploded")

        annotated = core.annotate(
            network,
            {node: core.globally(exploding_predicate) for node in topology.nodes},
        )
        classes = self._skewed_classes(annotated)
        with pytest.raises(RuntimeError, match="worker exploded"):
            check_classes_in_parallel(
                annotated, classes, delay=0, jobs=4,
                conditions=core.CONDITION_KINDS, fail_fast=True,
            )
        _assert_no_orphaned_workers()

    def test_degraded_run_matches_pool_window_accounting(self, monkeypatch):
        """Satellite contract: the sequential-degrade path records the same
        adaptive window accounting the pool path would have used."""
        annotated = self._annotated()
        classes = self._skewed_classes(annotated)
        pooled_stats = SchedulerStats()
        pooled, _ = check_classes_in_parallel(
            annotated, classes, delay=0, jobs=4,
            conditions=core.CONDITION_KINDS, fail_fast=True, stats=pooled_stats,
        )

        import repro.core.parallel as parallel

        class _FailingContext:
            def Pool(self, processes):
                raise OSError("no semaphores on this platform")

        monkeypatch.setattr(
            parallel.multiprocessing, "get_context", lambda kind: _FailingContext()
        )
        degraded_stats = SchedulerStats()
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            degraded, _ = check_classes_in_parallel(
                annotated, classes, delay=0, jobs=4,
                conditions=core.CONDITION_KINDS, fail_fast=True, stats=degraded_stats,
            )
        assert _verdicts(degraded) == _verdicts(pooled)
        assert degraded_stats.window == pooled_stats.window
        assert degraded_stats.classes_stolen == pooled_stats.classes_stolen
        assert degraded_stats.worker_pids == {os.getpid()}
        _assert_no_orphaned_workers()


class TestSchedulerReportPlumbing:
    def test_stop_on_failure_and_scheduler_stats_in_report(self):
        topology = path_topology(4)
        network = shortest_path_network(topology, "n0")
        # Every interface claims the node never has a route: the source's
        # initial condition fails immediately.
        annotated = core.annotate(
            network, {node: core.globally(lambda r: r.is_none) for node in topology.nodes}
        )
        report = verify(
            annotated, Modular(symmetry="classes", parallel=2, stop_on_failure=True)
        )
        assert not report.passed
        assert report.stopped_early
        assert report.conditions_skipped > 0
        assert report.scheduler is not None
        assert set(report.scheduler) == {"classes_stolen", "window", "workers"}
        assert "stopped early" in report.summary()
        assert "scheduler" in report.summary()
        _assert_no_orphaned_workers()

    def test_sequential_run_reports_no_scheduler(self):
        topology = path_topology(3)
        network = shortest_path_network(topology, "n0")
        interfaces = {
            node: core.finally_(index, core.globally(lambda r: r.is_some))
            for index, node in enumerate(topology.nodes)
        }
        annotated = core.annotate(network, interfaces)
        report = verify(annotated, Modular(symmetry="classes"))
        assert report.passed
        assert report.scheduler is None
