"""Tests for annotated networks and the three verification conditions."""

import pytest

from repro import core
from repro.core.conditions import inductive_condition, initial_condition, safety_condition
from repro.errors import VerificationError
from repro.routing import build_running_example, path_topology, shortest_path_network


def reach_example():
    """A 3-node path with shortest-path routing, annotated for reachability."""
    topology = path_topology(3)
    network = shortest_path_network(topology, "n0")
    interfaces = {
        node: core.finally_(index, core.globally(lambda r: r.is_some))
        for index, node in enumerate(("n0", "n1", "n2"))
    }
    properties = {
        node: core.finally_(2, core.globally(lambda r: r.is_some)) for node in topology.nodes
    }
    return core.AnnotatedNetwork(network, interfaces, properties)


class TestAnnotatedNetwork:
    def test_missing_interface_detected(self):
        example = build_running_example("none")
        with pytest.raises(VerificationError):
            core.AnnotatedNetwork(example.network, {"n": core.always_true()}, {})

    def test_unknown_node_detected(self):
        example = build_running_example("none")
        complete = {node: core.always_true() for node in example.network.topology.nodes}
        with pytest.raises(VerificationError):
            core.AnnotatedNetwork(example.network, {**complete, "zzz": core.always_true()}, complete)

    def test_callable_annotations(self):
        annotated = core.annotate(
            build_running_example("none").network, lambda node: core.always_true()
        )
        assert annotated.interface("v").max_witness == 0
        assert annotated.node_property("v").max_witness == 0

    def test_unknown_node_lookup(self):
        annotated = reach_example()
        with pytest.raises(VerificationError):
            annotated.interface("missing")
        with pytest.raises(VerificationError):
            annotated.node_property("missing")

    def test_time_width_covers_witness_times(self):
        annotated = reach_example()
        assert annotated.max_witness_time() == 2
        width = annotated.time_width()
        assert (1 << width) - 1 >= annotated.max_witness_time() + 1
        assert annotated.time_width(delay=4) >= annotated.time_width()

    def test_property_as_interface_heuristic(self):
        annotated = reach_example().with_property_as_interface()
        assert annotated.interface("n2").max_witness == 2

    def test_missing_annotation_message_lists_nodes_sorted(self):
        network = shortest_path_network(path_topology(3), "n0")
        with pytest.raises(VerificationError) as excinfo:
            core.AnnotatedNetwork(network, {}, {})
        assert "missing interface annotation for 3 node(s): 'n0', 'n1', 'n2'" in str(
            excinfo.value
        )

    def test_unknown_annotation_message_lists_nodes_sorted(self):
        network = shortest_path_network(path_topology(2), "n0")
        complete = {node: core.always_true() for node in network.topology.nodes}
        extras = {**complete, "zzz": core.always_true(), "aaa": core.always_true()}
        with pytest.raises(VerificationError) as excinfo:
            core.AnnotatedNetwork(network, extras, complete)
        assert "interface annotation given for 2 unknown node(s): 'aaa', 'zzz'" in str(
            excinfo.value
        )

    def test_annotate_defaults_properties_to_true(self):
        example = build_running_example("none")
        annotated = core.annotate(
            example.network, {node: core.always_true() for node in example.network.topology.nodes}
        )
        assert annotated.node_property("e").max_witness == 0


class TestConditionEncodings:
    def test_initial_condition_holds_for_correct_interface(self):
        annotated = reach_example()
        for node in annotated.nodes:
            result = initial_condition(annotated, node).check()
            assert result.holds, node

    def test_initial_condition_fails_for_wrong_interface(self):
        topology = path_topology(2)
        network = shortest_path_network(topology, "n0")
        annotated = core.annotate(
            network, {node: core.globally(lambda r: r.is_some) for node in topology.nodes}
        )
        result = initial_condition(annotated, "n1").check()
        assert not result.holds
        assert result.counterexample is not None
        assert result.counterexample.time == 0
        assert result.counterexample.route is None  # n1 starts with ∞

    def test_inductive_condition_holds(self):
        annotated = reach_example()
        for node in annotated.nodes:
            assert inductive_condition(annotated, node).check().holds, node

    def test_inductive_condition_fails_for_too_strong_interface(self):
        topology = path_topology(3)
        network = shortest_path_network(topology, "n0")
        interfaces = {
            "n0": core.globally(lambda r: r.is_some),
            # n1 claims it never has a route, but n0 sends it one at time 1.
            "n1": core.globally(lambda r: r.is_none),
            "n2": core.always_true(),
        }
        annotated = core.annotate(network, interfaces)
        result = inductive_condition(annotated, "n1").check()
        assert not result.holds
        counterexample = result.counterexample
        assert counterexample is not None
        assert "n0" in counterexample.neighbor_routes
        assert counterexample.route is not None

    def test_safety_condition_checks_implication(self):
        annotated = reach_example()
        for node in annotated.nodes:
            assert safety_condition(annotated, node).check().holds, node

    def test_safety_condition_fails_when_interface_too_weak(self):
        topology = path_topology(2)
        network = shortest_path_network(topology, "n0")
        annotated = core.AnnotatedNetwork(
            network,
            interfaces={node: core.always_true() for node in topology.nodes},
            properties={node: core.globally(lambda r: r.is_some) for node in topology.nodes},
        )
        result = safety_condition(annotated, "n1").check()
        assert not result.holds
        assert result.counterexample is not None

    def test_negative_delay_rejected(self):
        with pytest.raises(VerificationError):
            inductive_condition(reach_example(), "n0", delay=-1)

    def test_node_conditions_produces_all_three(self):
        annotated = reach_example()
        kinds = [condition.kind for condition in core.node_conditions(annotated, "n1")]
        assert kinds == [core.INITIAL, core.INDUCTIVE, core.SAFETY]


class TestDelayExtension:
    def test_delay_preserves_valid_reachability_interfaces_with_slack(self):
        """With one unit of delay, interfaces need one extra time step of slack."""
        topology = path_topology(3)
        network = shortest_path_network(topology, "n0")
        # Allow each node twice the synchronous time to account for delay.
        interfaces = {
            node: core.finally_(2 * index, core.globally(lambda r: r.is_some))
            for index, node in enumerate(("n0", "n1", "n2"))
        }
        annotated = core.annotate(network, interfaces)
        for node in annotated.nodes:
            assert inductive_condition(annotated, node, delay=1).check().holds, node

    def test_tight_interfaces_fail_under_delay(self):
        """The exact synchronous witness times are too strong once delay is allowed."""
        annotated = reach_example()
        results = [
            inductive_condition(annotated, node, delay=1).check().holds
            for node in annotated.nodes
        ]
        assert not all(results)
