"""Tests for counterexample rendering, report aggregation and the parallel runner."""

import multiprocessing

import pytest

from repro.core.counterexample import Counterexample
from repro.core.parallel import (
    check_classes_in_parallel,
    check_nodes_in_parallel,
    iter_node_batches,
)
from repro.core.results import (
    ConditionResult,
    ModularReport,
    MonolithicReport,
    NodeReport,
    merge_reports,
    percentile,
)
from repro import core
from repro.routing import path_topology, shortest_path_network
from repro.verify import Modular, verify


class TestCounterexampleRendering:
    def test_describe_mentions_all_parts(self):
        counterexample = Counterexample(
            node="v",
            condition="inductive",
            time=3,
            neighbor_routes={"w": {"lp": 100, "len": 1}, "n": None},
            route={"lp": 100, "len": 2},
            symbolics={"dest": 4},
        )
        text = counterexample.describe()
        assert "node 'v'" in text
        assert "t = 3" in text
        assert "'w' sends ⟨lp=100, len=1⟩" in text
        assert "'n' sends ∞" in text
        assert "symbolic 'dest' = 4" in text
        assert str(counterexample) == text

    def test_describe_for_initial_condition(self):
        counterexample = Counterexample(node="d", condition="initial", time=0, route=None)
        text = counterexample.describe()
        assert "initial" in text and "∞" in text


class TestReports:
    def _result(self, node, holds, duration=0.1):
        return ConditionResult(node=node, condition="initial", holds=holds, duration=duration)

    def test_node_report_aggregation(self):
        passing = NodeReport("a", [self._result("a", True)], duration=0.2)
        failing = NodeReport(
            "b",
            [
                self._result("b", True),
                ConditionResult(
                    "b",
                    "safety",
                    False,
                    0.1,
                    Counterexample(node="b", condition="safety"),
                ),
            ],
            duration=0.3,
        )
        assert passing.passed and bool(passing.results[0])
        assert not failing.passed
        assert len(failing.failures) == 1
        assert "FAIL" in failing.describe()

        merged = merge_reports([passing, failing], wall_time=0.5, parallelism=2)
        assert not merged.passed
        assert merged.failed_nodes == ["b"]
        assert merged.total_node_time == 0.5
        assert len(merged.counterexamples()) == 1
        assert "FAIL" in merged.summary()

    def test_percentiles(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.5) == 50.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0

    def test_monolithic_report_summaries(self):
        assert "PASS" in MonolithicReport(passed=True, wall_time=1.0).summary()
        assert "FAIL" in MonolithicReport(passed=False, wall_time=1.0).summary()
        assert "TIMEOUT" in MonolithicReport(passed=False, wall_time=1.0, timed_out=True).summary()

    def test_empty_modular_report(self):
        report = ModularReport(node_reports={}, wall_time=0.0)
        assert report.passed
        assert report.max_node_time == 0.0


class TestParallelRunner:
    def _annotated(self):
        topology = path_topology(3)
        network = shortest_path_network(topology, "n0")
        interfaces = {
            node: core.finally_(index, core.globally(lambda r: r.is_some))
            for index, node in enumerate(("n0", "n1", "n2"))
        }
        return core.annotate(network, interfaces)

    def test_parallel_runner_returns_one_report_per_node(self):
        annotated = self._annotated()
        reports, totals = check_nodes_in_parallel(
            annotated,
            annotated.nodes,
            delay=0,
            jobs=2,
            conditions=core.CONDITION_KINDS,
            fail_fast=True,
        )
        # Reports come back in node order regardless of completion order,
        # and the workers' cache deltas are summed for the caller.
        assert tuple(report.node for report in reports) == annotated.nodes
        assert all(report.passed for report in reports)
        assert totals is not None and totals["scopes"] == len(annotated.nodes)

    def test_single_job_falls_back_to_sequential(self):
        annotated = self._annotated()
        reports, totals = check_nodes_in_parallel(
            annotated,
            ("n1",),
            delay=0,
            jobs=1,
            conditions=core.CONDITION_KINDS,
            fail_fast=True,
        )
        assert len(reports) == 1 and reports[0].node == "n1"
        assert totals is not None and totals["scopes"] == 1

    def test_counterexamples_survive_the_process_boundary(self):
        topology = path_topology(2)
        network = shortest_path_network(topology, "n0")
        annotated = core.annotate(
            network, {node: core.globally(lambda r: r.is_some) for node in topology.nodes}
        )
        report = verify(annotated, Modular(parallel=2))
        assert not report.passed
        assert report.counterexamples()

    def test_pool_setup_failure_warns_and_degrades_to_sequential(self, monkeypatch):
        import repro.core.parallel as parallel

        class _FailingContext:
            def Pool(self, processes):
                raise OSError("no semaphores on this platform")

        monkeypatch.setattr(
            parallel.multiprocessing, "get_context", lambda kind: _FailingContext()
        )
        annotated = self._annotated()
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            reports, totals = check_nodes_in_parallel(
                annotated,
                annotated.nodes,
                delay=0,
                jobs=2,
                conditions=core.CONDITION_KINDS,
                fail_fast=True,
            )
        assert sorted(report.node for report in reports) == sorted(annotated.nodes)
        assert all(report.passed for report in reports)
        # The degraded run executed in-process, where the cache counters are
        # observable — it must report deltas exactly like the pool path.
        assert totals is not None
        assert totals["scopes"] == len(annotated.nodes)
        # Guard-table lookups happen on every assertion, so a degraded run
        # always reports activity (tseitin counters can be all-hits-elsewhere
        # when an earlier run in this process already encoded the terms).
        assert totals["guard_hits"] + totals["guard_misses"] > 0

    def test_degraded_parallel_run_still_reports_backend_cache(self, monkeypatch):
        """A parallel>1 engine run that silently degrades to sequential must
        not lose the cache statistics the in-process run can observe."""
        import repro.core.parallel as parallel

        class _FailingContext:
            def Pool(self, processes):
                raise OSError("no semaphores on this platform")

        monkeypatch.setattr(
            parallel.multiprocessing, "get_context", lambda kind: _FailingContext()
        )
        annotated = self._annotated()
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            report = verify(annotated, Modular(parallel=2))
        assert report.passed
        assert report.backend_cache is not None
        assert report.backend_cache["scopes"] == len(annotated.nodes)

    def test_worker_crashes_propagate_instead_of_rerunning_sequentially(self):
        # A crashing interface used to be swallowed by a blanket
        # ``except Exception`` that silently reran everything sequentially —
        # which would crash again, but only after masking where the error
        # came from (and retrying work that was never going to succeed).
        topology = path_topology(3)
        network = shortest_path_network(topology, "n0")

        def exploding_predicate(route):
            raise RuntimeError("worker exploded")

        annotated = core.annotate(
            network,
            {node: core.globally(exploding_predicate) for node in topology.nodes},
        )
        with pytest.raises(RuntimeError, match="worker exploded"):
            check_nodes_in_parallel(
                annotated,
                annotated.nodes,
                delay=0,
                jobs=2,
                conditions=core.CONDITION_KINDS,
                fail_fast=True,
            )
        _assert_no_orphaned_workers()


def _assert_no_orphaned_workers():
    """Every pool worker must be reaped once the dispatcher winds down."""
    for child in multiprocessing.active_children():
        child.join(timeout=10)
    assert multiprocessing.active_children() == []


class TestStreamingDispatcher:
    def _annotated(self, length=6):
        topology = path_topology(length)
        network = shortest_path_network(topology, "n0")
        interfaces = {
            node: core.finally_(index, core.globally(lambda r: r.is_some))
            for index, node in enumerate(topology.nodes)
        }
        return core.annotate(network, interfaces)

    def test_batches_carry_submission_indices_and_deltas(self):
        annotated = self._annotated()
        batches = list(
            iter_node_batches(
                annotated,
                annotated.nodes,
                delay=0,
                jobs=2,
                conditions=core.CONDITION_KINDS,
                fail_fast=True,
            )
        )
        assert sorted(index for index, _, _ in batches) == list(range(len(annotated.nodes)))
        for index, reports, delta in batches:
            assert [report.node for report in reports] == [annotated.nodes[index]]
            assert delta["scopes"] == 1
        _assert_no_orphaned_workers()

    def test_closing_the_stream_stops_dispatch_without_orphans(self):
        annotated = self._annotated(length=8)
        batches = iter_node_batches(
            annotated,
            annotated.nodes,
            delay=0,
            jobs=2,
            conditions=core.CONDITION_KINDS,
            fail_fast=True,
        )
        next(batches)
        batches.close()
        _assert_no_orphaned_workers()

    def test_class_barrier_drain_matches_node_order_contract(self):
        """check_classes_in_parallel (the barrier drain over class batches)
        returns member reports in class order with summed worker deltas."""
        from repro.core.symmetry import partition_nodes

        annotated = self._annotated()
        classes = partition_nodes(annotated, annotated.nodes, delay=0)
        reports, totals = check_classes_in_parallel(
            annotated,
            classes,
            delay=0,
            jobs=2,
            conditions=core.CONDITION_KINDS,
            fail_fast=True,
        )
        expected = [member for cls in classes for member in cls.members]
        assert [report.node for report in reports] == expected
        assert totals is not None and totals["scopes"] == len(classes)
        _assert_no_orphaned_workers()

    def test_crash_propagates_from_streaming_engine_run(self):
        """A crashing batch surfaces through verify() too, with no silent
        sequential rerun and no leaked pool."""
        topology = path_topology(3)
        network = shortest_path_network(topology, "n0")

        def exploding_predicate(route):
            raise RuntimeError("worker exploded")

        annotated = core.annotate(
            network,
            {node: core.globally(exploding_predicate) for node in topology.nodes},
        )
        with pytest.raises(RuntimeError, match="worker exploded"):
            verify(annotated, Modular(parallel=2))
        _assert_no_orphaned_workers()

    def test_event_order_within_a_batch_is_stable(self):
        """Whole-stream order depends on completion timing, but each node's
        events stay contiguous and in canonical condition order."""
        annotated = self._annotated()
        for _ in range(2):
            from repro.verify import Session

            with Session(annotated, Modular(parallel=2)) as session:
                events = list(session.stream())
            seen = []
            for event in events:
                if not seen or seen[-1] != event.node:
                    seen.append(event.node)
            # Contiguous: each node appears exactly once in the arrival order.
            assert len(seen) == len(set(seen)) == len(annotated.nodes)
            by_node = {}
            for event in events:
                by_node.setdefault(event.node, []).append(event.condition)
            for conditions in by_node.values():
                assert conditions == list(core.CONDITION_KINDS)


class TestReportJson:
    def test_failing_monolithic_report_serialises(self):
        import json

        report = MonolithicReport(
            passed=False,
            wall_time=1.0,
            counterexample={
                "node": {"communities": frozenset({"down", "up"}), "lp": 100, "path": (1, 2)}
            },
            symbolics={"hijack": frozenset({"x"})},
        )
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["verdict"] == "fail"
        assert payload["counterexample"]["node"]["communities"] == ["down", "up"]
        assert payload["symbolics"]["hijack"] == ["x"]
