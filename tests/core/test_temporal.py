"""Tests for the temporal operators (G, U, F, ⊓, ⊔, ∼)."""

import pytest

from repro import core
from repro.errors import VerificationError
from repro.symbolic import BitVecShape, OptionShape, SymBV, SymBool

SHAPE = OptionShape(BitVecShape(8))
WIDTH = 4


def at(predicate, route, time):
    """Evaluate a temporal predicate at a concrete time, returning a bool."""
    return predicate(route, SymBV.constant(time, WIDTH)).concrete_value()


def has_route(route):
    return route.is_some


def small(route):
    return route.is_some & (route.payload <= 3)


class TestGlobally:
    def test_time_independent(self):
        predicate = core.globally(has_route)
        present, absent = SHAPE.some(1), SHAPE.none()
        for time in (0, 1, 5, 15):
            assert at(predicate, present, time) is True
            assert at(predicate, absent, time) is False

    def test_max_witness_is_zero(self):
        assert core.globally(has_route).max_witness == 0

    def test_always_true_false(self):
        route = SHAPE.none()
        assert at(core.always_true(), route, 3) is True
        assert at(core.always_false(), route, 3) is False


class TestUntilAndFinally:
    def test_until_switches_at_witness(self):
        predicate = core.until(2, lambda r: r.is_none, core.globally(has_route))
        absent, present = SHAPE.none(), SHAPE.some(1)
        assert at(predicate, absent, 0) is True
        assert at(predicate, absent, 1) is True
        assert at(predicate, absent, 2) is False
        assert at(predicate, present, 1) is False
        assert at(predicate, present, 2) is True
        assert at(predicate, present, 9) is True

    def test_finally_allows_anything_before(self):
        predicate = core.finally_(3, core.globally(has_route))
        absent, present = SHAPE.none(), SHAPE.some(1)
        assert at(predicate, absent, 0) is True
        assert at(predicate, absent, 2) is True
        assert at(predicate, absent, 3) is False
        assert at(predicate, present, 3) is True

    def test_witness_zero_is_globally(self):
        predicate = core.until(0, lambda r: r.is_none, core.globally(has_route))
        assert at(predicate, SHAPE.none(), 0) is False
        assert at(predicate, SHAPE.some(1), 0) is True

    def test_negative_witness_rejected(self):
        with pytest.raises(VerificationError):
            core.until(-1, has_route, core.globally(has_route))
        with pytest.raises(VerificationError):
            core.until_dynamic(lambda t: t, has_route, core.globally(has_route), max_witness=-2)

    def test_max_witness_tracking(self):
        inner = core.finally_(5, core.globally(has_route))
        outer = core.until(2, lambda r: r.is_none, inner)
        assert outer.max_witness == 5
        assert core.finally_(3, core.globally(has_route)).max_witness == 3

    def test_nested_operators(self):
        # F^2 (φ U^4 G(ψ)): true before 2, φ between 2 and 3, ψ from 4 on.
        predicate = core.finally_(2, core.until(4, small, core.globally(has_route)))
        big = SHAPE.some(200)
        tiny = SHAPE.some(1)
        absent = SHAPE.none()
        assert at(predicate, big, 0) is True
        assert at(predicate, big, 2) is False
        assert at(predicate, tiny, 2) is True
        assert at(predicate, absent, 3) is False
        assert at(predicate, big, 4) is True
        assert at(predicate, absent, 5) is False


class TestCombinators:
    def test_intersection_and_union(self):
        left = core.globally(has_route)
        right = core.globally(small)
        both = left & right
        either = left | right
        big = SHAPE.some(200)
        assert at(both, big, 0) is False
        assert at(either, big, 0) is True
        assert max(both.max_witness, either.max_witness) == 0

    def test_negation(self):
        predicate = ~core.globally(has_route)
        assert at(predicate, SHAPE.none(), 1) is True
        assert at(predicate, SHAPE.some(1), 1) is False

    def test_lift_plain_predicate(self):
        lifted = core.lift(has_route)
        assert at(lifted, SHAPE.some(1), 7) is True
        already = core.globally(has_route)
        assert core.lift(already) is already
        with pytest.raises(VerificationError):
            core.lift("not a predicate")

    def test_predicate_must_return_symbool(self):
        broken = core.TemporalPredicate(lambda route, time: 42)
        with pytest.raises(VerificationError):
            broken(SHAPE.none(), SymBV.constant(0, WIDTH))

    def test_at_time_specialisation(self):
        predicate = core.finally_(2, core.globally(has_route))
        stable = predicate.at_time(2, WIDTH)
        assert stable(SHAPE.none()).concrete_value() is False
        assert stable(SHAPE.some(1)).concrete_value() is True


class TestDynamicWitness:
    def test_until_dynamic_matches_concrete_until(self):
        dynamic = core.until_dynamic(
            lambda time: SymBV.constant(2, time.width),
            lambda r: r.is_none,
            core.globally(has_route),
            max_witness=2,
        )
        concrete = core.until(2, lambda r: r.is_none, core.globally(has_route))
        for time in range(5):
            for route in (SHAPE.none(), SHAPE.some(1)):
                assert at(dynamic, route, time) == at(concrete, route, time)

    def test_finally_dynamic(self):
        predicate = core.finally_dynamic(
            lambda time: SymBV.constant(1, time.width), core.globally(has_route), max_witness=4
        )
        assert predicate.max_witness == 4
        assert at(predicate, SHAPE.none(), 0) is True
        assert at(predicate, SHAPE.none(), 1) is False
